//! The grounding reduction of Theorem 4.1.
//!
//! Given a finite history `D` and a universal sentence
//! `φ ≡ ∀x1 … xk ψ` (quantifier-free matrix `ψ`), build:
//!
//! * the set `M = R_D ∪ {z1, …, zk}` — the relevant elements plus `k`
//!   symbolic fresh elements standing for arbitrary irrelevant ones;
//! * the propositional vocabulary `L_D` with letters `(a = b)` and
//!   `p(a1, …, a_ar(p))` for `a_i ∈ M ∪ CL`;
//! * the formula `Ψ_D = ⋀_f ψ[f]`, `f` ranging over all `|M|^k` maps
//!   from the external variables to `M`;
//! * the axiom block `Axiom_D` (equality is an equivalence and a
//!   congruence; the rigid equalities among `R_D ∪ CL` are decided; the
//!   `z_i` are pairwise distinct, distinct from everything relevant, and
//!   satisfy no database predicate);
//! * the propositional prefix `w_D = (w0, …, wt)` describing the
//!   history's states.
//!
//! Two modes are provided:
//! * [`GroundMode::Full`] — the paper's construction verbatim:
//!   `φ_D = Ψ_D ∧ □Axiom_D`, with every rigid letter materialised;
//! * [`GroundMode::Folded`] — every *rigid* letter (all equalities, and
//!   `p(…z…)` letters, whose truth values `Axiom_D` fixes for all time)
//!   is constant-folded at construction. The two modes are equivalent
//!   for the extension problem (property-tested); `Folded` is the
//!   production path and ablation E6 measures the gap.

use crate::par::{self, ParMeter, Threads};
use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};
use std::fmt::Write as _;
use std::sync::Arc;
use ticc_fotl::classify::{classify, FormulaClass};
use ticc_fotl::{Atom, Formula, Term};
use ticc_ptl::arena::{Arena, AtomId, FormulaId};
use ticc_ptl::interner::{AtomInterner, ShardedInterner};
use ticc_ptl::trace::PropState;
use ticc_tdb::{ConstId, History, PredId, Schema, State, Transaction, Update, Value};

/// Which construction to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum GroundMode {
    /// Rigid letters constant-folded away (production).
    #[default]
    Folded,
    /// The literal paper construction with `□Axiom_D`.
    Full,
}

/// Which enumeration strategy builds `Ψ_D` — the `Grounding` knob of
/// [`CheckOptions`](crate::extension::CheckOptions).
///
/// [`GroundStrategy::Indexed`] walks the instantiations *the data
/// supports* instead of the full `|M|^k` cross product: an
/// atom-occurrence index maps each flexible atom pattern of the matrix
/// to the ground tuples actually appearing in the history, and only
/// instantiations with at least one such supported atom are grounded.
/// The skipped remainder is summarised by the canonical
/// all-atoms-rigid-false residue, which the strategy requires to fold
/// to `⊤` (see DESIGN.md §"Indexed grounding"); matrices outside that
/// class fall back to the odometer transparently.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum GroundStrategy {
    /// Blind odometer sweep over all `|M|^k` instantiations (the
    /// paper's construction verbatim; kept for the E15 ablation).
    Odometer,
    /// Relevance-pruned, index-driven enumeration (production).
    #[default]
    Indexed,
}

/// A ground argument: a relevant element, a symbolic fresh element
/// `z_i`, or (in full mode) a constant symbol.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum GArg {
    /// An element of `R_D` (or an explicit value from the formula).
    Rel(Value),
    /// The symbolic fresh element `z_{i+1}` (0-based index).
    Fresh(usize),
    /// A constant symbol (full mode only; folded mode resolves constants
    /// to their rigid interpretation).
    Const(ConstId),
}

/// Errors from grounding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GroundError {
    /// The sentence is not universal (`∀*tense(Π0)`); Theorem 4.1 does
    /// not apply. Carries the classification found.
    NotUniversal(FormulaClass),
    /// The sentence uses the extended vocabulary (`≤`, `succ`, `Zero`),
    /// which is outside Theorem 4.1 (Section 3 shows why: it makes the
    /// problem undecidable).
    ExtendedVocabulary,
    /// The sentence has free variables.
    OpenFormula(String),
}

impl std::fmt::Display for GroundError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GroundError::NotUniversal(c) => {
                write!(f, "not a universal sentence (classified as {c:?})")
            }
            GroundError::ExtendedVocabulary => write!(
                f,
                "extended vocabulary (<=, succ, zero) is outside the decidable fragment"
            ),
            GroundError::OpenFormula(v) => write!(f, "free variable {v} in constraint"),
        }
    }
}

impl std::error::Error for GroundError {}

/// Size statistics of a grounding.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GroundStats {
    /// `|M|` (relevant elements + fresh symbols).
    pub m_size: usize,
    /// Number of external quantifiers `k`.
    pub external_vars: usize,
    /// Number of ground instances `|M|^k`.
    pub mappings: usize,
    /// Propositional letters interned.
    pub letters: usize,
    /// Conjuncts emitted for `Axiom_D` (0 in folded mode).
    pub axiom_conjuncts: usize,
    /// Tree size of `φ_D` (saturating).
    pub formula_tree_size: usize,
    /// DAG size of `φ_D`.
    pub formula_dag_size: usize,
    /// Instantiations actually grounded. Equals `mappings` under the
    /// odometer; under the indexed strategy it counts the data-supported
    /// instantiations (initial build plus later activations).
    pub inst_enumerated: usize,
    /// Instantiations summarised by the canonical rigid-false residue
    /// instead of being grounded (`mappings − inst_enumerated` under the
    /// indexed strategy, 0 under the odometer).
    pub inst_pruned: usize,
    /// Enumerated instantiations whose ground formula hash-consed to a
    /// conjunct already emitted by an earlier instantiation (structure
    /// sharing across the `Ψ_D` DAG). Indexed strategy only.
    pub inst_shared: usize,
}

/// The structured key of a propositional letter in `L_D`: a ground
/// predicate fact `p(a⃗)` or an equality `(a = b)`. Replaces the former
/// ad-hoc string/`Vec` key pairs — one [`AtomInterner`] over these keys
/// is the single letter table shared by formula construction and state
/// encoding.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum LetterKey {
    /// `p(a1, …, a_ar(p))`.
    Pred(PredId, Vec<GArg>),
    /// `(a = b)`.
    Eq(GArg, GArg),
}

/// The output of the reduction: `φ_D`, `w_D`, and the letter table
/// needed to translate further database states (used by the incremental
/// monitor).
pub struct Grounding {
    /// The PTL arena owning `φ_D`.
    pub arena: Arena,
    /// The formula `φ_D` (in full mode `Ψ_D ∧ □Axiom_D`).
    pub formula: FormulaId,
    /// The propositional prefix `w_D`.
    pub trace: Vec<PropState>,
    /// The set `M` (relevant + fresh), in the order used for mappings.
    /// Delta re-grounding appends further relevant elements at the end.
    pub m: Vec<GArg>,
    /// Statistics.
    pub stats: GroundStats,
    mode: GroundMode,
    schema: Arc<Schema>,
    consts: Vec<Value>,
    letters: AtomInterner<LetterKey>,
    /// The external quantifier prefix and quantifier-free matrix of the
    /// source sentence, kept so the grounding can re-ground itself
    /// incrementally when `R_D` grows (see [`Grounding::ground_delta`]).
    external: Vec<String>,
    matrix: Formula,
    /// The concrete values of `M` as a persistent set, extended by
    /// [`Grounding::ground_delta`] — the known-universe membership test
    /// without rebuilding a `BTreeSet` per append.
    known: BTreeSet<Value>,
    /// Inverted letter index `(PredId, ground tuple) → AtomId`, built
    /// once at grounding time and extended lazily (a miss falls back to
    /// the structured-key interner and memoises the result). Keyed by
    /// concrete tuples so the per-append hot path looks letters up with
    /// a borrowed `&[Value]` — zero allocation on a hit.
    letter_index: HashMap<PredId, HashMap<Vec<Value>, AtomId>>,
    /// The flexible-atom patterns the indexed enumerator joins against
    /// the occurrence index. `Some` exactly when the indexed strategy
    /// is in effect for this grounding (the matrix passed the
    /// rigid-false-fold gate and the initial join actually pruned).
    plan: Option<IndexPlan>,
    /// Atom-occurrence index: every ground tuple that has appeared in
    /// some state of the history, per predicate. Monotone (deletes do
    /// not retract an occurrence). Maintained only under the indexed
    /// strategy; `BTree` containers so enumeration order is canonical.
    occ: BTreeMap<PredId, BTreeSet<Vec<Value>>>,
    /// The instantiations grounded so far, as digit vectors over `m`
    /// (indexed strategy only). Invariant: equals the join of `plan`
    /// against `occ` over the current `m` — which is how a restored
    /// engine rebuilds it from the persisted occurrence index.
    active: HashSet<Vec<u32>>,
    /// Wall time spent building and joining the occurrence index,
    /// surfaced as the `index build` engine timer.
    pub(crate) index_build: std::time::Duration,
    /// Reusable fast-append scratch buffers (net-effect order, patched
    /// letters) plus the capacity-growth counter the engine folds into
    /// `EngineStats::pool_buf_allocs` — see [`FastScratch`].
    scratch: FastScratch,
}

/// Reusable scratch for the per-append hot path. A steady-state append
/// (no new relevant elements, no first-occurrence tuples) must not
/// allocate in the grounding layer: the net effect of the transaction
/// and the patched-letter list are computed into these recycled
/// buffers instead of fresh `BTreeMap`/`Vec`s per call. `allocs`
/// counts capacity growths of either buffer; after warm-up it stays
/// flat, and the engine folds the per-append delta into
/// [`EngineStats::pool_buf_allocs`](crate::EngineStats) so the no-alloc
/// discipline of the pooled dispatch path covers grounding scratch too.
#[derive(Default)]
struct FastScratch {
    /// The transaction's net effect as `(update index, present)` pairs
    /// in sorted `(pred, tuple)` order with last-update-wins dedup —
    /// the borrow-free equivalent of the old per-call
    /// `BTreeMap<(PredId, &[Value]), bool>`.
    net: Vec<(u32, bool)>,
    /// The letters patched by the last [`Grounding::patch_state`] call,
    /// in deterministic patch order.
    patched: Vec<AtomId>,
    /// Capacity growths of the two buffers above since the grounding
    /// was built (or restored).
    allocs: u64,
}

/// The `(pred, tuple)` sort key of an update.
fn update_key(u: &Update) -> (PredId, &[Value]) {
    match u {
        Update::Insert(p, t) | Update::Delete(p, t) => (*p, t.as_slice()),
    }
}

/// One predicate-atom pattern of the matrix, with variables resolved
/// to external digit positions and constants to their rigid values.
#[derive(Debug, Clone, PartialEq, Eq)]
struct AtomPattern {
    pred: PredId,
    terms: Vec<PatTerm>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum PatTerm {
    /// The external variable occupying this digit position.
    Digit(usize),
    /// A concrete value (explicit, or a constant folded at plan time).
    Val(Value),
}

/// The per-constraint index plan driving relevance-pruned enumeration.
#[derive(Debug, Clone, PartialEq, Eq)]
struct IndexPlan {
    patterns: Vec<AtomPattern>,
}

/// Collects the matrix's predicate-atom patterns with every variable
/// resolved to its external digit. Returns `None` (odometer fallback)
/// when the matrix contains an equality atom: equalities fold
/// differently per instantiation, so the pruned remainder would not
/// collapse to a single canonical residue.
fn index_patterns(
    matrix: &Formula,
    external: &[String],
    consts: &[Value],
) -> Option<Vec<AtomPattern>> {
    let digit: HashMap<&str, usize> = external
        .iter()
        .enumerate()
        .map(|(i, v)| (v.as_str(), i))
        .collect();
    let mut out: Vec<AtomPattern> = Vec::new();
    let mut stack = vec![matrix];
    while let Some(f) = stack.pop() {
        if let Formula::Atom(a) = f {
            match a {
                Atom::Eq(_, _) => return None,
                Atom::Pred(p, ts) => {
                    let terms: Option<Vec<PatTerm>> = ts
                        .iter()
                        .map(|t| match t {
                            Term::Var(v) => digit.get(v.as_str()).map(|&d| PatTerm::Digit(d)),
                            Term::Value(v) => Some(PatTerm::Val(*v)),
                            Term::Const(c) => Some(PatTerm::Val(consts[c.index()])),
                        })
                        .collect();
                    let pat = AtomPattern {
                        pred: *p,
                        terms: terms?,
                    };
                    if !out.contains(&pat) {
                        out.push(pat);
                    }
                }
                Atom::Leq(_, _) | Atom::Succ(_, _) | Atom::Zero(_) => return None,
            }
        }
        stack.extend(f.children());
    }
    Some(out)
}

/// Collects the distinct predicate-atom patterns of the matrix for the
/// letter-discovery phase. Unlike [`index_patterns`] this tolerates
/// equality atoms (in folded mode they constant-fold and intern
/// nothing) and keeps the terms unresolved — resolution happens per
/// instantiation in [`note_letters_digits`].
fn letter_patterns(matrix: &Formula) -> Vec<(PredId, &[Term])> {
    let mut out: Vec<(PredId, &[Term])> = Vec::new();
    let mut stack = vec![matrix];
    while let Some(f) = stack.pop() {
        if let Formula::Atom(Atom::Pred(p, ts)) = f {
            if !out.iter().any(|&(q, qs)| q == *p && qs == ts.as_slice()) {
                out.push((*p, ts));
            }
        }
        stack.extend(f.children());
    }
    out
}

/// Phase L of the folded grounding pipeline: notes into `sink` every
/// letter that grounding the matrix under the digit assignment `digits`
/// would intern — each predicate pattern with its terms resolved over
/// `m`, skipping patterns that touch a fresh element (those fold to `⊥`
/// and intern nothing). Callable concurrently from sharded workers.
fn note_letters_digits(
    sink: &ShardedInterner<LetterKey>,
    schema: &Schema,
    consts: &[Value],
    patterns: &[(PredId, &[Term])],
    m: &[GArg],
    digit: &HashMap<&str, usize>,
    digits: &[u32],
) {
    'patterns: for &(p, terms) in patterns {
        let mut args = Vec::with_capacity(terms.len());
        for t in terms {
            let a = match t {
                Term::Var(v) => m[digits[digit[v.as_str()]] as usize],
                Term::Value(v) => GArg::Rel(*v),
                Term::Const(c) => GArg::Rel(consts[c.index()]),
            };
            if matches!(a, GArg::Fresh(_)) {
                continue 'patterns;
            }
            args.push(a);
        }
        sink.note(LetterKey::Pred(p, args), |k| render_letter(k, schema));
    }
}

/// The canonical all-atoms-rigid-false residue: the matrix with every
/// predicate atom folded to `⊥`. `Axiom_D` fixes `p(…z…)` letters false
/// for all time, and a pruned instantiation's remaining letters are
/// false throughout `w_D` by construction, so every pruned
/// instantiation progresses exactly like this fold. The indexed
/// strategy requires the fold to be `⊤`, making the entire pruned
/// remainder of `|M|^k` contribute nothing to `Ψ_D`. Must only be
/// called on matrices accepted by [`index_patterns`] (no equalities).
fn fold_rigid_false(arena: &mut Arena, matrix: &Formula) -> FormulaId {
    match matrix {
        Formula::True => arena.tru(),
        Formula::False | Formula::Atom(_) => arena.fls(),
        Formula::Not(g) => {
            let x = fold_rigid_false(arena, g);
            arena.not(x)
        }
        Formula::And(a, b) => {
            let x = fold_rigid_false(arena, a);
            let y = fold_rigid_false(arena, b);
            arena.and(x, y)
        }
        Formula::Or(a, b) => {
            let x = fold_rigid_false(arena, a);
            let y = fold_rigid_false(arena, b);
            arena.or(x, y)
        }
        Formula::Implies(a, b) => {
            let x = fold_rigid_false(arena, a);
            let y = fold_rigid_false(arena, b);
            arena.implies(x, y)
        }
        Formula::Next(g) => {
            let x = fold_rigid_false(arena, g);
            arena.next(x)
        }
        Formula::Until(a, b) => {
            let x = fold_rigid_false(arena, a);
            let y = fold_rigid_false(arena, b);
            arena.until(x, y)
        }
        Formula::Forall(_, _) | Formula::Exists(_, _) | Formula::Prev(_) | Formula::Since(_, _) => {
            unreachable!("universal future matrix (checked by classify)")
        }
    }
}

/// Builds the occurrence index from the history: every tuple present in
/// any state, per predicate.
fn build_occ(history: &History) -> BTreeMap<PredId, BTreeSet<Vec<Value>>> {
    let mut occ: BTreeMap<PredId, BTreeSet<Vec<Value>>> = BTreeMap::new();
    for t in 0..history.len() {
        let state = history.state(t);
        for p in history.schema().preds() {
            for tuple in state.relation(p).iter() {
                occ.entry(p).or_default().insert(tuple.to_vec());
            }
        }
    }
    occ
}

/// Sentinel digit for "not yet bound by unification".
const UNBOUND: u32 = u32::MAX;

/// Index-driven enumeration: every instantiation (digit vector over
/// `m`) with at least one flexible atom matching an occurring tuple,
/// deduplicated and sorted in canonical odometer-linear order (digit 0
/// fastest). For each pattern and each occurring tuple of its
/// predicate, the tuple is unified against the pattern, binding the
/// pattern's digits; the remaining digits range over all of `M`.
///
/// With `cap = Some(n)` the enumeration aborts with `None` as soon as
/// the candidate list reaches `n` — the join is not pruning, so the
/// caller keeps the odometer.
fn enumerate_active(
    patterns: &[AtomPattern],
    occ: &BTreeMap<PredId, BTreeSet<Vec<Value>>>,
    m: &[GArg],
    k: usize,
    cap: Option<usize>,
) -> Option<Vec<Vec<u32>>> {
    let msize = m.len();
    let m_pos: HashMap<Value, u32> = m
        .iter()
        .enumerate()
        .filter_map(|(i, &a)| match a {
            GArg::Rel(v) => Some((v, i as u32)),
            _ => None,
        })
        .collect();
    let mut cands: Vec<Vec<u32>> = Vec::new();
    for pat in patterns {
        let Some(tuples) = occ.get(&pat.pred) else {
            continue;
        };
        'tuples: for tuple in tuples {
            debug_assert_eq!(tuple.len(), pat.terms.len());
            let mut partial = vec![UNBOUND; k];
            for (term, &val) in pat.terms.iter().zip(tuple) {
                match *term {
                    PatTerm::Val(v) => {
                        if v != val {
                            continue 'tuples;
                        }
                    }
                    PatTerm::Digit(d) => {
                        let Some(&pos) = m_pos.get(&val) else {
                            continue 'tuples;
                        };
                        if partial[d] != UNBOUND && partial[d] != pos {
                            continue 'tuples;
                        }
                        partial[d] = pos;
                    }
                }
            }
            let unbound: Vec<usize> = (0..k).filter(|&d| partial[d] == UNBOUND).collect();
            let total = msize
                .checked_pow(unbound.len() as u32)
                .unwrap_or(usize::MAX);
            if let Some(c) = cap {
                if cands.len().saturating_add(total) >= c {
                    return None;
                }
            }
            let mut idx = vec![0usize; unbound.len()];
            loop {
                let mut full = partial.clone();
                for (j, &d) in unbound.iter().enumerate() {
                    full[d] = idx[j] as u32;
                }
                cands.push(full);
                let mut pos = 0;
                while pos < unbound.len() {
                    idx[pos] += 1;
                    if idx[pos] < msize {
                        break;
                    }
                    idx[pos] = 0;
                    pos += 1;
                }
                if pos == unbound.len() {
                    break;
                }
            }
        }
    }
    // Canonical order: the linear odometer order (digit 0 fastest, so
    // the most significant digit is the last).
    cands.sort_unstable_by(|a, b| a.iter().rev().cmp(b.iter().rev()));
    cands.dedup();
    if let Some(c) = cap {
        if cands.len() >= c {
            return None;
        }
    }
    Some(cands)
}

/// Builds the inverted letter index from the interner's current
/// contents: every `p(v⃗)` letter whose arguments are all concrete
/// values (the only letters folded state encoding ever sets).
fn build_letter_index(
    letters: &AtomInterner<LetterKey>,
) -> HashMap<PredId, HashMap<Vec<Value>, AtomId>> {
    let mut index: HashMap<PredId, HashMap<Vec<Value>, AtomId>> = HashMap::new();
    for (key, atom) in letters.iter() {
        let LetterKey::Pred(p, args) = key else {
            continue;
        };
        let vals: Option<Vec<Value>> = args
            .iter()
            .map(|&a| match a {
                GArg::Rel(v) => Some(v),
                _ => None,
            })
            .collect();
        if let Some(tuple) = vals {
            index.entry(*p).or_default().insert(tuple, atom);
        }
    }
    index
}

/// The net effect of a transaction per touched tuple (last update
/// wins, matching [`Transaction::apply_to`]), in sorted `(pred, tuple)`
/// order — so fresh letters interned while patching appear in the same
/// order a full re-encode of the state would intern them.
fn tx_net(tx: &Transaction) -> BTreeMap<(PredId, &[Value]), bool> {
    let mut net = BTreeMap::new();
    for u in tx.updates() {
        match u {
            Update::Insert(p, t) => net.insert((*p, t.as_slice()), true),
            Update::Delete(p, t) => net.insert((*p, t.as_slice()), false),
        };
    }
    net
}

fn garg_value(a: GArg, consts: &[Value]) -> Option<Value> {
    match a {
        GArg::Rel(v) => Some(v),
        GArg::Const(c) => Some(consts[c.index()]),
        GArg::Fresh(_) => None,
    }
}

fn gargs_equal(a: GArg, b: GArg, consts: &[Value]) -> bool {
    match (garg_value(a, consts), garg_value(b, consts)) {
        (Some(x), Some(y)) => x == y,
        // A fresh element equals only itself.
        _ => a == b,
    }
}

fn write_garg(out: &mut String, a: GArg, schema: &Schema) {
    match a {
        GArg::Rel(v) => {
            let _ = write!(out, "{v}");
        }
        GArg::Fresh(i) => {
            let _ = write!(out, "z{}", i + 1);
        }
        GArg::Const(c) => out.push_str(schema.const_name(c)),
    }
}

/// Renders the display name of a letter (run only on first interning).
fn render_letter(key: &LetterKey, schema: &Schema) -> String {
    match key {
        LetterKey::Eq(a, b) => {
            let mut name = String::from("(");
            write_garg(&mut name, *a, schema);
            name.push('=');
            write_garg(&mut name, *b, schema);
            name.push(')');
            name
        }
        LetterKey::Pred(p, args) => {
            let mut name = String::new();
            name.push_str(schema.pred_name(*p));
            name.push('(');
            for (i, &a) in args.iter().enumerate() {
                if i > 0 {
                    name.push(',');
                }
                write_garg(&mut name, a, schema);
            }
            name.push(')');
            name
        }
    }
}

fn intern_letter(
    arena: &mut Arena,
    letters: &mut AtomInterner<LetterKey>,
    schema: &Schema,
    key: LetterKey,
) -> AtomId {
    letters.intern(arena, key, |k| render_letter(k, schema))
}

/// All vectors of length `r` over `items` (lexicographic by index).
fn vectors(items: &[GArg], r: usize) -> Vec<Vec<GArg>> {
    let mut out = vec![vec![]];
    for _ in 0..r {
        let mut next = Vec::with_capacity(out.len() * items.len());
        for v in &out {
            for &a in items {
                let mut w = v.clone();
                w.push(a);
                next.push(w);
            }
        }
        out = next;
    }
    out
}

fn collect_values(f: &Formula, out: &mut std::collections::BTreeSet<Value>) {
    if let Formula::Atom(a) = f {
        for t in a.terms() {
            if let Term::Value(v) = t {
                out.insert(*v);
            }
        }
    }
    for c in f.children() {
        collect_values(c, out);
    }
}

/// Grounds `(history, phi)` per Theorem 4.1, single-threaded, with the
/// odometer enumeration (the construction verbatim).
pub fn ground(
    history: &History,
    phi: &Formula,
    mode: GroundMode,
) -> Result<Grounding, GroundError> {
    ground_with(history, phi, mode, Threads::Off)
}

/// Grounds `(history, phi)` with an explicit enumeration strategy —
/// the entry point behind the `Grounding` knob of `CheckOptions`.
pub fn ground_opts(
    history: &History,
    phi: &Formula,
    mode: GroundMode,
    strategy: GroundStrategy,
    threads: Threads,
) -> Result<Grounding, GroundError> {
    ground_metered(history, phi, mode, strategy, threads, &mut ParMeter::new())
}

/// Grounds `(history, phi)` per Theorem 4.1, sharding the `|M|^k`
/// instantiation space across worker threads per `threads`.
///
/// Deterministic by construction: folded grounding runs a two-phase
/// pipeline. Phase L discovers the letter vocabulary concurrently
/// through a [`ShardedInterner`] and seals it into the arena in
/// canonical sorted-key order — the atom table is a pure function of
/// the instantiation set, independent of thread count. Phase F then
/// builds `Ψ_D` against that fixed vocabulary, either directly
/// (sequential) or in per-worker arenas pre-seeded with the sealed
/// atom table and merged in chunk order — so the letter table, the
/// conjunction order, and every structural statistic are identical to
/// the sequential path (see DESIGN.md §"Parallel architecture").
pub fn ground_with(
    history: &History,
    phi: &Formula,
    mode: GroundMode,
    threads: Threads,
) -> Result<Grounding, GroundError> {
    ground_metered(
        history,
        phi,
        mode,
        GroundStrategy::Odometer,
        threads,
        &mut ParMeter::new(),
    )
}

pub(crate) fn ground_metered(
    history: &History,
    phi: &Formula,
    mode: GroundMode,
    strategy: GroundStrategy,
    threads: Threads,
    meter: &mut ParMeter,
) -> Result<Grounding, GroundError> {
    if let Some(v) = ticc_fotl::subst::free_vars(phi).into_iter().next() {
        return Err(GroundError::OpenFormula(v));
    }
    if phi.uses_extended_vocabulary() {
        return Err(GroundError::ExtendedVocabulary);
    }
    match classify(phi) {
        FormulaClass::Universal { .. } => {}
        other => return Err(GroundError::NotUniversal(other)),
    }
    let (external, matrix) = ticc_fotl::classify::external_prefix(phi);
    let external: Vec<String> = external.into_iter().map(str::to_owned).collect();
    let schema = history.schema().clone();
    let consts: Vec<Value> = schema.consts().map(|c| history.const_value(c)).collect();

    // M = R_D ∪ explicit formula values ∪ {z1..zk}.
    let mut rel = history.relevant();
    collect_values(phi, &mut rel);
    let mut m: Vec<GArg> = rel.into_iter().map(GArg::Rel).collect();
    for i in 0..external.len() {
        m.push(GArg::Fresh(i));
    }

    let mut arena = Arena::new();
    let mut letters: AtomInterner<LetterKey> = AtomInterner::new();

    let k = external.len();
    let msize = m.len();
    let mappings = msize.pow(k as u32).max(1);

    // Indexed strategy gate: folded construction, at least one external
    // variable, an equality-free matrix whose all-atoms-rigid-false
    // fold is ⊤, and a join that actually prunes (strictly fewer
    // candidates than |M|^k). Anything else keeps the odometer.
    let mut index_build = std::time::Duration::ZERO;
    let mut occ = BTreeMap::new();
    let mut plan: Option<IndexPlan> = None;
    let mut cands: Option<Vec<Vec<u32>>> = None;
    if strategy == GroundStrategy::Indexed && mode == GroundMode::Folded && k > 0 {
        let t0 = std::time::Instant::now();
        if let Some(patterns) = index_patterns(matrix, &external, &consts) {
            let folded = fold_rigid_false(&mut arena, matrix);
            if folded == arena.tru() {
                let o = build_occ(history);
                if let Some(list) = enumerate_active(&patterns, &o, &m, k, Some(mappings)) {
                    occ = o;
                    plan = Some(IndexPlan { patterns });
                    cands = Some(list);
                }
            }
        }
        index_build += t0.elapsed();
    }

    // Ψ_D: conjunction over the supported instantiations (indexed) or
    // all |M|^k mappings (odometer). Sharded when a worker pool is
    // requested and the instantiation list is large enough to feed it —
    // the pool is sized from the *pruned* count, so sparse histories do
    // not spin up idle workers; `k == 0` has a single mapping, nothing
    // to shard. Full mode keeps the interleaved first-sight letter
    // order its axiom block depends on, so it always runs sequentially.
    let items = cands.as_ref().map_or(mappings, Vec::len);
    let workers = if mode == GroundMode::Full {
        1
    } else {
        threads.workers_for(items)
    };

    // Phase L (folded mode): discover the letter vocabulary through the
    // sharded interner and seal it in canonical sorted-key order. Both
    // the sequential and the sharded Phase F then build against the
    // same fixed atom table, which is what makes the sharded path
    // bit-identical to `Threads::Off` without any replay or re-merge.
    if mode == GroundMode::Folded {
        let patterns = letter_patterns(matrix);
        let digit: HashMap<&str, usize> = external
            .iter()
            .enumerate()
            .map(|(i, v)| (v.as_str(), i))
            .collect();
        let sink: ShardedInterner<LetterKey> = ShardedInterner::new();
        if let Some(list) = &cands {
            par::map_chunked(list.len(), workers, meter, |_, range| {
                for cand in &list[range] {
                    note_letters_digits(&sink, &schema, &consts, &patterns, &m, &digit, cand);
                }
            });
        } else {
            par::map_chunked(mappings, workers, meter, |_, range| {
                let mut digits = vec![0u32; k];
                for n in range {
                    let mut rem = n;
                    for d in digits.iter_mut() {
                        *d = (rem % msize) as u32;
                        rem /= msize;
                    }
                    note_letters_digits(&sink, &schema, &consts, &patterns, &m, &digit, &digits);
                }
            });
        }
        sink.seal(&mut arena, &mut letters);
    }

    // Phase F: build Ψ_D against the sealed vocabulary.
    let mut inst_shared = 0usize;
    let mut psi_d;
    if let Some(list) = &cands {
        psi_d = ground_cands(
            mode,
            &schema,
            &consts,
            &m,
            &external,
            matrix,
            list,
            workers,
            &mut arena,
            &mut letters,
            &mut inst_shared,
            meter,
        )?;
    } else if workers > 1 && k > 0 {
        psi_d = ground_psi_sharded(
            mode,
            &schema,
            &consts,
            &m,
            &external,
            matrix,
            mappings,
            workers,
            &mut arena,
            &mut letters,
            meter,
        )?;
    } else {
        let mut ctx = GroundCtx {
            mode,
            schema: &schema,
            consts: &consts,
            arena: &mut arena,
            letters: &mut letters,
        };
        psi_d = ctx.arena.tru();
        let mut idx = vec![0usize; k];
        loop {
            let mut map: HashMap<&str, GArg> = HashMap::with_capacity(k);
            for (v, &i) in external.iter().zip(&idx) {
                map.insert(v.as_str(), m[i]);
            }
            let inst = ctx.ground_matrix(matrix, &map)?;
            psi_d = ctx.arena.and(psi_d, inst);
            // Odometer over |M|^k; k == 0 yields exactly one mapping.
            let mut pos = 0;
            while pos < k {
                idx[pos] += 1;
                if idx[pos] < msize {
                    break;
                }
                idx[pos] = 0;
                pos += 1;
            }
            if pos == k {
                break;
            }
        }
    }

    let mut axiom_conjuncts = 0usize;
    let formula = match mode {
        GroundMode::Folded => psi_d,
        GroundMode::Full => {
            let mut ctx = GroundCtx {
                mode,
                schema: &schema,
                consts: &consts,
                arena: &mut arena,
                letters: &mut letters,
            };
            let ax = ctx.axiom_d(&m, &mut axiom_conjuncts);
            let boxed = ctx.arena.always(ax);
            ctx.arena.and(psi_d, boxed)
        }
    };

    // w_D.
    let mut trace = Vec::with_capacity(history.len());
    for t in 0..history.len() {
        let w = build_prop_state(
            mode,
            &schema,
            &consts,
            &m,
            &mut arena,
            &mut letters,
            history.state(t),
        );
        trace.push(w);
    }

    let inst_enumerated = cands.as_ref().map_or(mappings, Vec::len);
    let stats = GroundStats {
        m_size: msize,
        external_vars: k,
        mappings,
        letters: arena.atom_count(),
        axiom_conjuncts,
        formula_tree_size: arena.tree_size(formula),
        formula_dag_size: arena.dag_size(formula),
        inst_enumerated,
        inst_pruned: mappings - inst_enumerated,
        inst_shared,
    };
    let known: BTreeSet<Value> = m
        .iter()
        .filter_map(|&a| match a {
            GArg::Rel(v) => Some(v),
            _ => None,
        })
        .collect();
    let letter_index = build_letter_index(&letters);
    let active: HashSet<Vec<u32>> = cands.into_iter().flatten().collect();
    Ok(Grounding {
        arena,
        formula,
        trace,
        m,
        stats,
        mode,
        schema,
        consts,
        letters,
        external,
        matrix: matrix.clone(),
        known,
        letter_index,
        plan,
        occ,
        active,
        index_build,
        scratch: FastScratch::default(),
    })
}

/// Builds `Ψ_D` over an explicit candidate list (the indexed path),
/// sequentially or sharded over `workers` chunks of the list. Both
/// walks run against the vocabulary Phase L sealed: the sharded
/// workers ground into private arenas pre-seeded with the sealed atom
/// table (identical dense ids, so the atom remap is the identity) and
/// the merge re-folds each instantiation in chunk order — the letter
/// table, conjunction order, and `inst_shared` count are bit-identical
/// to the sequential walk.
#[allow(clippy::too_many_arguments)]
fn ground_cands(
    mode: GroundMode,
    schema: &Schema,
    consts: &[Value],
    m: &[GArg],
    external: &[String],
    matrix: &Formula,
    cands: &[Vec<u32>],
    workers: usize,
    arena: &mut Arena,
    letters: &mut AtomInterner<LetterKey>,
    inst_shared: &mut usize,
    meter: &mut ParMeter,
) -> Result<FormulaId, GroundError> {
    let digit: HashMap<&str, usize> = external
        .iter()
        .enumerate()
        .map(|(i, v)| (v.as_str(), i))
        .collect();
    let mut seen: HashSet<FormulaId> = HashSet::new();
    if workers <= 1 {
        let mut ctx = GroundCtx {
            mode,
            schema,
            consts,
            arena,
            letters,
        };
        let share = SharePlan::build(matrix, &digit, m.len());
        let mut memo = ShareMemo::new();
        let mut psi_d = ctx.arena.tru();
        for cand in cands {
            let inst =
                ctx.ground_matrix_digits(matrix, &digit, m, cand, share.as_ref(), &mut memo)?;
            if !seen.insert(inst) {
                *inst_shared += 1;
            }
            psi_d = ctx.arena.and(psi_d, inst);
        }
        return Ok(psi_d);
    }
    struct ChunkOut {
        arena: Arena,
        insts: Vec<FormulaId>,
    }
    let base_atoms = arena.atom_count();
    let names: &[String] = arena.atom_names_in_order();
    let shared_letters: &AtomInterner<LetterKey> = letters;
    let chunks = par::map_chunked(cands.len(), workers, meter, |_, range| {
        let mut warena = Arena::new();
        for name in names {
            warena.intern_atom(name);
        }
        let mut wletters = shared_letters.clone();
        let mut insts = Vec::with_capacity(range.len());
        {
            let mut ctx = GroundCtx {
                mode,
                schema,
                consts,
                arena: &mut warena,
                letters: &mut wletters,
            };
            let share = SharePlan::build(matrix, &digit, m.len());
            let mut memo = ShareMemo::new();
            for cand in &cands[range] {
                insts.push(ctx.ground_matrix_digits(
                    matrix,
                    &digit,
                    m,
                    cand,
                    share.as_ref(),
                    &mut memo,
                )?);
            }
        }
        debug_assert_eq!(
            warena.atom_count(),
            base_atoms,
            "phase L covered the full letter vocabulary"
        );
        Ok(ChunkOut {
            arena: warena,
            insts,
        })
    });
    let remap: Vec<AtomId> = (0..base_atoms as u32).map(AtomId).collect();
    let mut psi_d = arena.tru();
    for chunk in chunks {
        let chunk: ChunkOut = chunk?;
        let mut memo = HashMap::new();
        for inst in chunk.insts {
            let f = arena.translate_from(&chunk.arena, inst, &remap, &mut memo);
            if !seen.insert(f) {
                *inst_shared += 1;
            }
            psi_d = arena.and(psi_d, f);
        }
    }
    Ok(psi_d)
}

/// Builds `Ψ_D` by sharding the linearised instantiation space
/// `0..mappings` across worker threads.
///
/// Instantiation `n` corresponds to the odometer digits
/// `idx[i] = (n / |M|^i) mod |M|` (digit 0 fastest), so chunking the
/// linear index preserves the sequential enumeration order exactly.
/// Each worker grounds its chunk into a private arena pre-seeded with
/// the atom table Phase L sealed (identical dense ids — the remap into
/// the main arena is the identity) and the merge re-folds each
/// instantiation into the main arena through [`Arena::translate_from`],
/// conjoining in global mapping order.
#[allow(clippy::too_many_arguments)]
fn ground_psi_sharded(
    mode: GroundMode,
    schema: &Schema,
    consts: &[Value],
    m: &[GArg],
    external: &[String],
    matrix: &Formula,
    mappings: usize,
    workers: usize,
    arena: &mut Arena,
    letters: &mut AtomInterner<LetterKey>,
    meter: &mut ParMeter,
) -> Result<FormulaId, GroundError> {
    struct ChunkOut {
        arena: Arena,
        insts: Vec<FormulaId>,
    }
    let k = external.len();
    let msize = m.len();
    let base_atoms = arena.atom_count();
    let names: &[String] = arena.atom_names_in_order();
    let shared_letters: &AtomInterner<LetterKey> = letters;
    let chunks = par::map_chunked(mappings, workers, meter, |_, range| {
        let mut warena = Arena::new();
        for name in names {
            warena.intern_atom(name);
        }
        let mut wletters = shared_letters.clone();
        let mut insts = Vec::with_capacity(range.len());
        {
            let mut ctx = GroundCtx {
                mode,
                schema,
                consts,
                arena: &mut warena,
                letters: &mut wletters,
            };
            for n in range {
                let mut rem = n;
                let mut map: HashMap<&str, GArg> = HashMap::with_capacity(k);
                for v in external {
                    map.insert(v.as_str(), m[rem % msize]);
                    rem /= msize;
                }
                insts.push(ctx.ground_matrix(matrix, &map)?);
            }
        }
        debug_assert_eq!(
            warena.atom_count(),
            base_atoms,
            "phase L covered the full letter vocabulary"
        );
        Ok(ChunkOut {
            arena: warena,
            insts,
        })
    });
    let remap: Vec<AtomId> = (0..base_atoms as u32).map(AtomId).collect();
    let mut psi_d = arena.tru();
    for chunk in chunks {
        let chunk: ChunkOut = chunk?;
        let mut memo = HashMap::new();
        for inst in chunk.insts {
            let f = arena.translate_from(&chunk.arena, inst, &remap, &mut memo);
            psi_d = arena.and(psi_d, f);
        }
    }
    Ok(psi_d)
}

/// Cross-instantiation structure-sharing plan: each AST node of the
/// matrix gets a dense id plus the bitmask of external digits free in
/// it, so ground subformulas can be memoised per `(subformula,
/// partial-assignment signature)`. Two instantiations that agree on
/// the digits a subformula actually mentions share its ground sub-DAG
/// without re-walking it. Built only when every signature packs into a
/// `u128` (`k · ⌈log2 |M|⌉ ≤ 120`, which is always the case in
/// practice); otherwise the enumerator grounds unmemoised — the arena
/// still hash-conses node-by-node.
struct SharePlan {
    /// AST node address → (dense id, free-digit mask).
    nodes: HashMap<usize, (u32, u64)>,
    msize: u128,
}

impl SharePlan {
    fn build(matrix: &Formula, digit: &HashMap<&str, usize>, msize: usize) -> Option<SharePlan> {
        let k = digit.len();
        if k > 64 {
            return None;
        }
        let bits = usize::BITS - msize.next_power_of_two().leading_zeros();
        if k as u32 * bits > 120 {
            return None;
        }
        let mut nodes = HashMap::new();
        fn walk(
            f: &Formula,
            digit: &HashMap<&str, usize>,
            nodes: &mut HashMap<usize, (u32, u64)>,
        ) -> u64 {
            let mut mask = 0u64;
            if let Formula::Atom(a) = f {
                for t in a.terms() {
                    if let Term::Var(v) = t {
                        if let Some(&d) = digit.get(v.as_str()) {
                            mask |= 1 << d;
                        }
                    }
                }
            }
            for c in f.children() {
                mask |= walk(c, digit, nodes);
            }
            let id = nodes.len() as u32;
            nodes.insert(f as *const Formula as usize, (id, mask));
            mask
        }
        walk(matrix, digit, &mut nodes);
        Some(SharePlan {
            nodes,
            msize: msize as u128,
        })
    }

    /// The memo key for grounding `f` under `digits`, or `None` if `f`
    /// is not a planned node (the plan was built for another formula).
    fn key(&self, f: &Formula, digits: &[u32]) -> Option<(u32, u128)> {
        let &(id, mask) = self.nodes.get(&(f as *const Formula as usize))?;
        let mut sig: u128 = 0;
        let mut bits = mask;
        while bits != 0 {
            let d = bits.trailing_zeros() as usize;
            bits &= bits - 1;
            sig = sig * self.msize + digits[d] as u128;
        }
        Some((id, sig))
    }
}

/// Memo table for [`GroundCtx::ground_matrix_digits`].
type ShareMemo = HashMap<(u32, u128), FormulaId>;

/// Borrowed working set for formula construction. On the sharded
/// Phase F path the arena/letters pair is a per-worker copy pre-seeded
/// with the sealed vocabulary, so `letter` is a guaranteed hit and the
/// worker never perturbs the shared atom table.
struct GroundCtx<'a> {
    mode: GroundMode,
    schema: &'a Schema,
    consts: &'a [Value],
    arena: &'a mut Arena,
    letters: &'a mut AtomInterner<LetterKey>,
}

impl GroundCtx<'_> {
    fn resolve(&self, t: &Term, map: &HashMap<&str, GArg>) -> GArg {
        match t {
            Term::Var(v) => *map
                .get(v.as_str())
                .expect("universal sentence: all variables externally bound"),
            Term::Value(v) => GArg::Rel(*v),
            Term::Const(c) => match self.mode {
                GroundMode::Folded => GArg::Rel(self.consts[c.index()]),
                GroundMode::Full => GArg::Const(*c),
            },
        }
    }

    fn letter(&mut self, key: LetterKey) -> AtomId {
        let schema = self.schema;
        self.letters
            .intern(self.arena, key, |k| render_letter(k, schema))
    }

    fn eq_letter(&mut self, a: GArg, b: GArg) -> FormulaId {
        let id = self.letter(LetterKey::Eq(a, b));
        self.arena.atom_id(id)
    }

    fn pred_letter(&mut self, p: PredId, args: Vec<GArg>) -> FormulaId {
        let id = self.letter(LetterKey::Pred(p, args));
        self.arena.atom_id(id)
    }

    fn ground_matrix(
        &mut self,
        f: &Formula,
        map: &HashMap<&str, GArg>,
    ) -> Result<FormulaId, GroundError> {
        Ok(match f {
            Formula::True => self.arena.tru(),
            Formula::False => self.arena.fls(),
            Formula::Atom(a) => self.ground_atom(a, map)?,
            Formula::Not(g) => {
                let x = self.ground_matrix(g, map)?;
                self.arena.not(x)
            }
            Formula::And(a, b) => {
                let x = self.ground_matrix(a, map)?;
                let y = self.ground_matrix(b, map)?;
                self.arena.and(x, y)
            }
            Formula::Or(a, b) => {
                let x = self.ground_matrix(a, map)?;
                let y = self.ground_matrix(b, map)?;
                self.arena.or(x, y)
            }
            Formula::Implies(a, b) => {
                let x = self.ground_matrix(a, map)?;
                let y = self.ground_matrix(b, map)?;
                self.arena.implies(x, y)
            }
            Formula::Next(g) => {
                let x = self.ground_matrix(g, map)?;
                self.arena.next(x)
            }
            Formula::Until(a, b) => {
                let x = self.ground_matrix(a, map)?;
                let y = self.ground_matrix(b, map)?;
                self.arena.until(x, y)
            }
            Formula::Forall(_, _) | Formula::Exists(_, _) => {
                unreachable!("universal matrix is quantifier-free (checked by classify)")
            }
            Formula::Prev(_) | Formula::Since(_, _) => {
                unreachable!("universal sentences are future-only (checked by classify)")
            }
        })
    }

    fn ground_atom(
        &mut self,
        a: &Atom,
        map: &HashMap<&str, GArg>,
    ) -> Result<FormulaId, GroundError> {
        match a {
            Atom::Eq(t1, t2) => {
                let (x, y) = (self.resolve(t1, map), self.resolve(t2, map));
                match self.mode {
                    GroundMode::Folded => {
                        if gargs_equal(x, y, self.consts) {
                            Ok(self.arena.tru())
                        } else {
                            Ok(self.arena.fls())
                        }
                    }
                    GroundMode::Full => Ok(self.eq_letter(x, y)),
                }
            }
            Atom::Pred(p, ts) => {
                let args: Vec<GArg> = ts.iter().map(|t| self.resolve(t, map)).collect();
                if self.mode == GroundMode::Folded
                    && args.iter().any(|a| matches!(a, GArg::Fresh(_)))
                {
                    // Axiom_D forces p(…z…) false for all time; fold it.
                    return Ok(self.arena.fls());
                }
                Ok(self.pred_letter(*p, args))
            }
            Atom::Leq(_, _) | Atom::Succ(_, _) | Atom::Zero(_) => {
                Err(GroundError::ExtendedVocabulary)
            }
        }
    }

    /// [`GroundCtx::ground_matrix`] for the indexed enumerator: the
    /// assignment is a digit vector over `m` instead of a name map, and
    /// ground subformulas are memoised per `(subformula,
    /// partial-assignment signature)` through the share plan.
    #[allow(clippy::too_many_arguments)]
    fn ground_matrix_digits(
        &mut self,
        f: &Formula,
        digit: &HashMap<&str, usize>,
        m: &[GArg],
        digits: &[u32],
        share: Option<&SharePlan>,
        memo: &mut ShareMemo,
    ) -> Result<FormulaId, GroundError> {
        let key = share.and_then(|s| s.key(f, digits));
        if let Some(k) = key {
            if let Some(&g) = memo.get(&k) {
                return Ok(g);
            }
        }
        let out = match f {
            Formula::True => self.arena.tru(),
            Formula::False => self.arena.fls(),
            Formula::Atom(a) => self.ground_atom_digits(a, digit, m, digits)?,
            Formula::Not(g) => {
                let x = self.ground_matrix_digits(g, digit, m, digits, share, memo)?;
                self.arena.not(x)
            }
            Formula::And(a, b) => {
                let x = self.ground_matrix_digits(a, digit, m, digits, share, memo)?;
                let y = self.ground_matrix_digits(b, digit, m, digits, share, memo)?;
                self.arena.and(x, y)
            }
            Formula::Or(a, b) => {
                let x = self.ground_matrix_digits(a, digit, m, digits, share, memo)?;
                let y = self.ground_matrix_digits(b, digit, m, digits, share, memo)?;
                self.arena.or(x, y)
            }
            Formula::Implies(a, b) => {
                let x = self.ground_matrix_digits(a, digit, m, digits, share, memo)?;
                let y = self.ground_matrix_digits(b, digit, m, digits, share, memo)?;
                self.arena.implies(x, y)
            }
            Formula::Next(g) => {
                let x = self.ground_matrix_digits(g, digit, m, digits, share, memo)?;
                self.arena.next(x)
            }
            Formula::Until(a, b) => {
                let x = self.ground_matrix_digits(a, digit, m, digits, share, memo)?;
                let y = self.ground_matrix_digits(b, digit, m, digits, share, memo)?;
                self.arena.until(x, y)
            }
            Formula::Forall(_, _) | Formula::Exists(_, _) => {
                unreachable!("universal matrix is quantifier-free (checked by classify)")
            }
            Formula::Prev(_) | Formula::Since(_, _) => {
                unreachable!("universal sentences are future-only (checked by classify)")
            }
        };
        if let Some(k) = key {
            memo.insert(k, out);
        }
        Ok(out)
    }

    fn ground_atom_digits(
        &mut self,
        a: &Atom,
        digit: &HashMap<&str, usize>,
        m: &[GArg],
        digits: &[u32],
    ) -> Result<FormulaId, GroundError> {
        let resolve = |t: &Term| -> GArg {
            match t {
                Term::Var(v) => m[digits[digit[v.as_str()]] as usize],
                Term::Value(v) => GArg::Rel(*v),
                Term::Const(c) => match self.mode {
                    GroundMode::Folded => GArg::Rel(self.consts[c.index()]),
                    GroundMode::Full => GArg::Const(*c),
                },
            }
        };
        match a {
            Atom::Eq(t1, t2) => {
                let (x, y) = (resolve(t1), resolve(t2));
                match self.mode {
                    GroundMode::Folded => {
                        if gargs_equal(x, y, self.consts) {
                            Ok(self.arena.tru())
                        } else {
                            Ok(self.arena.fls())
                        }
                    }
                    GroundMode::Full => Ok(self.eq_letter(x, y)),
                }
            }
            Atom::Pred(p, ts) => {
                let args: Vec<GArg> = ts.iter().map(resolve).collect();
                if self.mode == GroundMode::Folded
                    && args.iter().any(|a| matches!(a, GArg::Fresh(_)))
                {
                    return Ok(self.arena.fls());
                }
                Ok(self.pred_letter(*p, args))
            }
            Atom::Leq(_, _) | Atom::Succ(_, _) | Atom::Zero(_) => {
                Err(GroundError::ExtendedVocabulary)
            }
        }
    }

    /// `Axiom_D`, as one conjunction (wrapped in `□` by the caller).
    /// Full mode only.
    fn axiom_d(&mut self, m: &[GArg], count: &mut usize) -> FormulaId {
        let mut all: Vec<GArg> = m.to_vec();
        all.extend(self.schema.consts().map(GArg::Const));

        let mut conjuncts: Vec<FormulaId> = Vec::new();

        // Equality is reflexive / symmetric / transitive.
        for &a in &all {
            let e = self.eq_letter(a, a);
            conjuncts.push(e);
        }
        for &a in &all {
            for &b in &all {
                if a == b {
                    continue;
                }
                let ab = self.eq_letter(a, b);
                let ba = self.eq_letter(b, a);
                conjuncts.push(self.arena.iff(ab, ba));
            }
        }
        for &a in &all {
            for &b in &all {
                for &c in &all {
                    let ab = self.eq_letter(a, b);
                    let bc = self.eq_letter(b, c);
                    let ac = self.eq_letter(a, c);
                    let pre = self.arena.and(ab, bc);
                    conjuncts.push(self.arena.implies(pre, ac));
                }
            }
        }
        // Congruence for each predicate.
        for p in self.schema.preds() {
            let r = self.schema.arity(p);
            let vecs = vectors(&all, r);
            for av in &vecs {
                for bv in &vecs {
                    let mut eqs = self.arena.tru();
                    for (&a, &b) in av.iter().zip(bv) {
                        let e = self.eq_letter(a, b);
                        eqs = self.arena.and(eqs, e);
                    }
                    let pa = self.pred_letter(p, av.clone());
                    let pb = self.pred_letter(p, bv.clone());
                    let same = self.arena.iff(pa, pb);
                    conjuncts.push(self.arena.implies(eqs, same));
                }
            }
        }
        // Decided rigid (in)equalities, and z_i distinct from everything.
        for &a in &all {
            for &b in &all {
                if a == b {
                    continue; // (a=a) covered by reflexivity
                }
                let e = self.eq_letter(a, b);
                let lit = if gargs_equal(a, b, self.consts) {
                    e
                } else {
                    self.arena.not(e)
                };
                conjuncts.push(lit);
            }
        }
        // p(…z…) is false.
        for p in self.schema.preds() {
            let r = self.schema.arity(p);
            for av in vectors(&all, r) {
                if av.iter().any(|a| matches!(a, GArg::Fresh(_))) {
                    let pa = self.pred_letter(p, av);
                    let nf = self.arena.not(pa);
                    conjuncts.push(nf);
                }
            }
        }
        *count = conjuncts.len();
        self.arena.and_all(conjuncts)
    }
}

/// Builds the propositional description `w_ℓ` of one database state.
fn build_prop_state(
    mode: GroundMode,
    schema: &Schema,
    consts: &[Value],
    m: &[GArg],
    arena: &mut Arena,
    letters: &mut AtomInterner<LetterKey>,
    state: &State,
) -> PropState {
    let mut w = PropState::new();
    match mode {
        GroundMode::Folded => {
            // Only p(v⃗) letters over relevant elements are needed.
            for p in schema.preds() {
                for tuple in state.relation(p).iter() {
                    let args: Vec<GArg> = tuple.iter().map(|&v| GArg::Rel(v)).collect();
                    let a = intern_letter(arena, letters, schema, LetterKey::Pred(p, args));
                    w.set(a, true);
                }
            }
        }
        GroundMode::Full => {
            let mut all: Vec<GArg> = m.to_vec();
            all.extend(schema.consts().map(GArg::Const));
            // Rigid equality letters.
            for &a in &all {
                for &b in &all {
                    if gargs_equal(a, b, consts) {
                        let at = intern_letter(arena, letters, schema, LetterKey::Eq(a, b));
                        w.set(at, true);
                    }
                }
            }
            // All predicate letters whose interpreted tuple holds.
            for p in schema.preds() {
                let r = schema.arity(p);
                for av in vectors(&all, r) {
                    let vals: Option<Vec<Value>> =
                        av.iter().map(|&a| garg_value(a, consts)).collect();
                    let holds = vals.map(|t| state.holds(p, &t)).unwrap_or(false);
                    if holds {
                        let at = intern_letter(arena, letters, schema, LetterKey::Pred(p, av));
                        w.set(at, true);
                    }
                }
            }
        }
    }
    w
}

/// Result of an incremental re-grounding step.
pub(crate) struct DeltaGround {
    /// The conjunction of the newly grounded instantiations (those
    /// mentioning at least one delta element).
    pub psi_new: FormulaId,
    /// How many new instantiations were grounded.
    pub new_mappings: u64,
}

impl Grounding {
    /// Translates a further database state to a propositional state
    /// (used by the monitor for states appended after grounding).
    ///
    /// Returns `None` if the state mentions an element outside `M`'s
    /// relevant part — the caller must re-ground.
    pub fn state_to_prop(&mut self, state: &State) -> Option<PropState> {
        for p in self.schema.preds() {
            for tuple in state.relation(p).iter() {
                if tuple.iter().any(|v| !self.known.contains(v)) {
                    return None;
                }
            }
        }
        Some(self.encode_state(state))
    }

    /// The concrete values in `M` (the grounding's known universe).
    /// Maintained persistently: built at grounding time, extended by
    /// `Grounding::ground_delta`.
    pub fn known_values(&self) -> &BTreeSet<Value> {
        &self.known
    }

    /// Recomputes the net-effect scratch for `tx`: one `(update index,
    /// present)` pair per *net* touched tuple, sorted by `(pred,
    /// tuple)` with last-update-wins dedup — the same contents (and
    /// iteration order) as the old per-call [`tx_net`] map, but into
    /// the recycled buffer. Allocation-free once the buffer has grown
    /// to the workload's transaction width.
    fn fill_net_scratch(&mut self, tx: &Transaction) {
        let updates = tx.updates();
        let cap = self.scratch.net.capacity();
        let net = &mut self.scratch.net;
        net.clear();
        net.extend(
            updates
                .iter()
                .enumerate()
                .map(|(i, u)| (i as u32, matches!(u, Update::Insert(..)))),
        );
        // Unstable sort (no temp-buffer allocation) made stable by the
        // index tie-break, so equal keys keep update order for the
        // last-wins dedup below.
        net.sort_unstable_by(|a, b| {
            update_key(&updates[a.0 as usize])
                .cmp(&update_key(&updates[b.0 as usize]))
                .then(a.0.cmp(&b.0))
        });
        let mut w = 0usize;
        for r in 0..net.len() {
            if w > 0
                && update_key(&updates[net[w - 1].0 as usize])
                    == update_key(&updates[net[r].0 as usize])
            {
                net[w - 1] = net[r];
            } else {
                net[w] = net[r];
                w += 1;
            }
        }
        net.truncate(w);
        if self.scratch.net.capacity() > cap {
            self.scratch.allocs += 1;
        }
    }

    /// Whether `tx` introduces a relevant element outside the known
    /// universe — `!tx_delta(tx).is_empty()` without the allocation.
    /// `&mut` because it reuses the net-effect scratch buffer.
    pub(crate) fn tx_has_delta(&mut self, tx: &Transaction) -> bool {
        self.fill_net_scratch(tx);
        let updates = tx.updates();
        self.scratch.net.iter().any(|&(i, present)| {
            present
                && update_key(&updates[i as usize])
                    .1
                    .iter()
                    .any(|v| !self.known.contains(v))
        })
    }

    /// Whether `tx` net-inserts a tuple that has never occurred in any
    /// state — `!newly_occurring(tx).is_empty()` without the
    /// allocation. Always `false` under the odometer strategy.
    pub(crate) fn has_newly_occurring(&mut self, tx: &Transaction) -> bool {
        if self.plan.is_none() {
            return false;
        }
        self.fill_net_scratch(tx);
        let updates = tx.updates();
        self.scratch.net.iter().any(|&(i, present)| {
            let (p, tuple) = update_key(&updates[i as usize]);
            present && !self.occ.get(&p).is_some_and(|s| s.contains(tuple))
        })
    }

    /// Capacity growths of the fast-append scratch buffers since the
    /// grounding was built. The engine differences this around each
    /// step to extend the `pool_buf_allocs` no-alloc accounting to the
    /// grounding layer.
    pub(crate) fn scratch_allocs(&self) -> u64 {
        self.scratch.allocs
    }

    /// The letters patched by the last [`Grounding::patch_state`] call,
    /// in deterministic patch order (valid until the next fast-append
    /// scratch use).
    pub(crate) fn patched_letters(&self) -> &[AtomId] {
        &self.scratch.patched
    }

    /// The new relevant elements a transaction introduces: values of
    /// net-inserted tuples outside the known universe, sorted. Empty
    /// exactly when the fast path applies. `O(|Δtx| log |Δtx|)`.
    pub(crate) fn tx_delta(&self, tx: &Transaction) -> Vec<Value> {
        let mut delta = BTreeSet::new();
        for ((_, tuple), present) in tx_net(tx) {
            if present {
                for v in tuple {
                    if !self.known.contains(v) {
                        delta.insert(*v);
                    }
                }
            }
        }
        delta.into_iter().collect()
    }

    /// The letter for a ground fact `p(v⃗)`, through the inverted
    /// index; interns (and indexes) the letter on first sight.
    fn state_letter(&mut self, p: PredId, tuple: &[Value]) -> AtomId {
        if let Some(&a) = self.letter_index.get(&p).and_then(|m| m.get(tuple)) {
            return a;
        }
        let args: Vec<GArg> = tuple.iter().map(|&v| GArg::Rel(v)).collect();
        let a = intern_letter(
            &mut self.arena,
            &mut self.letters,
            &self.schema,
            LetterKey::Pred(p, args),
        );
        self.letter_index
            .entry(p)
            .or_default()
            .insert(tuple.to_vec(), a);
        a
    }

    /// Read-only letter lookup for a ground fact; memoises an index
    /// entry when the letter exists but was interned by another path
    /// (delta re-grounding, a full encode).
    fn lookup_state_letter(&mut self, p: PredId, tuple: &[Value]) -> Option<AtomId> {
        if let Some(&a) = self.letter_index.get(&p).and_then(|m| m.get(tuple)) {
            return Some(a);
        }
        let args: Vec<GArg> = tuple.iter().map(|&v| GArg::Rel(v)).collect();
        let a = self.letters.get(&LetterKey::Pred(p, args))?;
        self.letter_index
            .entry(p)
            .or_default()
            .insert(tuple.to_vec(), a);
        Some(a)
    }

    /// Incremental fast-path encoding: derives the valuation of the
    /// state produced by `tx` by patching the valuation of the previous
    /// state (the stored trace's last entry) in place — `O(|Δtx|)`
    /// letter flips through the inverted index, instead of walking the
    /// whole state. Bit-identical to [`Grounding::state_to_prop`] on
    /// the same state, including the order fresh letters are interned
    /// (the net updates are patched in sorted `(pred, tuple)` order).
    ///
    /// Returns `None` when a net-inserted tuple mentions an element
    /// outside the known universe (the caller must re-ground), `Some`
    /// with the new valuation otherwise; the letters patched (in the
    /// deterministic patch order — the compiled-automaton layer uses
    /// the list to update only the touched units' columns) are left in
    /// the recycled scratch buffer, readable via
    /// [`Grounding::patched_letters`] until the next fast-append
    /// scratch use. Folded groundings only; allocation-free after
    /// warm-up on the steady-state path (no fresh letters).
    pub(crate) fn patch_state(&mut self, tx: &Transaction) -> Option<PropState> {
        debug_assert_eq!(self.mode, GroundMode::Folded);
        self.fill_net_scratch(tx);
        let updates = tx.updates();
        for &(i, present) in &self.scratch.net {
            let (_, tuple) = update_key(&updates[i as usize]);
            if present && tuple.iter().any(|v| !self.known.contains(v)) {
                return None;
            }
        }
        let mut w = self.trace.last().cloned().unwrap_or_default();
        let pcap = self.scratch.patched.capacity();
        self.scratch.patched.clear();
        for k in 0..self.scratch.net.len() {
            let (i, present) = self.scratch.net[k];
            let (p, tuple) = update_key(&updates[i as usize]);
            if present {
                let a = self.state_letter(p, tuple);
                w.set(a, true);
                self.scratch.patched.push(a);
            } else if let Some(a) = self.lookup_state_letter(p, tuple) {
                w.set(a, false);
                self.scratch.patched.push(a);
            }
        }
        if self.scratch.patched.capacity() > pcap {
            self.scratch.allocs += 1;
        }
        Some(w)
    }

    /// Number of `(pred, tuple) → letter` entries in the inverted
    /// index (the `letter index` gauge of the `:stats` cache section).
    pub fn letter_index_len(&self) -> usize {
        self.letter_index.values().map(|m| m.len()).sum()
    }

    /// Encodes a state over `M` without the known-universe check (the
    /// caller has already extended `M` to cover it).
    pub(crate) fn encode_state(&mut self, state: &State) -> PropState {
        build_prop_state(
            self.mode,
            &self.schema,
            &self.consts,
            &self.m,
            &mut self.arena,
            &mut self.letters,
            state,
        )
    }

    /// Re-encodes a state that was already encoded into the stored
    /// trace at some earlier instant, via read-only letter lookup —
    /// bit-identical to the valuation the original encode produced.
    /// The engine uses this to replay delta conjunct blocks through
    /// history instants it has truncated and spilled: every tuple of
    /// such a state had its letter interned when the instant was first
    /// encoded (folded mode interns a letter per occurring tuple), so
    /// the lookup never misses, and letters interned later default to
    /// `false` in both the original and the re-encoded valuation.
    /// Folded groundings only.
    pub(crate) fn encode_state_frozen(&mut self, state: &State) -> PropState {
        debug_assert_eq!(self.mode, GroundMode::Folded);
        let schema = self.schema.clone();
        let mut w = PropState::new();
        for p in schema.preds() {
            for tuple in state.relation(p).iter() {
                match self.lookup_state_letter(p, tuple) {
                    Some(a) => w.set(a, true),
                    None => debug_assert!(
                        false,
                        "spilled state mentions a tuple that was never encoded"
                    ),
                }
            }
        }
        w
    }

    /// Drops the first `k` stored trace states — the grounding-side
    /// half of a history truncation. The engine truncates every
    /// context's trace in lockstep with the history, keeping the
    /// invariant `trace.len() == history.len() - history.base()` for
    /// *live* constraints. A violated constraint's trace froze at its
    /// violation instant (the engine never steps it again), so the
    /// drain clamps: its leftover prefix is dead data either way.
    pub(crate) fn truncate_trace(&mut self, k: usize) {
        self.trace.drain(..k.min(self.trace.len()));
    }

    /// Incremental re-grounding: `R_D` grew by `delta`. Appends the new
    /// elements to `M` and grounds **only** the instantiations that
    /// mention at least one of them — `|M'|^k − |M|^k` new conjuncts
    /// instead of re-deriving all `|M'|^k`. The new conjunct block is
    /// conjoined into `self.formula` and returned separately so an
    /// engine holding a progressed residue can replay just the new
    /// block through its stored trace.
    ///
    /// Only valid in [`GroundMode::Folded`]: the full construction's
    /// `□Axiom_D` and rigid-equality letters are global over `M`, so an
    /// enlarged universe invalidates the encoded trace and forces a
    /// rebuild.
    pub(crate) fn ground_delta(&mut self, delta: &[Value]) -> Result<DeltaGround, GroundError> {
        assert_eq!(
            self.mode,
            GroundMode::Folded,
            "delta re-grounding requires the folded construction"
        );
        let old_len = self.m.len();
        self.m.extend(delta.iter().map(|&v| GArg::Rel(v)));
        self.known.extend(delta.iter().copied());
        let msize = self.m.len();
        let k = self.external.len();

        let mut ctx = GroundCtx {
            mode: self.mode,
            schema: &self.schema,
            consts: &self.consts,
            arena: &mut self.arena,
            letters: &mut self.letters,
        };
        let mut psi_new = ctx.arena.tru();
        let mut new_mappings = 0u64;
        // Mappings touching ≥1 new element, each enumerated exactly
        // once: `p` is the position of the *first* new element, so
        // positions before `p` range over the old part, `p` over the
        // delta, and positions after `p` over all of `M`.
        for p in 0..k {
            let ranges: Vec<std::ops::Range<usize>> = (0..k)
                .map(|i| match i.cmp(&p) {
                    std::cmp::Ordering::Less => 0..old_len,
                    std::cmp::Ordering::Equal => old_len..msize,
                    std::cmp::Ordering::Greater => 0..msize,
                })
                .collect();
            if ranges.iter().any(|r| r.is_empty()) {
                continue;
            }
            let mut idx: Vec<usize> = ranges.iter().map(|r| r.start).collect();
            loop {
                let mut map: HashMap<&str, GArg> = HashMap::with_capacity(k);
                for (v, &i) in self.external.iter().zip(&idx) {
                    map.insert(v.as_str(), self.m[i]);
                }
                let inst = ctx.ground_matrix(&self.matrix, &map)?;
                psi_new = ctx.arena.and(psi_new, inst);
                new_mappings += 1;
                let mut pos = 0;
                while pos < k {
                    idx[pos] += 1;
                    if idx[pos] < ranges[pos].end {
                        break;
                    }
                    idx[pos] = ranges[pos].start;
                    pos += 1;
                }
                if pos == k {
                    break;
                }
            }
        }
        self.formula = self.arena.and(self.formula, psi_new);
        self.stats.m_size = msize;
        self.stats.mappings = msize.pow(k as u32).max(1);
        self.stats.letters = self.arena.atom_count();
        self.stats.formula_tree_size = self.arena.tree_size(self.formula);
        self.stats.formula_dag_size = self.arena.dag_size(self.formula);
        self.stats.inst_enumerated = self.stats.mappings;
        Ok(DeltaGround {
            psi_new,
            new_mappings,
        })
    }

    /// Net-inserted tuples of `tx` that have never occurred in any
    /// state — the occurrence-index delta of this append. Empty under
    /// the odometer strategy (no index is maintained). Sorted in
    /// `(pred, tuple)` order.
    pub(crate) fn newly_occurring(&self, tx: &Transaction) -> Vec<(PredId, Vec<Value>)> {
        if self.plan.is_none() {
            return Vec::new();
        }
        let mut out = Vec::new();
        for ((p, tuple), present) in tx_net(tx) {
            if present && !self.occ.get(&p).is_some_and(|s| s.contains(tuple)) {
                out.push((p, tuple.to_vec()));
            }
        }
        out
    }

    /// Indexed re-grounding and activation: extends `M` by `delta`
    /// (possibly empty) and the occurrence index by `inserts`, then
    /// grounds exactly the instantiations that just became data-
    /// supported — either because they mention a new element or because
    /// a flexible atom of theirs matches a first-time tuple. The new
    /// block is conjoined into the formula and returned for trace
    /// replay (its letters are false in every earlier state, so the
    /// replay reconstructs precisely the progression the instantiation
    /// would have had if it had been enumerated from the start).
    ///
    /// Indexed strategy only (`self.plan` must be `Some`).
    pub(crate) fn ground_new_active(
        &mut self,
        delta: &[Value],
        inserts: &[(PredId, Vec<Value>)],
    ) -> Result<DeltaGround, GroundError> {
        assert!(
            self.plan.is_some(),
            "ground_new_active requires the indexed strategy"
        );
        self.m.extend(delta.iter().map(|&v| GArg::Rel(v)));
        self.known.extend(delta.iter().copied());
        for (p, tuple) in inserts {
            self.occ.entry(*p).or_default().insert(tuple.clone());
        }
        let k = self.external.len();
        let msize = self.m.len();
        let t0 = std::time::Instant::now();
        let plan = self.plan.as_ref().expect("checked above");
        let all = enumerate_active(&plan.patterns, &self.occ, &self.m, k, None)
            .expect("uncapped enumeration always succeeds");
        let fresh: Vec<Vec<u32>> = all
            .into_iter()
            .filter(|c| !self.active.contains(c))
            .collect();
        self.index_build += t0.elapsed();
        let digit: HashMap<&str, usize> = self
            .external
            .iter()
            .enumerate()
            .map(|(i, v)| (v.as_str(), i))
            .collect();
        let share = SharePlan::build(&self.matrix, &digit, msize);
        let mut memo = ShareMemo::new();
        let mut ctx = GroundCtx {
            mode: self.mode,
            schema: &self.schema,
            consts: &self.consts,
            arena: &mut self.arena,
            letters: &mut self.letters,
        };
        let mut psi_new = ctx.arena.tru();
        for cand in &fresh {
            let inst = ctx.ground_matrix_digits(
                &self.matrix,
                &digit,
                &self.m,
                cand,
                share.as_ref(),
                &mut memo,
            )?;
            psi_new = ctx.arena.and(psi_new, inst);
        }
        let new_mappings = fresh.len() as u64;
        self.active.extend(fresh);
        self.formula = self.arena.and(self.formula, psi_new);
        self.stats.m_size = msize;
        self.stats.mappings = msize.pow(k as u32).max(1);
        self.stats.letters = self.arena.atom_count();
        self.stats.formula_tree_size = self.arena.tree_size(self.formula);
        self.stats.formula_dag_size = self.arena.dag_size(self.formula);
        self.stats.inst_enumerated += new_mappings as usize;
        self.stats.inst_pruned = self.stats.mappings - self.stats.inst_enumerated;
        Ok(DeltaGround {
            psi_new,
            new_mappings,
        })
    }

    /// The effective enumeration strategy: [`GroundStrategy::Indexed`]
    /// exactly when the matrix passed the rigid-false-fold gate and the
    /// initial join pruned; otherwise the grounding behaves as (and
    /// reports) [`GroundStrategy::Odometer`].
    pub fn strategy(&self) -> GroundStrategy {
        if self.plan.is_some() {
            GroundStrategy::Indexed
        } else {
            GroundStrategy::Odometer
        }
    }

    /// The grounding mode used.
    pub fn mode(&self) -> GroundMode {
        self.mode
    }

    /// The schema the grounding was built against.
    pub fn schema(&self) -> &Arc<Schema> {
        &self.schema
    }

    /// Looks up the letter for a ground predicate fact, if it exists.
    pub fn pred_letter_id(&self, p: PredId, args: &[GArg]) -> Option<AtomId> {
        self.letters.get(&LetterKey::Pred(p, args.to_vec()))
    }

    /// Looks up the letter for a ground equality, if it exists (full
    /// mode; folded groundings constant-fold equalities away).
    pub fn eq_letter_id(&self, a: GArg, b: GArg) -> Option<AtomId> {
        self.letters.get(&LetterKey::Eq(a, b))
    }

    /// Number of interned propositional letters.
    pub fn letter_count(&self) -> usize {
        self.letters.len()
    }

    /// Decodes a propositional state back into a database state over the
    /// relevant elements — the "decoding" direction in the proof of
    /// Theorem 4.1. Letters with fresh or mismatching-rigid arguments
    /// are ignored (they are false in the canonical extension).
    pub fn prop_to_state(&self, w: &PropState) -> State {
        let mut s = State::empty(self.schema.clone());
        for (key, atom) in self.letters.iter() {
            let LetterKey::Pred(p, args) = key else {
                continue;
            };
            if !w.get(atom) {
                continue;
            }
            let vals: Option<Vec<Value>> =
                args.iter().map(|&a| garg_value(a, &self.consts)).collect();
            if let Some(tuple) = vals {
                let _ = s.insert(*p, tuple);
            }
        }
        s
    }

    /// Dumps everything a durable snapshot needs to rebuild this
    /// grounding bit-identically (see [`Grounding::restore`]).
    pub(crate) fn dump(&self) -> GroundingDump {
        let mut letters: Vec<(LetterKey, AtomId)> =
            self.letters.iter().map(|(k, a)| (k.clone(), a)).collect();
        letters.sort_by_key(|&(_, a)| a);
        GroundingDump {
            mode: self.mode,
            consts: self.consts.clone(),
            letters,
            external: self.external.clone(),
            matrix: self.matrix.clone(),
            known: self.known.iter().copied().collect(),
            arena_nodes: self.arena.nodes().to_vec(),
            atom_names: self.arena.atom_names_in_order().to_vec(),
            formula: self.formula,
            trace: self.trace.clone(),
            m: self.m.clone(),
            stats: self.stats,
            indexed: self.plan.is_some(),
            occ: self
                .occ
                .iter()
                .map(|(&p, tuples)| (p, tuples.iter().cloned().collect()))
                .collect(),
        }
    }

    /// Rebuilds a grounding from a [`Grounding::dump`]. The arena is
    /// rehydrated raw (no re-folding — ids stay bit-identical), the
    /// letter table re-attached, and the inverted letter index derived
    /// from it; every id in the dump is validated against the tables
    /// it references, so corrupt snapshot bytes surface as an error.
    pub(crate) fn restore(schema: Arc<Schema>, d: GroundingDump) -> Result<Grounding, String> {
        let arena = Arena::rehydrate(d.arena_nodes, d.atom_names).map_err(str::to_owned)?;
        let atom_count = arena.atom_count();
        let node_count = arena.dag_len();
        if d.formula.index() >= node_count {
            return Err("snapshot formula id out of range".to_owned());
        }
        for (key, a) in &d.letters {
            if a.index() >= atom_count {
                return Err("snapshot letter id out of range".to_owned());
            }
            let check_garg = |g: &GArg| match g {
                GArg::Const(c) if c.index() >= d.consts.len() => {
                    Err("snapshot letter constant out of range".to_owned())
                }
                _ => Ok(()),
            };
            match key {
                LetterKey::Pred(p, args) => {
                    if p.index() >= schema.pred_count() || args.len() != schema.arity(*p) {
                        return Err("snapshot letter predicate/arity mismatch".to_owned());
                    }
                    args.iter().try_for_each(check_garg)?;
                }
                LetterKey::Eq(a, b) => {
                    check_garg(a)?;
                    check_garg(b)?;
                }
            }
        }
        for w in &d.trace {
            // Bitset states are canonical (no trailing zero words), so
            // the highest set bit lives in the last word.
            let max_bit = w
                .words()
                .last()
                .map(|&word| (w.words().len() - 1) * 64 + (63 - word.leading_zeros() as usize));
            if max_bit.is_some_and(|b| b >= atom_count) {
                return Err("snapshot trace atom out of range".to_owned());
            }
        }
        let letters = AtomInterner::from_pairs(d.letters).map_err(str::to_owned)?;
        let letter_index = build_letter_index(&letters);
        let mut occ: BTreeMap<PredId, BTreeSet<Vec<Value>>> = BTreeMap::new();
        for (p, tuples) in d.occ {
            if p.index() >= schema.pred_count() {
                return Err("snapshot occurrence predicate out of range".to_owned());
            }
            let set = occ.entry(p).or_default();
            for t in tuples {
                if t.len() != schema.arity(p) {
                    return Err("snapshot occurrence tuple arity mismatch".to_owned());
                }
                set.insert(t);
            }
        }
        // The plan is a pure function of the persisted matrix, and the
        // active set is the join of the plan against the persisted
        // occurrence index — both are re-derived rather than re-earned:
        // no re-grounding, no walk over the trace.
        let (plan, active) = if d.indexed {
            let patterns = index_patterns(&d.matrix, &d.external, &d.consts)
                .ok_or("snapshot marked indexed but the matrix is outside the indexed class")?;
            let k = d.external.len();
            let cands = enumerate_active(&patterns, &occ, &d.m, k, None)
                .expect("uncapped enumeration always succeeds");
            (
                Some(IndexPlan { patterns }),
                cands.into_iter().collect::<HashSet<Vec<u32>>>(),
            )
        } else {
            (None, HashSet::new())
        };
        Ok(Grounding {
            arena,
            formula: d.formula,
            trace: d.trace,
            m: d.m,
            stats: d.stats,
            mode: d.mode,
            schema,
            consts: d.consts,
            letters,
            external: d.external,
            matrix: d.matrix,
            known: d.known.into_iter().collect(),
            letter_index,
            plan,
            occ,
            active,
            index_build: std::time::Duration::ZERO,
            scratch: FastScratch::default(),
        })
    }
}

/// Owned snapshot of a [`Grounding`]'s complete internal state — what
/// the durability layer serialises per constraint. Produced by
/// [`Grounding::dump`], consumed by [`Grounding::restore`].
pub(crate) struct GroundingDump {
    pub mode: GroundMode,
    pub consts: Vec<Value>,
    /// `(key, id)` pairs in id order.
    pub letters: Vec<(LetterKey, AtomId)>,
    pub external: Vec<String>,
    pub matrix: Formula,
    /// The known-value universe, sorted.
    pub known: Vec<Value>,
    pub arena_nodes: Vec<ticc_ptl::arena::Node>,
    pub atom_names: Vec<String>,
    pub formula: FormulaId,
    /// The propositional trace, one bitset state per instant.
    pub trace: Vec<PropState>,
    pub m: Vec<GArg>,
    pub stats: GroundStats,
    /// Whether the indexed strategy is in effect (the plan and active
    /// set are re-derived from the matrix and `occ` on restore).
    pub indexed: bool,
    /// The occurrence index: per predicate, the tuples that have
    /// appeared in some state, sorted. Empty under the odometer.
    pub occ: Vec<(PredId, Vec<Vec<Value>>)>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use ticc_fotl::parser::parse;

    fn order_schema() -> Arc<Schema> {
        Schema::builder().pred("Sub", 1).pred("Fill", 1).build()
    }

    fn history(spec: &[&[Value]]) -> History {
        let sc = order_schema();
        let mut h = History::new(sc.clone());
        for subs in spec {
            let mut s = State::empty(sc.clone());
            for &v in *subs {
                s.insert_named("Sub", vec![v]).unwrap();
            }
            h.push_state(s);
        }
        h
    }

    #[test]
    fn m_contains_relevant_plus_fresh() {
        let h = history(&[&[1, 3]]);
        let sc = h.schema().clone();
        let phi = parse(&sc, "forall x y. G (Sub(x) -> !Fill(y))").unwrap();
        let g = ground(&h, &phi, GroundMode::Folded).unwrap();
        assert_eq!(
            g.m,
            vec![GArg::Rel(1), GArg::Rel(3), GArg::Fresh(0), GArg::Fresh(1)]
        );
        assert_eq!(g.stats.external_vars, 2);
        assert_eq!(g.stats.mappings, 16);
        assert_eq!(g.trace.len(), 1);
    }

    #[test]
    fn folded_tautology_collapses_to_true() {
        let h = history(&[&[1, 2]]);
        let sc = h.schema().clone();
        // (Sub(x) -> Sub(x)) folds to ⊤ in the arena, so every ground
        // instance and hence Ψ_D collapses.
        let phi = parse(&sc, "forall x y. G (x = y | (Sub(x) -> Sub(x)))").unwrap();
        let mut g = ground(&h, &phi, GroundMode::Folded).unwrap();
        let t = g.arena.tru();
        assert_eq!(g.formula, t);
        assert_eq!(g.stats.axiom_conjuncts, 0);
    }

    #[test]
    fn fresh_pred_letters_fold_to_false() {
        let h = history(&[&[1]]);
        let sc = h.schema().clone();
        // ∀x □¬Sub(x) — the z1 instance folds; the instance for 1 stays.
        let phi = parse(&sc, "forall x. G !Sub(x)").unwrap();
        let mut g = ground(&h, &phi, GroundMode::Folded).unwrap();
        assert_eq!(g.stats.letters, 1);
        let sub = sc.pred("Sub").unwrap();
        let a = g.pred_letter_id(sub, &[GArg::Rel(1)]).unwrap();
        assert!(g.trace[0].get(a));
        let w = g.state_to_prop(&State::empty(sc.clone())).unwrap();
        assert!(!w.get(a));
    }

    #[test]
    fn rejects_non_universal_and_open() {
        let h = history(&[&[]]);
        let sc = h.schema().clone();
        let phi = parse(&sc, "forall x. G (Sub(x) -> exists y. Fill(y))").unwrap();
        assert!(matches!(
            ground(&h, &phi, GroundMode::Folded),
            Err(GroundError::NotUniversal(_))
        ));
        let open = parse(&sc, "G Sub(x)").unwrap();
        assert!(matches!(
            ground(&h, &open, GroundMode::Folded),
            Err(GroundError::OpenFormula(_))
        ));
    }

    #[test]
    fn rejects_extended_vocabulary() {
        let h = history(&[&[]]);
        let sc = h.schema().clone();
        let phi = parse(&sc, "forall x y. G (succ(x, y) -> !Sub(x))").unwrap();
        assert!(matches!(
            ground(&h, &phi, GroundMode::Folded),
            Err(GroundError::ExtendedVocabulary)
        ));
    }

    #[test]
    fn full_mode_emits_axioms() {
        let h = history(&[&[1]]);
        let sc = h.schema().clone();
        let phi = parse(&sc, "forall x. G (Sub(x) -> F Fill(x))").unwrap();
        let g = ground(&h, &phi, GroundMode::Full).unwrap();
        assert!(g.stats.axiom_conjuncts > 0);
        assert!(g.stats.letters > 2, "full mode materialises rigid letters");
        let gf = ground(&h, &phi, GroundMode::Folded).unwrap();
        assert!(gf.stats.formula_tree_size < g.stats.formula_tree_size);
    }

    #[test]
    fn full_mode_trace_sets_rigid_equalities() {
        let h = history(&[&[1]]);
        let sc = h.schema().clone();
        let phi = parse(&sc, "forall x. G (Sub(x) -> X !Sub(x))").unwrap();
        let g = ground(&h, &phi, GroundMode::Full).unwrap();
        // (1=1) true, (1=z1) false in w0.
        if let Some(a) = g.eq_letter_id(GArg::Rel(1), GArg::Rel(1)) {
            assert!(g.trace[0].get(a));
        }
        if let Some(a) = g.eq_letter_id(GArg::Rel(1), GArg::Fresh(0)) {
            assert!(!g.trace[0].get(a));
        }
    }

    #[test]
    fn explicit_values_join_m() {
        let h = history(&[&[]]);
        let sc = h.schema().clone();
        let phi = parse(&sc, "forall x. G (Sub(x) -> x = 7)").unwrap();
        let g = ground(&h, &phi, GroundMode::Folded).unwrap();
        assert!(g.m.contains(&GArg::Rel(7)));
    }

    #[test]
    fn state_to_prop_detects_new_elements() {
        let h = history(&[&[1]]);
        let sc = h.schema().clone();
        let phi = parse(&sc, "forall x. G (Sub(x) -> X !Sub(x))").unwrap();
        let mut g = ground(&h, &phi, GroundMode::Folded).unwrap();
        let mut s = State::empty(sc.clone());
        s.insert_named("Sub", vec![99]).unwrap();
        assert!(g.state_to_prop(&s).is_none(), "element 99 is outside M");
        let mut s2 = State::empty(sc.clone());
        s2.insert_named("Sub", vec![1]).unwrap();
        assert!(g.state_to_prop(&s2).is_some());
    }

    #[test]
    fn constants_resolve_in_folded_mode() {
        let sc = Schema::builder().pred("P", 1).constant("c").build();
        let mut h = History::new(sc.clone());
        h.set_constant(sc.constant("c").unwrap(), 5);
        let mut s = State::empty(sc.clone());
        s.insert_named("P", vec![5]).unwrap();
        h.push_state(s);
        let phi = parse(&sc, "forall x. G (P(x) -> x = c)").unwrap();
        let mut g = ground(&h, &phi, GroundMode::Folded).unwrap();
        // The only relevant element is 5 == c, so the 5-instance folds to
        // ⊤ and the z1-instance folds via P(z1) = ⊥.
        let t = g.arena.tru();
        assert_eq!(g.formula, t);
    }

    #[test]
    fn prop_to_state_roundtrips_folded_trace() {
        let h = history(&[&[1, 3]]);
        let sc = h.schema().clone();
        let phi = parse(&sc, "forall x. G (Sub(x) -> X !Sub(x))").unwrap();
        let g = ground(&h, &phi, GroundMode::Folded).unwrap();
        let decoded = g.prop_to_state(&g.trace[0]);
        assert_eq!(&decoded, h.state(0));
        let _ = sc;
    }

    #[test]
    fn patch_state_matches_full_encode() {
        let h = history(&[&[1, 2]]);
        let sc = h.schema().clone();
        let phi = parse(&sc, "forall x. G (Sub(x) -> X G !Sub(x))").unwrap();
        let mut patched = ground(&h, &phi, GroundMode::Folded).unwrap();
        let mut rebuilt = ground(&h, &phi, GroundMode::Folded).unwrap();
        let sub = sc.pred("Sub").unwrap();
        let fill = sc.pred("Fill").unwrap();
        // Mixed churn over known elements, including an insert-then-
        // delete of a never-seen tuple (nets to absent: no letter may
        // be interned for it, matching what a full re-encode does).
        let tx = Transaction::new()
            .delete(sub, vec![1])
            .insert(fill, vec![2])
            .insert(fill, vec![1])
            .delete(fill, vec![1]);
        let mut state = h.state(0).clone();
        tx.apply_to(&mut state).unwrap();
        let w_patch = patched.patch_state(&tx).unwrap();
        let w_full = rebuilt.state_to_prop(&state).unwrap();
        assert_eq!(w_patch, w_full);
        assert_eq!(
            patched.patched_letters().len(),
            2,
            "Sub(1) cleared, Fill(2) set; Fill(1) netted out"
        );
        assert_eq!(
            patched.letter_count(),
            rebuilt.letter_count(),
            "fresh letters must be interned identically by both paths"
        );
        assert!(patched.letter_index_len() > 0);
    }

    #[test]
    fn patch_state_blocks_on_new_elements_like_rebuild() {
        let h = history(&[&[1]]);
        let sc = h.schema().clone();
        let phi = parse(&sc, "forall x. G (Sub(x) -> X G !Sub(x))").unwrap();
        let mut g = ground(&h, &phi, GroundMode::Folded).unwrap();
        let sub = sc.pred("Sub").unwrap();
        let tx_new = Transaction::new().insert(sub, vec![99]);
        assert!(g.patch_state(&tx_new).is_none(), "99 is outside M");
        assert_eq!(g.tx_delta(&tx_new), vec![99]);
        // Deleting an unknown tuple (or insert-then-delete of one) does
        // not grow the domain: still on the fast path.
        let tx_churn = Transaction::new()
            .delete(sub, vec![99])
            .insert(sub, vec![77])
            .delete(sub, vec![77]);
        assert!(g.patch_state(&tx_churn).is_some());
        assert!(g.tx_delta(&tx_churn).is_empty());
    }

    #[test]
    fn no_external_quantifiers_single_mapping() {
        let h = history(&[&[1]]);
        let sc = h.schema().clone();
        let phi = parse(&sc, "G (Sub(1) -> X !Sub(1))").unwrap();
        let g = ground(&h, &phi, GroundMode::Folded).unwrap();
        assert_eq!(g.stats.external_vars, 0);
        assert_eq!(g.stats.mappings, 1);
    }

    fn ground_indexed(h: &History, phi: &Formula, threads: Threads) -> Grounding {
        ground_opts(h, phi, GroundMode::Folded, GroundStrategy::Indexed, threads).unwrap()
    }

    #[test]
    fn indexed_prunes_sparse_join() {
        // M = {1, 3, z1, z2}: 16 mappings. Sub occurs on {1, 3} (the
        // x-candidates), Fill never occurs, so only the 2·4 maps with a
        // satisfiable Sub(x) survive; the other 8 fold to the canonical
        // rigid-false residue and are counted, not enumerated.
        let h = history(&[&[1, 3]]);
        let sc = h.schema().clone();
        let phi = parse(&sc, "forall x y. G (Sub(x) -> !Fill(y))").unwrap();
        let g = ground_indexed(&h, &phi, Threads::Off);
        assert_eq!(g.strategy(), GroundStrategy::Indexed);
        assert_eq!(g.stats.mappings, 16);
        assert_eq!(g.stats.inst_enumerated, 8);
        assert_eq!(g.stats.inst_pruned, 8);
    }

    #[test]
    fn indexed_sharded_is_bit_identical_to_sequential() {
        let h = history(&[&[1, 2], &[3]]);
        let sc = h.schema().clone();
        let phi = parse(&sc, "forall x y. G (Sub(x) -> !Fill(y))").unwrap();
        let g1 = ground_indexed(&h, &phi, Threads::Off);
        let g4 = ground_indexed(&h, &phi, Threads::Fixed(4));
        assert_eq!(g1.strategy(), GroundStrategy::Indexed);
        assert!(g1.stats.inst_pruned > 0);
        assert_eq!(g1.formula, g4.formula);
        assert_eq!(g1.stats, g4.stats);
        assert_eq!(g1.arena.dag_len(), g4.arena.dag_len());
        assert_eq!(g1.letter_index_len(), g4.letter_index_len());
    }

    #[test]
    fn indexed_gate_falls_back_outside_class() {
        let h = history(&[&[1, 3]]);
        let sc = h.schema().clone();
        // Equality atoms have no occurrence index: odometer.
        let eq = parse(&sc, "forall x y. G (x = y | (Sub(x) -> !Sub(y)))").unwrap();
        let g = ground_indexed(&h, &eq, Threads::Off);
        assert_eq!(g.strategy(), GroundStrategy::Odometer);
        assert_eq!(g.stats.inst_pruned, 0);
        assert_eq!(g.stats.inst_enumerated, g.stats.mappings);
        // Unguarded matrix: with every atom rigidly false, F Sub(x)
        // folds to ⊥ (not ⊤), so pruning would change the verdict.
        let unguarded = parse(&sc, "forall x. F Sub(x)").unwrap();
        let g = ground_indexed(&h, &unguarded, Threads::Off);
        assert_eq!(g.strategy(), GroundStrategy::Odometer);
        // The fallback is transparent: same Ψ_D as an explicit odometer
        // grounding, letter for letter.
        let odo = ground(&h, &unguarded, GroundMode::Folded).unwrap();
        assert_eq!(g.stats, odo.stats);
        assert_eq!(g.letter_index_len(), odo.letter_index_len());
    }

    #[test]
    fn newly_occurring_tuples_activate_pruned_instantiations() {
        let h = history(&[&[1, 3]]);
        let sc = h.schema().clone();
        let phi = parse(&sc, "forall x y. G (Sub(x) -> !Fill(y))").unwrap();
        let mut g = ground_indexed(&h, &phi, Threads::Off);
        assert_eq!(g.stats.inst_enumerated, 8);
        let fill = sc.pred("Fill").unwrap();
        // Fill(3) over the known universe: no new relevant element, but
        // the tuple never occurred, so the 4 maps with y ↦ 3 become
        // supported — 2 of them were already active through Sub(x).
        let tx = Transaction::new().insert(fill, vec![3]);
        assert!(g.tx_delta(&tx).is_empty());
        let inserts = g.newly_occurring(&tx);
        assert_eq!(inserts, vec![(fill, vec![3])]);
        let dg = g.ground_new_active(&[], &inserts).unwrap();
        assert_eq!(dg.new_mappings, 2);
        assert_eq!(g.stats.inst_enumerated, 10);
        assert_eq!(g.stats.inst_pruned, 6);
        // Same transaction again: the tuple is indexed now.
        assert!(g.newly_occurring(&tx).is_empty());
    }
}
