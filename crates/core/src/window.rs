//! The retention-horizon pass: syntactic past-depth of progressed
//! residues.
//!
//! The paper's §3 feasibility separation says checking safety-class
//! constraints is *history-less*: after progression, how far back a
//! residue can look is bounded by its syntax. This module computes
//! that bound. The **past-depth** of a PTL formula is
//!
//! * `0` for letters, `⊤`/`⊥`, and every future connective
//!   (`○`, `U`, `R` look forward only) — the depth of a composite
//!   future/boolean node is the max over its children;
//! * `1 + depth(A)` for `●A` ("previous time" reaches one instant
//!   back);
//! * **unbounded** for `A S B` (`since` can reach arbitrarily far
//!   back), and contagious: any node with an unbounded child is
//!   unbounded.
//!
//! The engine's residues are pure-future by construction —
//! [`progress`](ticc_ptl::progression::progress) rejects `●`/`S`
//! outright — so monitorable entries report depth 0 and the
//! engine-wide **retention floor** is `1 + max finite depth = 1`: the
//! fast path still needs `D_{t-1}` (incremental encoding patches the
//! previous valuation, and a step at instant `u` reads
//! `history.state(u - 1)`). The pass is still total: if an entry's
//! residue ever did carry a past operator, [`retention_floor`]
//! returns `None` and the engine refuses to truncate at all — the
//! `□past` side of the paper's separation, where bounded memory is
//! genuinely impossible.

use ticc_ptl::arena::{Arena, FormulaId, Node};

/// Syntactic past-depth of a residue: how many instants behind the
/// current one its truth value can depend on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PastDepth {
    /// Depends on at most this many instants back.
    Finite(usize),
    /// `since` (or an unbounded-past shape) — no syntactic bound.
    Unbounded,
}

impl PastDepth {
    fn succ(self) -> PastDepth {
        match self {
            PastDepth::Finite(d) => PastDepth::Finite(d + 1),
            PastDepth::Unbounded => PastDepth::Unbounded,
        }
    }

    fn join(self, other: PastDepth) -> PastDepth {
        match (self, other) {
            (PastDepth::Finite(a), PastDepth::Finite(b)) => PastDepth::Finite(a.max(b)),
            _ => PastDepth::Unbounded,
        }
    }
}

/// Computes the past-depth of `f` with one memoised walk over the
/// arena's DAG (shared subformulas are visited once).
pub fn past_depth(arena: &Arena, f: FormulaId) -> PastDepth {
    let mut memo: Vec<Option<PastDepth>> = vec![None; arena.dag_len()];
    depth_of(arena, f, &mut memo)
}

fn depth_of(arena: &Arena, f: FormulaId, memo: &mut Vec<Option<PastDepth>>) -> PastDepth {
    if let Some(d) = memo[f.index()] {
        return d;
    }
    let d = match arena.node(f) {
        Node::True | Node::False | Node::Atom(_) => PastDepth::Finite(0),
        Node::Not(a) | Node::Next(a) => depth_of(arena, a, memo),
        Node::And(a, b) | Node::Or(a, b) | Node::Until(a, b) | Node::Release(a, b) => {
            depth_of(arena, a, memo).join(depth_of(arena, b, memo))
        }
        Node::Prev(a) => depth_of(arena, a, memo).succ(),
        Node::Since(_, _) => PastDepth::Unbounded,
    };
    memo[f.index()] = Some(d);
    d
}

/// The engine-wide retention floor: the minimum number of resident
/// instants every budget is clamped to, `1 + max finite past-depth`
/// over the given residues (at least 1 — the fast path always needs
/// the previous state). `None` if any residue's past-depth is
/// unbounded, in which case the engine must not truncate.
pub fn retention_floor<'a>(
    residues: impl IntoIterator<Item = (&'a Arena, FormulaId)>,
) -> Option<usize> {
    let mut floor = 1usize;
    for (arena, f) in residues {
        match past_depth(arena, f) {
            PastDepth::Finite(d) => floor = floor.max(1 + d),
            PastDepth::Unbounded => return None,
        }
    }
    Some(floor)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn future_connectives_are_depth_zero() {
        let mut a = Arena::new();
        let p = a.atom("p");
        let q = a.atom("q");
        let f = a.until(p, q);
        let f = a.next(f);
        let f = a.or(f, q);
        assert_eq!(past_depth(&a, f), PastDepth::Finite(0));
        let t = a.tru();
        assert_eq!(past_depth(&a, t), PastDepth::Finite(0));
    }

    #[test]
    fn prev_nests_additively_and_since_is_unbounded() {
        let mut a = Arena::new();
        let p = a.atom("p");
        let q = a.atom("q");
        let one = a.prev(p);
        let two = a.prev(one);
        assert_eq!(past_depth(&a, two), PastDepth::Finite(2));
        // Mixed: max over children, +1 per Prev above.
        let mix = a.and(two, q);
        let mix = a.prev(mix);
        assert_eq!(past_depth(&a, mix), PastDepth::Finite(3));
        let s = a.since(p, q);
        assert_eq!(past_depth(&a, s), PastDepth::Unbounded);
        let tainted = a.and(s, p);
        assert_eq!(past_depth(&a, tainted), PastDepth::Unbounded);
    }

    #[test]
    fn retention_floor_tracks_the_deepest_residue() {
        let mut a = Arena::new();
        let p = a.atom("p");
        let q = a.atom("q");
        let shallow = a.until(p, q);
        let deep = {
            let one = a.prev(p);
            a.prev(one)
        };
        assert_eq!(retention_floor([(&a, shallow)]), Some(1));
        assert_eq!(retention_floor([(&a, shallow), (&a, deep)]), Some(3));
        let s = a.since(p, q);
        assert_eq!(retention_floor([(&a, shallow), (&a, s)]), None);
        assert_eq!(retention_floor(std::iter::empty()), Some(1));
    }
}
