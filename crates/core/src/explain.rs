//! Human-readable compilation/checking reports.
//!
//! `explain` walks a constraint through every stage of the paper's
//! pipeline and narrates what happened: classification (Section 2),
//! safety screening, the Theorem 4.1 grounding sizes, the Lemma 4.2
//! phase split, and the verdict. Useful for understanding why a
//! constraint is slow, rejected, or violated — exposed in the shell as
//! the `explain` command.

use crate::extension::{check_potential_satisfaction, CheckOptions};
use crate::ground::GroundError;
use std::fmt::Write as _;
use ticc_fotl::classify::{classify, is_syntactically_safe, FormulaClass};
use ticc_fotl::Formula;
use ticc_tdb::History;

/// Produces the report. Never fails: pipeline errors become part of the
/// narrative.
pub fn explain(history: &History, phi: &Formula, opts: &CheckOptions) -> String {
    let mut out = String::new();
    let schema = history.schema();
    let _ = writeln!(
        out,
        "constraint: {}",
        ticc_fotl::pretty::formula(schema, phi)
    );
    let _ = writeln!(out, "tree size |phi| = {}", phi.size());

    // Classification (Section 2).
    let class = classify(phi);
    match &class {
        FormulaClass::Universal { external } => {
            let _ = writeln!(
                out,
                "class: UNIVERSAL (∀^{external} tense(Π0)) — inside the decidable \
                 fragment of Theorem 4.2"
            );
        }
        FormulaClass::Biquantified {
            external,
            internal_level,
            internal_quantifiers,
        } => {
            let _ = writeln!(
                out,
                "class: BIQUANTIFIED (∀^{external} tense(Σ{internal_level}), \
                 {internal_quantifiers} internal quantifier(s)) — Theorem 3.2: \
                 checking is Π⁰₂-complete already at Σ1; the exact pipeline \
                 does not apply"
            );
        }
        FormulaClass::NotBiquantified(r) => {
            let _ = writeln!(out, "class: NOT BIQUANTIFIED ({r:?})");
        }
    }

    // Safety screening.
    if is_syntactically_safe(phi) {
        let _ = writeln!(
            out,
            "safety: syntactically safe (sufficient condition holds)"
        );
    } else {
        let _ = writeln!(
            out,
            "safety: NOT syntactically safe — Theorem 4.2 assumes a safety \
             sentence; liveness content is approximated away by the grounding \
             (see the paper after Lemma 4.1)"
        );
    }

    // History facts.
    let relevant = history.relevant();
    let _ = writeln!(
        out,
        "history: {} state(s), |R_D| = {} relevant element(s), max arity l = {}",
        history.len(),
        relevant.len(),
        schema.max_arity()
    );

    // The pipeline itself.
    match check_potential_satisfaction(history, phi, opts) {
        Err(crate::error::Error::Ground(GroundError::NotUniversal(_))) => {
            let _ = writeln!(
                out,
                "grounding: refused (not a universal sentence) — nothing further to run"
            );
        }
        Err(e) => {
            let _ = writeln!(out, "pipeline error: {e}");
        }
        Ok(res) => {
            let g = &res.stats.ground;
            let _ = writeln!(
                out,
                "grounding (Thm 4.1): |M| = {} ({} relevant + {} fresh), {} ground \
                 instance(s), phi_D tree size {} / DAG {} over {} letters{}",
                g.m_size,
                g.m_size - g.external_vars,
                g.external_vars,
                g.mappings,
                g.formula_tree_size,
                g.formula_dag_size,
                g.letters,
                if g.axiom_conjuncts > 0 {
                    format!(", Axiom_D: {} conjuncts", g.axiom_conjuncts)
                } else {
                    String::new()
                }
            );
            let _ = writeln!(
                out,
                "phase 1 (ground + progress through w_D): {:?}",
                res.stats.timings.ground
            );
            if res.stats.sat.states == 0 && res.potentially_satisfied {
                let _ = writeln!(
                    out,
                    "phase 2: answered by the constant-word safety probe (no \
                     automaton built), {:?}",
                    res.stats.timings.decide
                );
            } else {
                let _ = writeln!(
                    out,
                    "phase 2 (residue satisfiability): {} automaton state(s), {:?}",
                    res.stats.sat.states, res.stats.timings.decide
                );
            }
            if res.potentially_satisfied {
                let _ = writeln!(
                    out,
                    "verdict: POTENTIALLY SATISFIED — an infinite extension exists"
                );
                if let Some(w) = &res.witness {
                    let _ = writeln!(
                        out,
                        "witness: {} transient state(s) then a {}-state cycle",
                        w.prefix.len(),
                        w.cycle.len()
                    );
                }
            } else {
                let _ = writeln!(
                    out,
                    "verdict: VIOLATED — no extension of the current history can \
                     satisfy the constraint"
                );
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use ticc_fotl::parser::parse;
    use ticc_tdb::{Schema, State};

    fn history(subs: &[&[u64]]) -> History {
        let sc: Arc<Schema> = Schema::builder().pred("Sub", 1).build();
        let mut h = History::new(sc.clone());
        for vs in subs {
            let mut s = State::empty(sc.clone());
            for &v in *vs {
                s.insert_named("Sub", vec![v]).unwrap();
            }
            h.push_state(s);
        }
        h
    }

    #[test]
    fn explains_a_satisfied_universal_constraint() {
        let h = history(&[&[1], &[2]]);
        let phi = parse(h.schema(), "forall x. G (Sub(x) -> X G !Sub(x))").unwrap();
        let r = explain(&h, &phi, &CheckOptions::default());
        assert!(r.contains("class: UNIVERSAL"));
        assert!(r.contains("syntactically safe"));
        assert!(r.contains("POTENTIALLY SATISFIED"));
        assert!(r.contains("|M| = 3"));
    }

    #[test]
    fn explains_a_violation() {
        let h = history(&[&[1], &[1]]);
        let phi = parse(h.schema(), "forall x. G (Sub(x) -> X G !Sub(x))").unwrap();
        let r = explain(&h, &phi, &CheckOptions::default());
        assert!(r.contains("VIOLATED"));
    }

    #[test]
    fn explains_rejection_of_internal_quantifiers() {
        let h = history(&[&[1]]);
        let phi = parse(h.schema(), "G (exists y. Sub(y))").unwrap();
        let r = explain(&h, &phi, &CheckOptions::default());
        assert!(r.contains("BIQUANTIFIED"));
        assert!(r.contains("Π⁰₂"));
        assert!(r.contains("refused"));
    }

    #[test]
    fn explains_liveness_caveat() {
        let h = history(&[&[1]]);
        let phi = parse(h.schema(), "forall x. G (Sub(x) -> F !Sub(x))").unwrap();
        let r = explain(&h, &phi, &CheckOptions::default());
        assert!(r.contains("NOT syntactically safe"));
    }
}
