//! Condition–action triggers (Section 2).
//!
//! The paper defines: a trigger *"if C then A"* fires at instant `t` for
//! a ground substitution `θ` of the free variables of `C` iff `¬Cθ` is
//! **not** potentially satisfied at `t` — i.e. every infinite extension
//! of the current history satisfies `Cθ`. Trigger firing is thus the
//! exact dual of constraint satisfaction: an integrity-checking trigger
//! with condition `C = ¬φ` fires precisely when the constraint `φ` is
//! violated.
//!
//! Substitutions range over the relevant elements `R_D` (a substitution
//! sending a variable to an irrelevant element is equivalent, by the
//! genericity argument of Lemma 4.1, to any other such substitution; a
//! trigger firing for one would fire for infinitely many, which we treat
//! as a modelling error rather than a feature).

use crate::engine::check_once;
use crate::error::Error;
use crate::extension::CheckOptions;
use crate::ground::GroundError;
use crate::obs::EngineStats;
use crate::par::{self, ParMeter, Threads};
use std::collections::BTreeMap;
use ticc_fotl::classify::{classify, FormulaClass};
use ticc_fotl::subst::{free_vars, substitute, Subst};
use ticc_fotl::{Formula, Term};
use ticc_tdb::{History, PredId, Transaction, Value};

/// The action part of a trigger.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Action {
    /// Record the firing only.
    Log,
    /// Insert a tuple (terms may mention the condition's free
    /// variables, instantiated by the firing substitution).
    Insert {
        /// Target predicate.
        pred: PredId,
        /// Argument terms.
        args: Vec<Term>,
    },
    /// Delete a tuple (same term conventions as `Insert`).
    Delete {
        /// Target predicate.
        pred: PredId,
        /// Argument terms.
        args: Vec<Term>,
    },
}

/// A condition–action trigger.
#[derive(Debug, Clone)]
pub struct Trigger {
    /// Display name.
    pub name: String,
    /// The condition `C`, a future quantifier-free formula with free
    /// variables.
    pub condition: Formula,
    /// The action `A`.
    pub action: Action,
}

/// A firing: trigger name plus the ground substitution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FiredTrigger {
    /// Index into the engine's trigger list.
    pub trigger: usize,
    /// Trigger name.
    pub name: String,
    /// The substitution `θ` (variable → element).
    pub substitution: BTreeMap<String, Value>,
}

/// Former error type of the trigger engine.
#[deprecated(since = "0.2.0", note = "use the unified `ticc_core::Error`")]
pub type TriggerError = Error;

/// Evaluates triggers against histories by the duality with potential
/// satisfaction.
#[derive(Default)]
pub struct TriggerEngine {
    triggers: Vec<Trigger>,
    opts: CheckOptions,
    stats: EngineStats,
}

impl TriggerEngine {
    /// An engine with the given check options.
    pub fn new(opts: CheckOptions) -> Self {
        Self {
            triggers: Vec::new(),
            opts,
            stats: EngineStats::default(),
        }
    }

    /// Cumulative observability counters across all evaluations.
    pub fn stats(&self) -> EngineStats {
        self.stats
    }

    /// Registers a trigger. The condition must be future-only and
    /// quantifier-free, so that `¬Cθ` is a universal sentence checkable
    /// by Theorem 4.2.
    pub fn add(&mut self, trigger: Trigger) -> Result<usize, Error> {
        if !trigger.condition.is_future() {
            return Err(Error::UnsupportedCondition(
                "condition must use future connectives only".into(),
            ));
        }
        if !trigger.condition.is_quantifier_free() {
            return Err(Error::UnsupportedCondition(
                "condition must be quantifier-free".into(),
            ));
        }
        // Sanity: the grounded negation classifies as universal.
        let neg = trigger.condition.clone().not();
        match classify(&neg) {
            FormulaClass::Universal { .. } | FormulaClass::Biquantified { .. } => {}
            FormulaClass::NotBiquantified(r) => {
                return Err(Error::UnsupportedCondition(format!("{r:?}")))
            }
        }
        self.triggers.push(trigger);
        Ok(self.triggers.len() - 1)
    }

    /// The registered triggers.
    pub fn triggers(&self) -> &[Trigger] {
        &self.triggers
    }

    /// Evaluates all triggers at the current instant: for each trigger
    /// and each substitution `θ : free(C) → R_D`, fires iff `¬Cθ` is not
    /// potentially satisfied.
    ///
    /// With [`Threads`] enabled the (trigger × substitution) jobs fan
    /// out across a bounded scoped-thread pool; the job list is built
    /// sequentially first, which fixes the canonical firing order the
    /// merge preserves, so the fired list is identical to the
    /// sequential path.
    pub fn evaluate(&mut self, history: &History) -> Result<Vec<FiredTrigger>, Error> {
        let relevant: Vec<Value> = history.relevant().into_iter().collect();
        struct Job {
            trigger: usize,
            name: String,
            substitution: BTreeMap<String, Value>,
            neg: Formula,
        }
        let mut jobs: Vec<Job> = Vec::new();
        for (ti, trigger) in self.triggers.iter().enumerate() {
            let vars: Vec<String> = free_vars(&trigger.condition).into_iter().collect();
            for assignment in assignments(&relevant, vars.len()) {
                let theta: Subst = vars
                    .iter()
                    .zip(&assignment)
                    .map(|(v, &val)| (v.clone(), Term::Value(val)))
                    .collect();
                jobs.push(Job {
                    trigger: ti,
                    name: trigger.name.clone(),
                    substitution: vars
                        .iter()
                        .cloned()
                        .zip(assignment.iter().copied())
                        .collect(),
                    neg: substitute(&trigger.condition, &theta).not(),
                });
            }
        }
        // Fan out across jobs when there is more than one; the inner
        // grounding then runs sequentially (the thread budget is spent
        // on the job sweep). A single job keeps the caller's threading
        // so a large grounding can still shard.
        let workers = if jobs.len() > 1 {
            self.opts.threads.worker_count()
        } else {
            1
        };
        let mut opts = self.opts;
        if workers > 1 {
            opts.threads = Threads::Off;
        }
        let jobs_ref = &jobs;
        let opts_ref = &opts;
        let mut meter = ParMeter::new();
        let chunk_results = par::map_chunked(jobs.len(), workers, &mut meter, |_, range| {
            let mut stats = EngineStats::default();
            let mut fired = Vec::new();
            for job in &jobs_ref[range] {
                let shot = match check_once(history, &job.neg, opts_ref) {
                    Ok(s) => s,
                    Err(Error::Ground(GroundError::NotUniversal(c))) => {
                        return (stats, Err(Error::UnsupportedCondition(format!("{c:?}"))))
                    }
                    Err(e) => return (stats, Err(e)),
                };
                stats.grounds += 1;
                stats.sat_checks += 1;
                stats.ground_time += shot.ground_time;
                stats.sat_time += shot.decide_time;
                stats.absorb_par(&shot.par);
                if !shot.result.satisfiable {
                    fired.push(FiredTrigger {
                        trigger: job.trigger,
                        name: job.name.clone(),
                        substitution: job.substitution.clone(),
                    });
                }
            }
            (stats, Ok(fired))
        });
        self.stats.absorb_par(&meter);
        let mut fired = Vec::new();
        let mut first_err = None;
        for (worker_stats, result) in chunk_results {
            self.stats.absorb(&worker_stats);
            match result {
                Ok(mut chunk) => fired.append(&mut chunk),
                Err(e) => {
                    if first_err.is_none() {
                        first_err = Some(e);
                    }
                }
            }
        }
        match first_err {
            Some(e) => Err(e),
            None => Ok(fired),
        }
    }

    /// Materialises the actions of a set of firings as one transaction
    /// (Log actions contribute nothing).
    pub fn actions(&self, fired: &[FiredTrigger]) -> Transaction {
        let mut tx = Transaction::new();
        for f in fired {
            let trigger = &self.triggers[f.trigger];
            match &trigger.action {
                Action::Log => {}
                Action::Insert { pred, args } => {
                    tx = tx.insert(*pred, instantiate(args, &f.substitution));
                }
                Action::Delete { pred, args } => {
                    tx = tx.delete(*pred, instantiate(args, &f.substitution));
                }
            }
        }
        tx
    }
}

fn instantiate(args: &[Term], theta: &BTreeMap<String, Value>) -> Vec<Value> {
    args.iter()
        .map(|t| match t {
            Term::Value(v) => *v,
            Term::Var(v) => *theta
                .get(v)
                .expect("action variable must occur in the condition"),
            Term::Const(_) => panic!("constants in actions must be pre-resolved to values"),
        })
        .collect()
}

/// All `vars`-length assignments over `domain` (empty vector when
/// `vars == 0`, giving exactly one empty assignment).
fn assignments(domain: &[Value], vars: usize) -> Vec<Vec<Value>> {
    let mut out = vec![vec![]];
    for _ in 0..vars {
        let mut next = Vec::with_capacity(out.len() * domain.len());
        for a in &out {
            for &d in domain {
                let mut b = a.clone();
                b.push(d);
                next.push(b);
            }
        }
        out = next;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use ticc_fotl::parser::parse;
    use ticc_tdb::{Schema, State};

    fn schema() -> Arc<Schema> {
        Schema::builder()
            .pred("Sub", 1)
            .pred("Fill", 1)
            .pred("Alert", 1)
            .build()
    }

    fn history(spec: &[(&[Value], &[Value])]) -> History {
        let sc = schema();
        let mut h = History::new(sc.clone());
        for (subs, fills) in spec {
            let mut s = State::empty(sc.clone());
            for &v in *subs {
                s.insert_named("Sub", vec![v]).unwrap();
            }
            for &v in *fills {
                s.insert_named("Fill", vec![v]).unwrap();
            }
            h.push_state(s);
        }
        h
    }

    #[test]
    fn duality_with_constraint_violation() {
        let sc = schema();
        // Trigger fires for x when "Sub(x) happened twice" is certain:
        // C(x) = ◇(Sub(x) ∧ ○◇Sub(x)); ¬C is the once-only constraint.
        let cond = parse(&sc, "F (Sub(x) & X F Sub(x))").unwrap();
        let mut engine = TriggerEngine::new(CheckOptions::default());
        engine
            .add(Trigger {
                name: "double-submit".into(),
                condition: cond,
                action: Action::Log,
            })
            .unwrap();

        // Clean history: nothing fires.
        let clean = history(&[(&[1], &[]), (&[2], &[])]);
        assert!(engine.evaluate(&clean).unwrap().is_empty());

        // Order 1 submitted twice: fires exactly for x=1.
        let dirty = history(&[(&[1], &[]), (&[2], &[]), (&[1], &[])]);
        let fired = engine.evaluate(&dirty).unwrap();
        assert_eq!(fired.len(), 1);
        assert_eq!(fired[0].name, "double-submit");
        assert_eq!(fired[0].substitution.get("x"), Some(&1));
    }

    #[test]
    fn actions_materialise_with_substitution() {
        let sc = schema();
        let cond = parse(&sc, "F (Sub(x) & X F Sub(x))").unwrap();
        let alert = sc.pred("Alert").unwrap();
        let mut engine = TriggerEngine::new(CheckOptions::default());
        engine
            .add(Trigger {
                name: "alert-dup".into(),
                condition: cond,
                action: Action::Insert {
                    pred: alert,
                    args: vec![Term::var("x")],
                },
            })
            .unwrap();
        let dirty = history(&[(&[1], &[]), (&[1], &[])]);
        let fired = engine.evaluate(&dirty).unwrap();
        assert_eq!(fired.len(), 1);
        let tx = engine.actions(&fired);
        let mut s = State::empty(sc.clone());
        tx.apply_to(&mut s).unwrap();
        assert!(s.holds(alert, &[1]));
    }

    #[test]
    fn nullary_condition_fires_once() {
        let sc = schema();
        // Fires when order 5 is certainly submitted twice.
        let cond = parse(&sc, "F (Sub(5) & X F Sub(5))").unwrap();
        let mut engine = TriggerEngine::new(CheckOptions::default());
        engine
            .add(Trigger {
                name: "five-twice".into(),
                condition: cond,
                action: Action::Log,
            })
            .unwrap();
        let h = history(&[(&[5], &[]), (&[5], &[])]);
        let fired = engine.evaluate(&h).unwrap();
        assert_eq!(fired.len(), 1);
        assert!(fired[0].substitution.is_empty());
    }

    #[test]
    fn condition_not_yet_certain_does_not_fire() {
        let sc = schema();
        // C(x) = ◇Fill(x): some extension fills, some never does — ¬C is
        // potentially satisfied, so the trigger must NOT fire.
        let cond = parse(&sc, "F Fill(x)").unwrap();
        let mut engine = TriggerEngine::new(CheckOptions::default());
        engine
            .add(Trigger {
                name: "filled".into(),
                condition: cond,
                action: Action::Log,
            })
            .unwrap();
        let h = history(&[(&[1], &[])]);
        assert!(engine.evaluate(&h).unwrap().is_empty());
        // Once Fill(1) has actually happened, ◇Fill(1) holds in every
        // extension: fires.
        let h2 = history(&[(&[1], &[]), (&[], &[1])]);
        let fired = engine.evaluate(&h2).unwrap();
        assert!(fired.iter().any(|f| f.substitution.get("x") == Some(&1)));
    }

    #[test]
    fn rejects_unsupported_conditions() {
        let sc = schema();
        let mut engine = TriggerEngine::new(CheckOptions::default());
        let past = parse(&sc, "O Sub(x)").unwrap();
        assert!(engine
            .add(Trigger {
                name: "past".into(),
                condition: past,
                action: Action::Log,
            })
            .is_err());
        let quantified = parse(&sc, "exists y. F Sub(y)").unwrap();
        assert!(engine
            .add(Trigger {
                name: "q".into(),
                condition: quantified,
                action: Action::Log,
            })
            .is_err());
    }
}
