//! The persistent incremental engine.
//!
//! One layer owns what the online monitor, the trigger engine, and the
//! one-shot extension checker previously each re-derived for
//! themselves: groundings (Theorem 4.1), progressed residues
//! (Lemma 4.2 phase 1), satisfiability memoisation (phase 2), and the
//! observability counters ([`EngineStats`]).
//!
//! The engine's distinctive capability is **delta re-grounding**. The
//! grounding depends on the history only through `R_D` and `w_D`; when
//! an update enlarges `R_D` by `Δ`, the old ground conjuncts — whose
//! letters mention only old elements — are untouched, and their
//! progressed residue remains valid as-is (old trace states assign
//! `false` to every letter mentioning a `Δ` element, which is exactly
//! what re-encoding them would produce, since a new relevant element
//! by definition appears in no earlier state). So instead of
//! re-grounding all `|M ∪ Δ|^k` instantiations and replaying the whole
//! history (`O(t·|φ_D|)`), the engine grounds only the instantiations
//! mentioning `Δ`, replays just that block through the stored
//! propositional trace, and conjoins it with the memoised residue —
//! `O(t·|Δ-part|)`. Progression distributes over conjunction, which
//! makes the two routes equivalent; a property test checks delta
//! against full re-grounding on randomized workloads.
//!
//! The full (paper-literal) construction re-encodes rigid equality
//! letters over all of `M` into every trace state, so an enlarged `M`
//! invalidates the stored trace: under [`GroundMode::Full`] the engine
//! always rebuilds, as it does when [`Regrounding::Full`] is selected
//! (the E6 ablation).

use crate::error::Error;
use crate::extension::{CheckOptions, Durability, Encoding, HistoryBudget};
use crate::ground::{ground_metered, GroundMode, GroundStrategy, Grounding};
use crate::obs::{EngineStats, Timer};
use crate::par::{ParMeter, Threads, WorkerPool};
use crate::spill::HistoryPager;
use std::borrow::Cow;
use std::collections::{BTreeSet, HashMap};
use std::path::Path;
use std::sync::{Arc, Mutex};
use std::time::Duration;
use ticc_fotl::Formula;
use ticc_ptl::arena::{AtomId, FormulaId};
use ticc_ptl::automaton::{self, CompileLimits, SafetyAutomaton, TemplateKey};
use ticc_ptl::progression::{progress, progress_trace};
use ticc_ptl::sat::{extends_with, is_satisfiable_with, SatError, SatResult};
use ticc_ptl::simplify::simplify;
use ticc_ptl::trace::PropState;
use ticc_store::{Store, StoreStats};
use ticc_tdb::rng::splitmix64;
use ticc_tdb::{History, Schema, State, Transaction};

/// Handle to a registered constraint.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ConstraintId(pub usize);

/// How the engine reacts when an update introduces new relevant
/// elements (the ablation axis of experiment E6b).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Regrounding {
    /// Incremental: ground only the `Δ`-instantiations and replay them
    /// through the stored trace (the default; folded mode only — the
    /// full construction falls back to a rebuild).
    #[default]
    Delta,
    /// Rebuild the grounding from scratch over the whole history.
    Full,
}

/// Which notion of violation the engine implements.
///
/// Section 5 of the paper contrasts *potential constraint satisfaction*
/// (violations detected at the earliest possible time — requires the
/// phase-2 satisfiability test after every update) with the **weaker
/// notion** that Lipeck & Saake's and Sistla & Wolfson's methods
/// implement by necessity: violations are always detected eventually,
/// but possibly later. The weaker notion corresponds to running
/// progression only and reporting when the residue collapses to `⊥` —
/// much cheaper per update, but a constraint that has already become
/// unsatisfiable can linger undetected until enough further states
/// arrive to fold the residue away. Experiment E11 measures both the
/// cost gap and the detection latency gap.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Notion {
    /// Potential satisfaction: progression **and** satisfiability of the
    /// residue after every update (earliest detection; the paper's
    /// notion).
    #[default]
    Potential,
    /// Sistla–Wolfson-style: progression only; report when the residue
    /// reaches `⊥` (detection possibly delayed).
    BadPrefix,
}

/// Status of a constraint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Status {
    /// Every prefix so far has an extension satisfying the constraint.
    Satisfied,
    /// No extension exists; `at` is the history length at which the
    /// violation became unavoidable (the violating state has index
    /// `at - 1`; `at == 0` means the constraint is unsatisfiable
    /// outright).
    Violated {
        /// History length at detection.
        at: usize,
    },
}

/// A violation notice produced by [`Engine::append`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MonitorEvent {
    /// Which constraint.
    pub constraint: ConstraintId,
    /// Its registered name.
    pub name: String,
    /// History length at which the violation became unavoidable.
    pub at: usize,
}

/// Former error type of the engine (and the monitor facade over it).
#[deprecated(since = "0.2.0", note = "use the unified `ticc_core::Error`")]
pub type MonitorError = Error;

/// Size bound of the per-context transition cache. Reaching it drops
/// the whole table (epoch eviction) — deterministic regardless of hash
/// iteration order, which a pick-a-victim policy would not be.
const TRANSITION_CACHE_CAP: usize = 1 << 16;

/// Size bound of the per-context satisfiability memo (same epoch
/// eviction policy).
const SAT_CACHE_CAP: usize = 1 << 16;

/// A memoised edge of the lazily materialised safety automaton: where
/// progression takes the residue under one letter, and (once phase 2
/// has run) whether that successor is satisfiable.
#[derive(Clone, Copy)]
struct Transition {
    next: FormulaId,
    /// `None` until a [`Notion::Potential`] decision backfills it (the
    /// bad-prefix notion never runs phase 2).
    verdict: Option<bool>,
}

/// Fingerprint of `w` restricted to `support`, folding the true atoms
/// (in id order) through the repo's splitmix64 mixer. Progression of a
/// residue only reads the letters in its support, so this fingerprint
/// keys the transition cache; a 64-bit collision — astronomically
/// unlikely, and cross-checked by the 120-seed equivalence suite — is
/// the standard fingerprinting trade-off (cf. Zobrist hashing).
fn support_fingerprint(w: &PropState, support: &[AtomId]) -> u64 {
    let mut h = 0xa076_1d64_78bd_642f_u64;
    for &a in support {
        if w.get(a) {
            let mut s = h ^ u64::from(a.0);
            h = splitmix64(&mut s);
        }
    }
    h
}

/// One instantiation bound to a compiled template automaton: which
/// template, the current `u32` state, the cached column (the valuation
/// of the unit's support letters in the latest trace state), and the
/// concrete support letters themselves — `support[i]` instantiates the
/// template's canonical atom `i`.
pub(crate) struct Unit {
    pub(crate) tmpl: u32,
    pub(crate) state: u32,
    pub(crate) col: u32,
    pub(crate) support: Vec<AtomId>,
}

/// The compiled-automaton runtime of one grounding context: the
/// residue, split into support-disjoint units, each stepping through a
/// shared explicit [`SafetyAutomaton`]. Replaces the symbolic residue
/// entirely while bound (the context's `residue` is held at `⊤`);
/// [`GroundingContext::decompile`] reconstructs the exact symbolic
/// residue at any time, so the engine can fall back transparently.
///
/// The units partition the support letters (pairwise disjoint by
/// construction, invariant under progression since supports only ever
/// shrink), so the residue is satisfiable iff `n_unsat == 0` — the
/// phase-2 verdict is a counter read, precomputed per state at compile
/// time.
pub(crate) struct CompiledSet {
    pub(crate) templates: Vec<Arc<SafetyAutomaton>>,
    /// Canonical key → index into `templates` (the hash-consing that
    /// makes isomorphic instantiations share one machine).
    pub(crate) keys: HashMap<TemplateKey, u32>,
    pub(crate) units: Vec<Unit>,
    /// Letter → (unit, bit position in its column). Total: each letter
    /// belongs to at most one unit.
    pub(crate) atom_index: HashMap<AtomId, (u32, u8)>,
    /// Units whose transition under their current column is *not* a
    /// self-loop. Everything else is dormant: stepping it is the
    /// identity, so the append loop touches only this set — `O(|Δtx|)`
    /// in steady state.
    pub(crate) active: BTreeSet<u32>,
    /// Units whose current state is unsatisfiable.
    pub(crate) n_unsat: usize,
}

impl CompiledSet {
    /// The column of `w` restricted to `support` (bit `i` = letter
    /// `support[i]`).
    fn col_of(w: Option<&PropState>, support: &[AtomId]) -> u32 {
        let Some(w) = w else { return 0 };
        let mut col = 0u32;
        for (i, &a) in support.iter().enumerate() {
            if w.get(a) {
                col |= 1 << i;
            }
        }
        col
    }

    /// Refreshes one unit's membership in the active set after its
    /// column (or state) changed.
    fn refresh_active(&mut self, u: u32) {
        let unit = &self.units[u as usize];
        if self.templates[unit.tmpl as usize].step(unit.state, unit.col) != unit.state {
            self.active.insert(u);
        } else {
            self.active.remove(&u);
        }
    }

    /// Updates the columns of the units owning any of `patched` from
    /// the new valuation `w` (letters outside every unit — e.g. fresh
    /// letters of a just-delta-ground block — are ignored).
    fn patch_cols(&mut self, patched: &[AtomId], w: &PropState) {
        for &a in patched {
            let Some(&(u, bit)) = self.atom_index.get(&a) else {
                continue;
            };
            let unit = &mut self.units[u as usize];
            if w.get(a) {
                unit.col |= 1 << bit;
            } else {
                unit.col &= !(1 << bit);
            }
            self.refresh_active(u);
        }
    }

    /// Recomputes every unit's column from scratch (the
    /// [`Encoding::Rebuild`] ablation — the compiled analogue of a full
    /// state re-encode).
    fn recompute_cols(&mut self, w: &PropState) {
        for u in 0..self.units.len() as u32 {
            let unit = &mut self.units[u as usize];
            unit.col = Self::col_of(Some(w), &unit.support);
            self.refresh_active(u);
        }
    }

    /// Advances every active unit one letter: a dense table lookup per
    /// unit, no progression, no phase 2. Units whose new state
    /// self-loops under the (already updated) column go dormant.
    fn step_active(&mut self, stats: &mut EngineStats) {
        let active: Vec<u32> = self.active.iter().copied().collect();
        for u in active {
            let unit = &mut self.units[u as usize];
            let auto = &self.templates[unit.tmpl as usize];
            let next = auto.step(unit.state, unit.col);
            if next != unit.state {
                stats.automaton_steps += 1;
                match (auto.sat(unit.state), auto.sat(next)) {
                    (true, false) => self.n_unsat += 1,
                    (false, true) => self.n_unsat -= 1,
                    _ => {}
                }
                unit.state = next;
            }
            self.refresh_active(u);
        }
    }

    /// Sum of explicit states over all templates (the
    /// `automaton_states` gauge).
    pub(crate) fn state_total(&self) -> u64 {
        self.templates.iter().map(|t| t.state_count() as u64).sum()
    }

    /// Reassembles a compiled set from persisted parts — the decode
    /// half of a v3 snapshot. Validates every id against the table it
    /// references (states, template indices, support arities, letter
    /// disjointness) and rebuilds all derived state: the key map, the
    /// atom index, the unsat counter, and per-unit columns/activity
    /// from the last trace state.
    pub(crate) fn from_restored(
        templates: Vec<Arc<SafetyAutomaton>>,
        units: Vec<Unit>,
        last: Option<&PropState>,
    ) -> Result<Self, String> {
        let mut keys = HashMap::new();
        for (i, t) in templates.iter().enumerate() {
            if keys.insert(t.key().clone(), i as u32).is_some() {
                return Err("duplicate template key".into());
            }
        }
        let mut atom_index = HashMap::new();
        let mut n_unsat = 0usize;
        for (u, unit) in units.iter().enumerate() {
            let auto = templates
                .get(unit.tmpl as usize)
                .ok_or("unit template out of range")?;
            if unit.state as usize >= auto.state_count() {
                return Err("unit state out of range".into());
            }
            if unit.support.len() != auto.support_len() {
                return Err("unit support does not match template arity".into());
            }
            for (bit, &a) in unit.support.iter().enumerate() {
                if atom_index.insert(a, (u as u32, bit as u8)).is_some() {
                    return Err("unit supports overlap".into());
                }
            }
            if !auto.sat(unit.state) {
                n_unsat += 1;
            }
        }
        let mut set = Self {
            templates,
            keys,
            units,
            atom_index,
            active: BTreeSet::new(),
            n_unsat,
        };
        for u in 0..set.units.len() as u32 {
            let unit = &mut set.units[u as usize];
            unit.col = Self::col_of(last, &unit.support);
            set.refresh_active(u);
        }
        Ok(set)
    }
}

/// A grounding plus the derived per-constraint runtime state: the
/// progressed residue, the satisfiability memo, and the transition
/// cache of the lazily materialised safety automaton. The engine keeps
/// one per registered constraint; the grounding's stored trace is kept
/// in sync on every append so delta re-grounding can replay new
/// conjunct blocks through it.
///
/// Both memo tables are bounded (`TRANSITION_CACHE_CAP`,
/// `SAT_CACHE_CAP`) with evictions counted in
/// [`CacheStats`](crate::obs::CacheStats). Entries never go stale:
/// progression is a pure function of the residue's DAG (immutable once
/// hash-consed) and the support-restricted letter values, and a delta
/// re-ground changes the residue *id*, so old keys simply stop being
/// queried.
pub struct GroundingContext {
    g: Grounding,
    residue: FormulaId,
    sat_cache: HashMap<FormulaId, bool>,
    transition_cache: HashMap<(FormulaId, u64), Transition>,
    /// When present, the residue lives here as compiled-automaton
    /// state and `residue` is held at `⊤` (see [`CompiledSet`]).
    pub(crate) compiled: Option<CompiledSet>,
    /// Build-phase wall-clock spent compiling template automata for
    /// this context (a gauge, like the grounding's `index_build`;
    /// zeroed on snapshot restore).
    pub(crate) compile_time: Duration,
}

impl GroundingContext {
    /// Grounds `phi` over `history` and progresses `φ_D` through the
    /// whole stored prefix. Counts toward `ground_time`/`progress_time`
    /// but not `grounds`/`regrounds` — the caller decides which kind of
    /// (re)build this is.
    fn build(
        history: &History,
        phi: &Formula,
        opts: &CheckOptions,
        stats: &mut EngineStats,
    ) -> Result<Self, Error> {
        let t = Timer::start();
        let mut meter = ParMeter::new();
        let mut g = ground_metered(
            history,
            phi,
            opts.mode,
            opts.grounding,
            opts.threads,
            &mut meter,
        )?;
        stats.absorb_par(&meter);
        t.finish(&mut stats.ground_time);
        let t = Timer::start();
        let trace = std::mem::take(&mut g.trace);
        let progressed = progress_trace(&mut g.arena, g.formula, &trace)
            .map_err(|_| Error::Sat(SatError::Past))?;
        let residue = simplify(&mut g.arena, progressed);
        g.trace = trace;
        t.finish(&mut stats.progress_time);
        stats.progress_steps += history.len() as u64;
        Ok(Self {
            g,
            residue,
            sat_cache: HashMap::new(),
            transition_cache: HashMap::new(),
            compiled: None,
            compile_time: Duration::ZERO,
        })
    }

    /// Reassembles a context from a restored grounding and residue —
    /// the decode half of a durable snapshot. The memo tables start
    /// empty: they are pure caches (progression is a function of the
    /// immutable DAG), so the restored engine recomputes transitions it
    /// had memoised, reaching identical residues and verdicts.
    pub(crate) fn from_parts(g: Grounding, residue: FormulaId) -> Self {
        Self {
            g,
            residue,
            sat_cache: HashMap::new(),
            transition_cache: HashMap::new(),
            compiled: None,
            compile_time: Duration::ZERO,
        }
    }

    /// The underlying grounding.
    pub fn grounding(&self) -> &Grounding {
        &self.g
    }

    /// The current progressed residue (`⊤` while the context is
    /// compiled — the live residue then lives in the compiled set as
    /// per-unit automaton states, and decompiling reconstructs it).
    pub fn residue(&self) -> FormulaId {
        self.residue
    }

    /// Attempts to compile the current symbolic residue into per-unit
    /// template automata. Applicable only with the knob on, under
    /// [`Notion::Potential`] (the bad-prefix notion's `⊥`-check is
    /// syntax-dependent), and for folded groundings. On any obstacle —
    /// past connectives, support too wide, state budget exceeded — the
    /// context simply stays symbolic. The wall-clock spent (including
    /// failed attempts) accrues to the build-phase `compile_time`
    /// gauge, never to append latency.
    pub(crate) fn try_compile(&mut self, notion: Notion, opts: &CheckOptions) {
        if !opts.template_automata
            || notion != Notion::Potential
            || self.g.mode() != GroundMode::Folded
        {
            return;
        }
        let t = Timer::start();
        let units = automaton::split_units(&mut self.g.arena, self.residue);
        let mut set = CompiledSet {
            templates: Vec::new(),
            keys: HashMap::new(),
            units: Vec::new(),
            atom_index: HashMap::new(),
            active: BTreeSet::new(),
            n_unsat: 0,
        };
        if Self::bind_units(&mut set, &self.g.arena, self.g.trace.last(), &units, opts) {
            self.residue = self.g.arena.tru();
            self.compiled = Some(set);
        }
        t.finish(&mut self.compile_time);
    }

    /// Binds `units` (support-disjoint conjuncts over the grounding's
    /// arena) into `set`, compiling new templates as needed and reusing
    /// compiled ones via the canonical key. Transactional: on any
    /// failure — past connectives, a support overlapping an existing
    /// unit's (disjointness would break, making per-unit verdicts
    /// unsound), or a compile bailing at its budget — `set` is left
    /// exactly as it was and `false` is returned.
    fn bind_units(
        set: &mut CompiledSet,
        arena: &ticc_ptl::Arena,
        last: Option<&PropState>,
        units: &[FormulaId],
        opts: &CheckOptions,
    ) -> bool {
        let limits = CompileLimits {
            max_support: CompileLimits::default().max_support,
            max_states: opts.automaton_state_budget,
        };
        enum Tmpl {
            Existing(u32),
            New(usize),
        }
        let mut new_templates: Vec<Arc<SafetyAutomaton>> = Vec::new();
        let mut new_keys: HashMap<TemplateKey, usize> = HashMap::new();
        let mut staged: Vec<(Tmpl, Vec<AtomId>)> = Vec::new();
        let mut staged_atoms: std::collections::HashSet<AtomId> = std::collections::HashSet::new();
        for &u in units {
            let Some((key, support)) = automaton::canonicalize(arena, u) else {
                return false;
            };
            for &a in &support {
                if set.atom_index.contains_key(&a) || !staged_atoms.insert(a) {
                    return false;
                }
            }
            let tmpl = if let Some(&i) = set.keys.get(&key) {
                Tmpl::Existing(i)
            } else if let Some(&i) = new_keys.get(&key) {
                Tmpl::New(i)
            } else {
                match automaton::compile(&key, opts.solver, limits) {
                    Ok(Some(auto)) => {
                        new_templates.push(Arc::new(auto));
                        new_keys.insert(key, new_templates.len() - 1);
                        Tmpl::New(new_templates.len() - 1)
                    }
                    _ => return false,
                }
            };
            staged.push((tmpl, support));
        }
        // Commit.
        let base = set.templates.len() as u32;
        for auto in new_templates {
            set.keys
                .insert(auto.key().clone(), set.templates.len() as u32);
            set.templates.push(auto);
        }
        for (tmpl, support) in staged {
            let tmpl = match tmpl {
                Tmpl::Existing(i) => i,
                Tmpl::New(i) => base + i as u32,
            };
            let u = set.units.len() as u32;
            let col = CompiledSet::col_of(last, &support);
            for (bit, &a) in support.iter().enumerate() {
                set.atom_index.insert(a, (u, bit as u8));
            }
            if !set.templates[tmpl as usize].sat(0) {
                set.n_unsat += 1;
            }
            set.units.push(Unit {
                tmpl,
                state: 0,
                col,
                support,
            });
            set.refresh_active(u);
        }
        true
    }

    /// Splits an already-simplified replayed conjunct block (a delta
    /// re-ground or an occurrence activation) into units and binds them
    /// into the live compiled set. When the block cannot be bound the
    /// whole context decompiles and the block is conjoined symbolically
    /// — the two routes are semantically identical.
    fn bind_block_or_decompile(&mut self, block: FormulaId, opts: &CheckOptions) {
        let t = Timer::start();
        let units = automaton::split_units(&mut self.g.arena, block);
        let set = self
            .compiled
            .as_mut()
            .expect("caller checked the context is compiled");
        let bound = Self::bind_units(set, &self.g.arena, self.g.trace.last(), &units, opts);
        t.finish(&mut self.compile_time);
        if !bound {
            self.decompile();
            let combined = self.g.arena.and(self.residue, block);
            self.residue = simplify(&mut self.g.arena, combined);
        }
    }

    /// Reconstructs the exact symbolic residue from the compiled state
    /// and drops the compiled set — the transparent fallback. A no-op
    /// on symbolic contexts.
    pub(crate) fn decompile(&mut self) {
        let Some(set) = self.compiled.take() else {
            return;
        };
        let mut parts = Vec::with_capacity(set.units.len());
        for unit in &set.units {
            // Fresh memo per unit: the template arena is shared, but
            // each unit maps its canonical atoms to different letters.
            let mut memo = HashMap::new();
            let auto = &set.templates[unit.tmpl as usize];
            parts.push(auto.reconstruct(&mut self.g.arena, unit.state, &unit.support, &mut memo));
        }
        let combined = self.g.arena.and_all(parts);
        self.residue = simplify(&mut self.g.arena, combined);
    }

    /// Progresses a fresh conjunct block through the full stored
    /// prefix: first the cold (truncated and spilled) instants
    /// `[0, base)`, each faulted in from the pager and re-encoded via
    /// frozen letter lookup, then the resident trace. Chaining
    /// single-step progression into the trace fold is exactly
    /// [`progress_trace`] over the untruncated trace — both fold left
    /// with early exit at `⊤`/`⊥`, and the frozen re-encode reproduces
    /// each cold valuation bit-identically — so every budget yields
    /// the same residue.
    fn replay_through(
        &mut self,
        psi: FormulaId,
        cold: Option<(&HistoryPager, usize)>,
        stats: &mut EngineStats,
    ) -> Result<FormulaId, Error> {
        let mut f = psi;
        if let Some((pager, base)) = cold {
            let tru = self.g.arena.tru();
            let fls = self.g.arena.fls();
            for t in 0..base {
                if f == tru || f == fls {
                    break;
                }
                let s = pager.load(t)?;
                let w = self.g.encode_state_frozen(&s);
                f = progress(&mut self.g.arena, f, &w).map_err(|_| Error::Sat(SatError::Past))?;
            }
            // Counter parity with the untruncated path, which charges
            // the whole trace length regardless of early exit.
            stats.progress_steps += base as u64;
        }
        progress_trace(&mut self.g.arena, f, &self.g.trace).map_err(|_| Error::Sat(SatError::Past))
    }

    /// Fast path: the state mentions no element outside `M`. Encodes
    /// the next propositional state — patched in place from the
    /// previous trace state in `O(|Δtx|)` under
    /// [`Encoding::Incremental`], else via a full re-encode — then
    /// advances the residue one letter, consulting the transition
    /// cache first. On a cache hit both progression and (when the
    /// memoised verdict is present) the phase-2 satisfiability test
    /// are skipped: a steady-state append is the encoding patch plus
    /// one hash lookup. Returns `Ok(None)` (doing nothing) if a new
    /// relevant element blocks the fast path.
    #[allow(clippy::too_many_arguments)]
    fn fast_append(
        &mut self,
        tx: &Transaction,
        state: &State,
        opts: &CheckOptions,
        notion: Notion,
        history_len: usize,
        cold: Option<(&HistoryPager, usize)>,
        stats: &mut EngineStats,
    ) -> Result<Option<Status>, Error> {
        if self.compiled.is_some() && notion == Notion::BadPrefix {
            // Compiled state decides potential satisfaction; the
            // bad-prefix notion's `⊥`-check is syntax-dependent, so a
            // mid-run notion flip falls back to the symbolic residue.
            self.decompile();
        }
        if self.g.strategy() == GroundStrategy::Indexed {
            if self.g.tx_has_delta(tx) {
                // New relevant elements force the slow path; the delta
                // re-ground below handles occurrence activation too.
                return Ok(None);
            }
            if self.g.has_newly_occurring(tx) {
                let inserts = self.g.newly_occurring(tx);
                // A previously-pruned instantiation just became
                // relevant: its flexible letters were false in every
                // past state (the tuples never occurred), so grounding
                // it now and replaying through the stored trace yields
                // exactly the residue it would have had all along.
                let t = Timer::start();
                let dg = self.g.ground_new_active(&[], &inserts)?;
                t.finish(&mut stats.ground_time);
                stats.new_conjuncts += dg.new_mappings;
                let t = Timer::start();
                let replayed = self.replay_through(dg.psi_new, cold, stats)?;
                if self.compiled.is_some() {
                    // Bind the replayed block as fresh units (their
                    // next step, under `w` below, happens with
                    // everyone else's).
                    let block = simplify(&mut self.g.arena, replayed);
                    t.finish(&mut stats.progress_time);
                    self.bind_block_or_decompile(block, opts);
                } else {
                    let combined = self.g.arena.and(self.residue, replayed);
                    self.residue = simplify(&mut self.g.arena, combined);
                    t.finish(&mut stats.progress_time);
                }
                stats.progress_steps += self.g.trace.len() as u64;
                stats.replayed_conjuncts += dg.new_mappings;
            }
        }
        let mut used_patch = false;
        let w = if opts.encoding == Encoding::Incremental && self.g.mode() == GroundMode::Folded {
            match self.g.patch_state(tx) {
                Some(w) => {
                    stats.encode_patched_atoms += self.g.patched_letters().len() as u64;
                    used_patch = true;
                    w
                }
                None => return Ok(None),
            }
        } else {
            match self.g.state_to_prop(state) {
                Some(w) => w,
                None => return Ok(None),
            }
        };
        if let Some(set) = self.compiled.as_mut() {
            // Compiled append: update the touched units' columns (all
            // columns under the rebuild-encoding ablation), advance the
            // active units by table lookup, read the verdict off the
            // unsat counter. No progression, no phase 2.
            let t = Timer::start();
            if used_patch {
                set.patch_cols(self.g.patched_letters(), &w);
            } else {
                set.recompute_cols(&w);
            }
            set.step_active(stats);
            stats.automaton_appends += 1;
            let status = if set.n_unsat > 0 {
                Status::Violated { at: history_len }
            } else {
                Status::Satisfied
            };
            self.g.trace.push(w);
            t.finish(&mut stats.progress_time);
            return Ok(Some(status));
        }
        let mut miss_key = None;
        if opts.transition_cache {
            let support = self.g.arena.atoms_of_cached(self.residue);
            let key = (self.residue, support_fingerprint(&w, &support));
            if let Some(&hit) = self.transition_cache.get(&key) {
                stats.cache.transition_hits += 1;
                self.residue = hit.next;
                self.g.trace.push(w);
                if notion == Notion::BadPrefix {
                    let fls = self.g.arena.fls();
                    return Ok(Some(if self.residue == fls {
                        Status::Violated { at: history_len }
                    } else {
                        Status::Satisfied
                    }));
                }
                if let Some(sat) = hit.verdict {
                    return Ok(Some(if sat {
                        Status::Satisfied
                    } else {
                        Status::Violated { at: history_len }
                    }));
                }
                // The edge was recorded under the bad-prefix notion;
                // run phase 2 now and backfill the verdict.
                let status = self.decide(notion, opts, history_len, stats)?;
                let sat = matches!(status, Status::Satisfied);
                if let Some(entry) = self.transition_cache.get_mut(&key) {
                    entry.verdict = Some(sat);
                }
                return Ok(Some(status));
            }
            stats.cache.transition_misses += 1;
            miss_key = Some(key);
        }
        let t = Timer::start();
        let progressed = progress(&mut self.g.arena, self.residue, &w)
            .map_err(|_| Error::Sat(SatError::Past))?;
        // Keep residues compact (□□/◇◇ and duplicate boxes otherwise
        // accumulate across appends).
        self.residue = simplify(&mut self.g.arena, progressed);
        self.g.trace.push(w);
        t.finish(&mut stats.progress_time);
        stats.progress_steps += 1;
        let status = self.decide(notion, opts, history_len, stats)?;
        if let Some(key) = miss_key {
            if self.transition_cache.len() >= TRANSITION_CACHE_CAP {
                stats.cache.transition_evictions += self.transition_cache.len() as u64;
                self.transition_cache.clear();
            }
            let verdict = match notion {
                Notion::Potential => Some(matches!(status, Status::Satisfied)),
                Notion::BadPrefix => None,
            };
            self.transition_cache.insert(
                key,
                Transition {
                    next: self.residue,
                    verdict,
                },
            );
        }
        Ok(Some(status))
    }

    /// Delta path: ground only the instantiations mentioning the new
    /// elements, replay that block through the stored trace (plus the
    /// new state), progress the memoised residue one step, and conjoin.
    fn delta_append(
        &mut self,
        tx: &Transaction,
        state: &State,
        opts: &CheckOptions,
        cold: Option<(&HistoryPager, usize)>,
        stats: &mut EngineStats,
    ) -> Result<(), Error> {
        let t = Timer::start();
        let delta = self.g.tx_delta(tx);
        let dg = if self.g.strategy() == GroundStrategy::Indexed {
            // Index-driven delta: extend M with the new elements, then
            // ground only the instantiations the enlarged occurrence
            // index activates (instead of every map touching `delta`).
            let inserts = self.g.newly_occurring(tx);
            self.g.ground_new_active(&delta, &inserts)?
        } else {
            self.g.ground_delta(&delta)?
        };
        t.finish(&mut stats.ground_time);
        stats.delta_grounds += 1;
        stats.new_conjuncts += dg.new_mappings;

        let t = Timer::start();
        let mut used_patch = false;
        let w = if opts.encoding == Encoding::Incremental {
            // ground_delta has just extended the known set, so every
            // element the transaction mentions now has letters to
            // patch against.
            let w = self
                .g
                .patch_state(tx)
                .expect("delta re-ground covers every element the transaction mentions");
            stats.encode_patched_atoms += self.g.patched_letters().len() as u64;
            used_patch = true;
            w
        } else {
            self.g.encode_state(state)
        };
        self.g.trace.push(w.clone());
        // Old trace states need no re-encoding: letters mentioning a
        // delta element are false there, which PropState's default
        // already yields. Spilled instants behind the retention
        // horizon are faulted back in and re-encoded inside
        // `replay_through` — new letters over old elements can be true
        // there, so the cold prefix genuinely has to be read.
        let replayed = self.replay_through(dg.psi_new, cold, stats)?;
        if self.compiled.is_some() {
            // Existing units advance one letter by table lookup; the
            // replayed block — already progressed through the trace
            // including `w` — binds as fresh units at their current
            // column.
            {
                let set = self.compiled.as_mut().expect("checked above");
                if used_patch {
                    set.patch_cols(self.g.patched_letters(), &w);
                } else {
                    set.recompute_cols(&w);
                }
                set.step_active(stats);
            }
            let block = simplify(&mut self.g.arena, replayed);
            t.finish(&mut stats.progress_time);
            self.bind_block_or_decompile(block, opts);
            // Count the append as automaton-driven only if the bind
            // kept the context compiled; a failed bind decompiles and
            // the append is accounted to the symbolic path.
            if self.compiled.is_some() {
                stats.automaton_appends += 1;
            }
        } else {
            let old = progress(&mut self.g.arena, self.residue, &w)
                .map_err(|_| Error::Sat(SatError::Past))?;
            let combined = self.g.arena.and(old, replayed);
            self.residue = simplify(&mut self.g.arena, combined);
            t.finish(&mut stats.progress_time);
        }
        stats.progress_steps += 1 + self.g.trace.len() as u64;
        stats.replayed_conjuncts += dg.new_mappings;
        Ok(())
    }

    /// Phase 2 on the residue, with memoisation. Under
    /// [`Notion::BadPrefix`] phase 2 is skipped entirely: only a
    /// residue of `⊥` counts as a violation.
    fn decide(
        &mut self,
        notion: Notion,
        opts: &CheckOptions,
        history_len: usize,
        stats: &mut EngineStats,
    ) -> Result<Status, Error> {
        if self.compiled.is_some() {
            if notion == Notion::Potential {
                // Per-state verdicts were precomputed at compile time;
                // the residue (a conjunction of support-disjoint
                // units) is satisfiable iff every unit is.
                let n_unsat = self.compiled.as_ref().expect("checked").n_unsat;
                return Ok(if n_unsat > 0 {
                    Status::Violated { at: history_len }
                } else {
                    Status::Satisfied
                });
            }
            // Notion flipped mid-run: the `⊥`-check below needs the
            // symbolic residue.
            self.decompile();
        }
        if notion == Notion::BadPrefix {
            let fls = self.g.arena.fls();
            return Ok(if self.residue == fls {
                Status::Violated { at: history_len }
            } else {
                Status::Satisfied
            });
        }
        let sat = if let Some(&cached) = self.sat_cache.get(&self.residue) {
            stats.cache.sat_hits += 1;
            cached
        } else {
            stats.sat_checks += 1;
            let t = Timer::start();
            let r = is_satisfiable_with(&mut self.g.arena, self.residue, opts.solver)?;
            t.finish(&mut stats.sat_time);
            if self.sat_cache.len() >= SAT_CACHE_CAP {
                stats.cache.sat_evictions += self.sat_cache.len() as u64;
                self.sat_cache.clear();
            }
            self.sat_cache.insert(self.residue, r.satisfiable);
            r.satisfiable
        };
        Ok(if sat {
            Status::Satisfied
        } else {
            Status::Violated { at: history_len }
        })
    }
}

pub(crate) struct Entry {
    pub(crate) name: String,
    pub(crate) phi: Formula,
    pub(crate) status: Status,
    pub(crate) ctx: GroundingContext,
}

/// The shared incremental engine: owns the history, the per-constraint
/// [`GroundingContext`]s, and the observability spine. The online
/// [`Monitor`](crate::monitor::Monitor) is a thin facade over it; the
/// trigger engine and the extension checker use its one-shot path.
pub struct Engine {
    history: History,
    pub(crate) entries: Vec<Entry>,
    opts: CheckOptions,
    notion: Notion,
    pub(crate) stats: EngineStats,
    store: Option<Store>,
    /// The persistent constraint-sweep worker pool, created lazily on
    /// the first parallel append and kept for the engine's lifetime —
    /// the hot path never pays a thread spawn. `None` until then (and
    /// always `None` under `Threads::Off`). Not serialised: a restored
    /// engine re-creates its pool on first use.
    pool: Option<WorkerPool>,
    /// The cold-state spill tier, present once the engine has
    /// truncated its history under a bounded [`HistoryBudget`]:
    /// instants `[0, history.base())` live here as deduped pages and
    /// are faulted back in only on the rare slow paths (delta replay,
    /// full materialisation).
    pub(crate) pager: Option<HistoryPager>,
    /// History length covered by the newest snapshot written to (or
    /// restored from) the attached store. With a store attached the
    /// engine only truncates instants a checkpoint already covers, so
    /// a crash between a truncation and the next checkpoint recovers
    /// from a snapshot that still holds the full pre-truncate horizon.
    pub(crate) checkpointed_len: usize,
    /// Per-chunk outcome buffers of the pooled constraint sweep,
    /// recycled across dispatches so a steady-state parallel append
    /// allocates nothing (`pool_buf_allocs` counts creations).
    outcome_bufs: Vec<Mutex<Vec<(usize, usize, Status)>>>,
}

/// Rough heap footprint of one database state: per-tuple values plus
/// container overhead. Only used for the `Bytes` budget conversion and
/// the `resident`/`reclaimed` byte gauges — relative accuracy across
/// states of one workload is what matters, not absolute bytes.
fn approx_state_bytes(schema: &Schema, state: &State) -> usize {
    let mut bytes = 64usize;
    for p in schema.preds() {
        let rel = state.relation(p);
        bytes += rel.len() * (8 * schema.arity(p).max(1) + 16);
    }
    bytes
}

/// Materialises the full untruncated history of a truncated engine:
/// the cold prefix faulted in from the pager followed by the resident
/// suffix, rebased to `base == 0`.
fn materialize_full(history: &History, pager: Option<&HistoryPager>) -> Result<History, Error> {
    let pager = pager.expect("truncated history has a pager");
    let mut states = Vec::with_capacity(history.len());
    for t in 0..history.base() {
        states.push((*pager.load(t)?).clone());
    }
    states.extend(history.states().iter().cloned());
    Ok(History::from_parts(
        history.schema().clone(),
        history.constants().to_vec(),
        0,
        BTreeSet::new(),
        states,
    ))
}

impl Engine {
    /// An engine over an empty history.
    pub fn new(schema: Arc<Schema>, opts: CheckOptions) -> Self {
        Self::with_history(History::new(schema), opts)
    }

    /// An engine taking over an existing history.
    pub fn with_history(history: History, opts: CheckOptions) -> Self {
        Self {
            history,
            entries: Vec::new(),
            opts,
            notion: Notion::default(),
            stats: EngineStats::default(),
            store: None,
            pool: None,
            pager: None,
            checkpointed_len: 0,
            outcome_bufs: Vec::new(),
        }
    }

    /// Selects the violation notion (see [`Notion`]). Applies to
    /// constraints registered and updates applied afterwards.
    pub fn set_notion(&mut self, notion: Notion) {
        self.notion = notion;
    }

    /// The active violation notion.
    pub fn notion(&self) -> Notion {
        self.notion
    }

    /// The engine's options.
    pub fn opts(&self) -> CheckOptions {
        self.opts
    }

    /// The current history. Under a bounded [`HistoryBudget`] this may
    /// be truncated: instants before [`History::base`] live in the
    /// spill tier and direct `state` access to them panics — callers
    /// that need the whole timeline use [`Engine::full_history`].
    pub fn history(&self) -> &History {
        &self.history
    }

    /// The full untruncated history: borrowed when nothing has been
    /// truncated (the common case, and always under
    /// [`HistoryBudget::Unbounded`]), otherwise materialised from the
    /// spill tier plus the resident suffix. Output over this history —
    /// explain traces, trigger evaluation, `:history` listings — is
    /// identical under every budget.
    pub fn full_history(&self) -> Result<Cow<'_, History>, Error> {
        if self.history.base() == 0 {
            Ok(Cow::Borrowed(&self.history))
        } else {
            Ok(Cow::Owned(materialize_full(
                &self.history,
                self.pager.as_ref(),
            )?))
        }
    }

    /// The first `upto` instants as an untruncated history (prefix
    /// analogue of [`Engine::full_history`], used for prefix-scoped
    /// trigger evaluation mid-batch).
    pub fn history_prefix(&self, upto: usize) -> Result<History, Error> {
        assert!(upto <= self.history.len(), "prefix beyond history");
        let base = self.history.base();
        if base == 0 {
            return Ok(self.history.prefix(upto));
        }
        let pager = self.pager.as_ref().expect("truncated history has a pager");
        let mut states = Vec::with_capacity(upto);
        for t in 0..upto.min(base) {
            states.push((*pager.load(t)?).clone());
        }
        if upto > base {
            states.extend(self.history.states()[..upto - base].iter().cloned());
        }
        Ok(History::from_parts(
            self.history.schema().clone(),
            self.history.constants().to_vec(),
            0,
            BTreeSet::new(),
            states,
        ))
    }

    /// The engine-wide retention floor over the live residues (see
    /// [`crate::window::retention_floor`]): the minimum number of
    /// resident instants any budget is clamped to, or `None` when some
    /// residue has unbounded past-depth and truncation is off limits.
    pub fn retention_floor(&self) -> Option<usize> {
        crate::window::retention_floor(self.entries.iter().map(|e| (&e.ctx.g.arena, e.ctx.residue)))
    }

    /// The budget expressed as a window of instants: `Window(n)` is
    /// itself, `Bytes(b)` divides by the mean resident state
    /// footprint, `Unbounded` is `None`.
    fn budget_window(&self) -> Option<usize> {
        match self.opts.history_budget {
            HistoryBudget::Unbounded => None,
            HistoryBudget::Window(n) => Some(n.max(1)),
            HistoryBudget::Bytes(b) => {
                let states = self.history.states();
                if states.is_empty() {
                    return None;
                }
                // Mean footprint sampled over the newest states only:
                // this runs on every append, and O(resident) sums would
                // tax exactly the configurations the budget exists for.
                let schema = self.history.schema();
                let sample = &states[states.len().saturating_sub(64)..];
                let total: usize = sample.iter().map(|s| approx_state_bytes(schema, s)).sum();
                let per = (total / sample.len()).max(1);
                Some((b / per).max(1))
            }
        }
    }

    /// Enforces the [`HistoryBudget`]: when the resident window has
    /// grown past twice the target (hysteresis — truncation runs in
    /// batches, not per append), spills the prefix behind the
    /// retention horizon to the pager and drops it from the in-memory
    /// history and every context's trace in lockstep.
    ///
    /// Truncation is gated on the configurations whose slow paths can
    /// rebase onto (pager, suffix) offsets — folded grounding with
    /// delta re-grounding, the defaults — and, with a store attached,
    /// on the newest checkpoint already covering the dropped instants,
    /// so crash recovery always finds a snapshot holding the full
    /// horizon it needs. A residue with unbounded past-depth (the
    /// `□past` side of the paper's §3 separation) blocks truncation
    /// entirely.
    fn enforce_budget(&mut self) -> Result<(), Error> {
        if self.opts.history_budget == HistoryBudget::Unbounded {
            return Ok(());
        }
        if self.opts.mode != GroundMode::Folded || self.opts.regrounding != Regrounding::Delta {
            return Ok(());
        }
        let Some(window) = self.budget_window() else {
            return Ok(());
        };
        let Some(floor) = self.retention_floor() else {
            return Ok(());
        };
        let target = window.max(floor);
        let len = self.history.len();
        let resident = len - self.history.base();
        if resident <= target.saturating_mul(2) {
            return Ok(());
        }
        let mut new_base = len - target;
        if self.store.is_some() {
            new_base = new_base.min(self.checkpointed_len);
        }
        let k = new_base.saturating_sub(self.history.base());
        if k == 0 {
            return Ok(());
        }
        if self.pager.is_none() {
            self.pager = Some(HistoryPager::new(self.history.schema().clone())?);
        }
        let pager = self.pager.as_mut().expect("just ensured");
        let spilled_before = pager.spilled_instants();
        let mut reclaimed = 0u64;
        let schema = self.history.schema();
        for s in &self.history.states()[..k] {
            reclaimed += approx_state_bytes(schema, s) as u64;
            if let Err(e) = pager.spill(s) {
                // Keep the pager's instant index aligned with the
                // (untruncated) base; the pages already appended stay
                // in the dedup table and cost nothing.
                pager.rollback_to(spilled_before);
                return Err(e);
            }
        }
        self.history.truncate_prefix(k);
        for e in &mut self.entries {
            e.ctx.g.truncate_trace(k);
        }
        self.stats.history.truncations += 1;
        self.stats.history.reclaimed_bytes += reclaimed;
        Ok(())
    }

    /// A snapshot of the observability spine, with the size gauges
    /// (letters, arena nodes, mappings) refreshed over the live
    /// grounding contexts.
    pub fn stats(&self) -> EngineStats {
        let mut s = self.stats;
        s.store = self.store.as_ref().map(Store::stats).unwrap_or_default();
        s.pool_workers = self.pool.as_ref().map_or(0, |p| p.size() as u64);
        s.history.resident_states = self.history.states().len() as u64;
        s.history.resident_bytes = {
            let schema = self.history.schema();
            self.history
                .states()
                .iter()
                .map(|st| approx_state_bytes(schema, st) as u64)
                .sum()
        };
        if let Some(p) = &self.pager {
            s.history.spilled_instants = p.spilled_instants() as u64;
            s.history.spilled_distinct = p.distinct() as u64;
            s.history.spilled_bytes = p.bytes();
            s.history.page_loads += p.loads();
        }
        s.letters = 0;
        s.arena_nodes = 0;
        s.mappings = 0;
        s.inst_enumerated = 0;
        s.inst_pruned = 0;
        s.inst_shared = 0;
        s.templates_compiled = 0;
        s.automaton_states = 0;
        s.automaton_insts = 0;
        s.index_build_time = Duration::ZERO;
        s.automaton_compile_time = Duration::ZERO;
        s.cache.letter_index_len = 0;
        for e in &self.entries {
            let g = e.ctx.grounding();
            s.letters += g.letter_count() as u64;
            s.arena_nodes += g.arena.dag_len() as u64;
            s.mappings += g.stats.mappings as u64;
            s.inst_enumerated += g.stats.inst_enumerated as u64;
            s.inst_pruned += g.stats.inst_pruned as u64;
            s.inst_shared += g.stats.inst_shared as u64;
            s.index_build_time += g.index_build;
            s.automaton_compile_time += e.ctx.compile_time;
            s.cache.letter_index_len += g.letter_index_len() as u64;
            if let Some(set) = &e.ctx.compiled {
                s.templates_compiled += set.templates.len() as u64;
                s.automaton_states += set.state_total();
                s.automaton_insts += set.units.len() as u64;
            }
        }
        s
    }

    /// Registers a universal safety constraint and checks it against
    /// the current history immediately.
    pub fn add_constraint(
        &mut self,
        name: impl Into<String>,
        phi: Formula,
    ) -> Result<ConstraintId, Error> {
        let name = name.into();
        let id = ConstraintId(self.entries.len());
        self.stats.grounds += 1;
        // A constraint registered after a truncation grounds over the
        // materialised full history, then drops the cold prefix of its
        // fresh trace so the per-entry invariant
        // `trace.len() == history.len() - base` holds for it too.
        let base = self.history.base();
        let owned = if base > 0 {
            Some(materialize_full(&self.history, self.pager.as_ref())?)
        } else {
            None
        };
        let hist = owned.as_ref().unwrap_or(&self.history);
        let mut ctx = GroundingContext::build(hist, &phi, &self.opts, &mut self.stats)?;
        if base > 0 {
            ctx.g.truncate_trace(base);
        }
        ctx.try_compile(self.notion, &self.opts);
        let len = self.history.len();
        let status = ctx.decide(self.notion, &self.opts, len, &mut self.stats)?;
        self.entries.push(Entry {
            name,
            phi,
            status,
            ctx,
        });
        Ok(id)
    }

    /// Status of a constraint.
    pub fn status(&self, id: ConstraintId) -> Status {
        self.entries[id.0].status
    }

    /// Read access to the grounding context of a constraint (used by
    /// diagnostics and the determinism test suite).
    pub fn context(&self, id: ConstraintId) -> &GroundingContext {
        &self.entries[id.0].ctx
    }

    /// Name of a constraint.
    pub fn name(&self, id: ConstraintId) -> &str {
        &self.entries[id.0].name
    }

    /// The registered formula of a constraint (as given to
    /// [`Engine::add_constraint`], before grounding).
    pub fn formula(&self, id: ConstraintId) -> &Formula {
        &self.entries[id.0].phi
    }

    /// Ids of all registered constraints.
    pub fn constraints(&self) -> impl Iterator<Item = ConstraintId> {
        (0..self.entries.len()).map(ConstraintId)
    }

    /// One append step for one constraint: the incremental fast path,
    /// else delta re-grounding (when enabled and applicable), else a
    /// full rebuild; then the violation decision. Factored out of
    /// [`Engine::append`] so the sequential loop, the pooled constraint
    /// sweep, and the batched sweep share one body.
    ///
    /// `upto` is the history length *after* `tx`: the step reasons over
    /// the prefix `history[..upto]`. During a batched append the
    /// history already holds the whole batch, and each constraint is
    /// stepped through the batch one transaction at a time with
    /// `upto` advancing — only the (rare) full-rebuild branch needs to
    /// materialise the prefix.
    #[allow(clippy::too_many_arguments)]
    fn step_entry(
        history: &History,
        tx: &Transaction,
        entry: &mut Entry,
        opts: &CheckOptions,
        notion: Notion,
        upto: usize,
        cold: Option<(&HistoryPager, usize)>,
        stats: &mut EngineStats,
    ) -> Result<Status, Error> {
        let state = history.state(upto - 1);
        // Grounding-scratch capacity growths count against the same
        // no-alloc budget as the pool's outcome buffers: after warm-up
        // a steady-state append must leave `pool_buf_allocs` flat.
        let scratch0 = entry.ctx.g.scratch_allocs();
        let fast = entry
            .ctx
            .fast_append(tx, state, opts, notion, upto, cold, stats);
        stats.pool_buf_allocs += entry.ctx.g.scratch_allocs() - scratch0;
        if let Some(status) = fast? {
            stats.fast_appends += 1;
            return Ok(status);
        }
        if opts.regrounding == Regrounding::Delta && opts.mode == GroundMode::Folded {
            entry.ctx.delta_append(tx, state, opts, cold, stats)?;
        } else {
            // Full rebuild over the enlarged history (prefix view when
            // stepping mid-batch).
            stats.regrounds += 1;
            entry.ctx = if upto == history.len() {
                GroundingContext::build(history, &entry.phi, opts, stats)?
            } else {
                let prefix = history.prefix(upto);
                GroundingContext::build(&prefix, &entry.phi, opts, stats)?
            };
            entry.ctx.try_compile(notion, opts);
        }
        entry.ctx.decide(notion, opts, upto, stats)
    }

    /// Applies a transaction, producing the next state, and re-checks
    /// every live constraint. Returns the violations that became
    /// unavoidable with this update.
    ///
    /// With [`Threads`] enabled and more than one live constraint, the
    /// per-constraint checks fan out across a bounded scoped-thread
    /// pool. Each [`GroundingContext`] is owned by exactly one worker
    /// for the duration of the sweep, per-worker [`EngineStats`] are
    /// absorbed in chunk order, and events are emitted in
    /// [`ConstraintId`] order — observable behaviour is identical to
    /// the sequential path.
    pub fn append(&mut self, tx: &Transaction) -> Result<Vec<MonitorEvent>, Error> {
        self.append_inner(tx, true)
    }

    /// [`Engine::append`] with WAL logging controllable: recovery
    /// replays the suffix through this with `log = false` (the
    /// transactions are already in the log).
    ///
    /// Apply-then-log: `History::apply` validates the transaction
    /// (arity, predicate range), so nothing unreplayable ever reaches
    /// the WAL; if this returns `Ok` under
    /// [`Durability::WalFsync`] the transaction is on disk.
    fn append_inner(&mut self, tx: &Transaction, log: bool) -> Result<Vec<MonitorEvent>, Error> {
        self.history.apply(tx)?;
        if log {
            if let Some(store) = self.store.as_mut() {
                match self.opts.durability {
                    Durability::Off => {}
                    Durability::Wal => store.append_tx(tx, false)?,
                    Durability::WalFsync => store.append_tx(tx, true)?,
                }
            }
        }
        self.stats.appends += 1;
        let live = self
            .entries
            .iter()
            .filter(|e| !matches!(e.status, Status::Violated { .. }))
            .count();
        let workers = self.opts.threads.worker_count();
        if live > 1 && workers > 1 {
            let events =
                self.append_parallel(std::slice::from_ref(tx), workers, |mut per_tx| {
                    per_tx.pop().unwrap_or_default()
                })?;
            self.enforce_budget()?;
            return Ok(events);
        }
        let mut events = Vec::new();
        let upto = self.history.len();
        let base = self.history.base();
        let cold = if base > 0 {
            Some((
                self.pager.as_ref().expect("truncated history has a pager"),
                base,
            ))
        } else {
            None
        };
        for i in 0..self.entries.len() {
            if matches!(self.entries[i].status, Status::Violated { .. }) {
                continue; // safety: violations are permanent
            }
            let status = Self::step_entry(
                &self.history,
                tx,
                &mut self.entries[i],
                &self.opts,
                self.notion,
                upto,
                cold,
                &mut self.stats,
            )?;
            if let Status::Violated { at } = status {
                self.entries[i].status = status;
                events.push(MonitorEvent {
                    constraint: ConstraintId(i),
                    name: self.entries[i].name.clone(),
                    at,
                });
            }
        }
        self.enforce_budget()?;
        Ok(events)
    }

    /// Appends a batch of transactions in one constraint sweep.
    ///
    /// All transactions are applied (and WAL-logged) first; each
    /// constraint is then stepped through the whole batch by one
    /// worker with no per-transaction barrier — the constraints are
    /// independent, so worker `w` can be on transaction 3 while worker
    /// `w'` is still on transaction 0. Under `Durability::WalFsync`
    /// the batch group-commits: intermediate transactions are logged
    /// without syncing and the final one fsyncs, so a crash can only
    /// lose transactions whose batch was never acknowledged.
    ///
    /// Returns one event list per transaction, each in
    /// [`ConstraintId`] order — exactly what the same transactions
    /// appended one at a time would produce (a constraint violated at
    /// transaction `t` is not stepped past `t`, matching the per-append
    /// skip rule). Statuses, stats, and events are bit-identical to
    /// the sequential path regardless of [`Threads`].
    pub fn append_batch(&mut self, txs: &[Transaction]) -> Result<Vec<Vec<MonitorEvent>>, Error> {
        if txs.is_empty() {
            return Ok(Vec::new());
        }
        if txs.len() == 1 {
            return Ok(vec![self.append(&txs[0])?]);
        }
        for (i, tx) in txs.iter().enumerate() {
            self.history.apply(tx)?;
            if let Some(store) = self.store.as_mut() {
                let last = i + 1 == txs.len();
                match self.opts.durability {
                    Durability::Off => {}
                    Durability::Wal => store.append_tx(tx, false)?,
                    Durability::WalFsync => store.append_tx(tx, last)?,
                }
            }
            self.stats.appends += 1;
        }
        self.stats.batches += 1;
        self.stats.batched_txs += txs.len() as u64;
        let live = self
            .entries
            .iter()
            .filter(|e| !matches!(e.status, Status::Violated { .. }))
            .count();
        let workers = self.opts.threads.worker_count();
        if live > 1 && workers > 1 {
            let events = self.append_parallel(txs, workers, |per_tx| per_tx)?;
            self.enforce_budget()?;
            return Ok(events);
        }
        let base = self.history.len() - txs.len();
        let trunc_base = self.history.base();
        let cold = if trunc_base > 0 {
            Some((
                self.pager.as_ref().expect("truncated history has a pager"),
                trunc_base,
            ))
        } else {
            None
        };
        let mut events: Vec<Vec<MonitorEvent>> = txs.iter().map(|_| Vec::new()).collect();
        for i in 0..self.entries.len() {
            if matches!(self.entries[i].status, Status::Violated { .. }) {
                continue; // safety: violations are permanent
            }
            for (t, tx) in txs.iter().enumerate() {
                let status = Self::step_entry(
                    &self.history,
                    tx,
                    &mut self.entries[i],
                    &self.opts,
                    self.notion,
                    base + t + 1,
                    cold,
                    &mut self.stats,
                )?;
                if let Status::Violated { at } = status {
                    self.entries[i].status = status;
                    events[t].push(MonitorEvent {
                        constraint: ConstraintId(i),
                        name: self.entries[i].name.clone(),
                        at,
                    });
                    break; // violations are permanent; stop mid-batch
                }
            }
        }
        self.enforce_budget()?;
        Ok(events)
    }

    /// The pooled constraint sweep behind [`Engine::append`] and
    /// [`Engine::append_batch`]. Shards the entry list canonically
    /// over the persistent [`WorkerPool`] (created on first use, sized
    /// by the [`Threads`] policy), steps every live constraint through
    /// the whole transaction batch with grounding forced sequential
    /// (the fan-out budget is spent here), and merges outcomes, stats,
    /// and the first error in chunk order. Events come back grouped
    /// per transaction, in [`ConstraintId`] order within each;
    /// `finish` shapes that into the caller's return type.
    fn append_parallel<R>(
        &mut self,
        txs: &[Transaction],
        workers: usize,
        finish: impl FnOnce(Vec<Vec<MonitorEvent>>) -> R,
    ) -> Result<R, Error> {
        let mut inner = self.opts;
        inner.threads = Threads::Off;
        // Per-chunk outcome buffers are engine-owned and recycled
        // across dispatches: after warm-up a steady-state parallel
        // append performs no per-dispatch allocation for them (the
        // `pool_buf_allocs` counter stays flat).
        if self.outcome_bufs.len() < workers {
            self.stats.pool_buf_allocs += (workers - self.outcome_bufs.len()) as u64;
            self.outcome_bufs
                .resize_with(workers, || Mutex::new(Vec::new()));
        }
        let history = &self.history;
        let base = history.len() - txs.len();
        let trunc_base = history.base();
        let cold: Option<(&HistoryPager, usize)> = if trunc_base > 0 {
            Some((
                self.pager.as_ref().expect("truncated history has a pager"),
                trunc_base,
            ))
        } else {
            None
        };
        let notion = self.notion;
        let bufs = &self.outcome_bufs;
        let mut meter = ParMeter::new();
        let pool_size = self.opts.threads.worker_count();
        let pool = self.pool.get_or_insert_with(|| WorkerPool::new(pool_size));
        let chunk_results = pool.for_each_chunk_mut(
            &mut self.entries,
            workers,
            &mut meter,
            |ci, start, chunk| {
                let mut stats = EngineStats::default();
                let mut outcomes = bufs[ci].lock().expect("outcome buffer poisoned");
                outcomes.clear();
                for (off, entry) in chunk.iter_mut().enumerate() {
                    if matches!(entry.status, Status::Violated { .. }) {
                        continue; // safety: violations are permanent
                    }
                    for (t, tx) in txs.iter().enumerate() {
                        match Self::step_entry(
                            history,
                            tx,
                            entry,
                            &inner,
                            notion,
                            base + t + 1,
                            cold,
                            &mut stats,
                        ) {
                            Ok(status) => {
                                let violated = matches!(status, Status::Violated { .. });
                                outcomes.push((start + off, t, status));
                                if violated {
                                    break; // stop stepping mid-batch
                                }
                            }
                            Err(e) => return (stats, Err(e)),
                        }
                    }
                }
                (stats, Ok(()))
            },
        );
        self.stats.absorb_par(&meter);
        let mut events: Vec<Vec<MonitorEvent>> = txs.iter().map(|_| Vec::new()).collect();
        let mut first_err = None;
        for (ci, (worker_stats, result)) in chunk_results.into_iter().enumerate() {
            self.stats.absorb(&worker_stats);
            match result {
                Ok(()) => {
                    let mut buf = self.outcome_bufs[ci]
                        .lock()
                        .expect("outcome buffer poisoned");
                    for (i, t, status) in buf.drain(..) {
                        if let Status::Violated { at } = status {
                            self.entries[i].status = status;
                            events[t].push(MonitorEvent {
                                constraint: ConstraintId(i),
                                name: self.entries[i].name.clone(),
                                at,
                            });
                        }
                    }
                }
                Err(e) => {
                    if first_err.is_none() {
                        first_err = Some(e);
                    }
                }
            }
        }
        match first_err {
            Some(e) => Err(e),
            None => Ok(finish(events)),
        }
    }

    // ----- durability (the `ticc-store` bridge) -----

    /// Attaches an open store: subsequent appends are logged according
    /// to [`Durability`], and [`Engine::checkpoint`] /
    /// [`Engine::compact`] write snapshots to it.
    pub fn attach_store(&mut self, store: Store) {
        self.store = Some(store);
    }

    /// The attached store, if any.
    pub fn store(&self) -> Option<&Store> {
        self.store.as_ref()
    }

    /// Counters of the attached store, if any.
    pub fn store_stats(&self) -> Option<StoreStats> {
        self.store.as_ref().map(Store::stats)
    }

    /// Serialises the complete engine state (plus an opaque application
    /// blob) into a snapshot payload — see [`crate::snapshot`].
    pub fn snapshot_bytes(&self, app: &[u8]) -> Vec<u8> {
        crate::snapshot::snapshot_engine(self, app)
    }

    /// Rebuilds an engine from [`Engine::snapshot_bytes`] output.
    /// Returns the engine (no store attached) and the application
    /// blob. `opts` are the caller's: run options are a property of
    /// the process, not of the persisted state.
    pub fn restore_bytes(bytes: &[u8], opts: CheckOptions) -> Result<(Engine, Vec<u8>), Error> {
        crate::snapshot::restore_engine(bytes, opts)
    }

    /// Writes a snapshot frame (always fsynced) to the attached store.
    /// Errors if no store is attached. The freshly covered prefix
    /// advances the retention horizon, so under a bounded budget a
    /// checkpoint is also when deferred truncation catches up.
    pub fn checkpoint(&mut self, app: &[u8]) -> Result<(), Error> {
        let payload = self.snapshot_bytes(app);
        match self.store.as_mut() {
            Some(s) => s.append_snapshot(&payload)?,
            None => return Err(Error::Store("no store attached".into())),
        }
        self.checkpointed_len = self.history.len();
        self.enforce_budget()
    }

    /// Rewrites the attached store as header + one fresh snapshot
    /// frame, dropping the replayed log prefix (atomic rename). Errors
    /// if no store is attached.
    pub fn compact(&mut self, app: &[u8]) -> Result<(), Error> {
        let payload = self.snapshot_bytes(app);
        match self.store.as_mut() {
            Some(s) => s.compact(&payload)?,
            None => return Err(Error::Store("no store attached".into())),
        }
        self.checkpointed_len = self.history.len();
        self.enforce_budget()
    }

    /// Opens (or creates) a durable store at `path` and builds the
    /// engine it describes: the newest intact snapshot is restored and
    /// the logged transaction suffix replayed through the incremental
    /// append path — `O(|snapshot| + |suffix|)`, never `O(t)` once a
    /// checkpoint exists. A torn or corrupt tail has already been
    /// truncated away by the store's recovery scan.
    ///
    /// `schema` is used only when the store holds no snapshot yet (a
    /// fresh or snapshot-less log): constraints and schema become
    /// durable with the first [`Engine::checkpoint`]. With no snapshot
    /// the suffix is replayed into the history before any constraints
    /// exist, so callers re-register constraints afterwards.
    pub fn open(
        path: impl AsRef<Path>,
        schema: Arc<Schema>,
        opts: CheckOptions,
    ) -> Result<(Engine, OpenReport), Error> {
        let (store, recovered) = Store::open_or_create(path)?;
        let (mut engine, app, had_snapshot) = match recovered.snapshot {
            Some(bytes) => {
                let (engine, app) = Engine::restore_bytes(&bytes, opts)?;
                (engine, app, true)
            }
            None => (Engine::new(schema, opts), Vec::new(), false),
        };
        let replay_schema = engine.history.schema().clone();
        // Attach the store before replaying so budget enforcement
        // during replay observes the checkpoint coverage (set by the
        // snapshot restore) and never truncates past it.
        engine.store = Some(store);
        let mut replayed_txs = 0u64;
        for payload in &recovered.suffix {
            let tx = ticc_store::codec::tx_from_bytes(payload, &replay_schema)?;
            engine.append_inner(&tx, false)?;
            replayed_txs += 1;
        }
        Ok((
            engine,
            OpenReport {
                had_snapshot,
                replayed_txs,
                truncated_bytes: recovered.truncated_bytes,
                app,
            },
        ))
    }
}

/// What [`Engine::open`] found in the store.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OpenReport {
    /// Whether an intact snapshot was restored (otherwise the engine
    /// started from the caller's schema).
    pub had_snapshot: bool,
    /// Logged transactions replayed after the snapshot.
    pub replayed_txs: u64,
    /// Bytes of torn/corrupt tail the recovery scan discarded.
    pub truncated_bytes: u64,
    /// The application blob of the restored snapshot (empty without
    /// one).
    pub app: Vec<u8>,
}

/// The result of a one-shot extension check routed through the engine
/// layer: the grounding, the raw satisfiability result (with witness
/// lasso), and the phase timings.
pub(crate) struct OneShot {
    pub grounding: Grounding,
    pub result: SatResult,
    pub ground_time: Duration,
    pub decide_time: Duration,
    pub par: ParMeter,
}

/// One-shot potential-satisfaction decision: ground, then decide
/// extendability of `w_D` (progression + phase-2 satisfiability inside
/// the PTL facade). Used by the extension checker and the trigger
/// engine; callers fold the timings (and the parallel meter) into
/// their own stats.
pub(crate) fn check_once(
    history: &History,
    phi: &Formula,
    opts: &CheckOptions,
) -> Result<OneShot, Error> {
    let t0 = Timer::start();
    let mut ground_time = Duration::ZERO;
    let mut par = ParMeter::new();
    let mut grounding = ground_metered(
        history,
        phi,
        opts.mode,
        opts.grounding,
        opts.threads,
        &mut par,
    )?;
    t0.finish(&mut ground_time);

    let t1 = Timer::start();
    let mut decide_time = Duration::ZERO;
    let trace = std::mem::take(&mut grounding.trace);
    let result = extends_with(&mut grounding.arena, &trace, grounding.formula, opts.solver)?;
    grounding.trace = trace;
    t1.finish(&mut decide_time);

    Ok(OneShot {
        grounding,
        result,
        ground_time,
        decide_time,
        par,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ticc_fotl::parser::parse;

    fn order_schema() -> Arc<Schema> {
        Schema::builder().pred("Sub", 1).pred("Fill", 1).build()
    }

    fn opts(regrounding: Regrounding) -> CheckOptions {
        CheckOptions::builder().regrounding(regrounding).build()
    }

    #[test]
    fn delta_and_full_agree_on_growing_domain() {
        let sc = order_schema();
        let sub = sc.pred("Sub").unwrap();
        let phi = parse(&sc, "forall x. G (Sub(x) -> X G !Sub(x))").unwrap();
        let mut delta = Engine::new(sc.clone(), opts(Regrounding::Delta));
        let mut full = Engine::new(sc.clone(), opts(Regrounding::Full));
        let d_id = delta.add_constraint("once", phi.clone()).unwrap();
        let f_id = full.add_constraint("once", phi).unwrap();
        // Each append clears the previous submission and introduces a
        // fresh element; the final one re-submits element 100 →
        // violation.
        for i in 0..3u64 {
            let mut tx = Transaction::new().insert(sub, vec![100 + i]);
            if i > 0 {
                tx = tx.delete(sub, vec![100 + i - 1]);
            }
            let de = delta.append(&tx).unwrap();
            let fe = full.append(&tx).unwrap();
            assert_eq!(de, fe, "append {i}");
        }
        let tx = Transaction::new()
            .delete(sub, vec![102])
            .insert(sub, vec![100]);
        let de = delta.append(&tx).unwrap();
        let fe = full.append(&tx).unwrap();
        assert_eq!(de.len(), 1);
        assert_eq!(de, fe);
        assert_eq!(delta.status(d_id), full.status(f_id));
        // The delta engine actually took the delta path.
        assert!(delta.stats().delta_grounds >= 3);
        assert_eq!(delta.stats().regrounds, 0);
        assert_eq!(full.stats().delta_grounds, 0);
        assert!(full.stats().regrounds >= 3);
    }

    #[test]
    fn replayed_conjuncts_stay_linear_in_delta() {
        // k = 1 and one new element per append: every delta re-ground
        // adds exactly one new instantiation, so the replayed-conjunct
        // counter grows by 1 per append — O(|Δ-part|) — while the total
        // instantiation count |M|^k keeps growing.
        let sc = order_schema();
        let sub = sc.pred("Sub").unwrap();
        let phi = parse(&sc, "forall x. G (Sub(x) -> X G !Sub(x))").unwrap();
        let mut e = Engine::new(sc.clone(), opts(Regrounding::Delta));
        e.add_constraint("once", phi).unwrap();
        let n = 6u64;
        for i in 0..n {
            let tx = Transaction::new()
                .delete(sub, vec![100 + i.saturating_sub(1)])
                .insert(sub, vec![100 + i]);
            e.append(&tx).unwrap();
        }
        let s = e.stats();
        assert_eq!(s.delta_grounds, n);
        assert_eq!(
            s.replayed_conjuncts, n,
            "one new instantiation per new element at k = 1"
        );
        // A full re-ground at step i would have re-derived i+2
        // instantiations; the delta path replays far fewer in total.
        assert!(s.replayed_conjuncts < s.mappings, "{s:?}");
    }

    #[test]
    fn full_mode_forces_rebuild_even_under_delta_policy() {
        let sc = order_schema();
        let sub = sc.pred("Sub").unwrap();
        let phi = parse(&sc, "forall x. G (Sub(x) -> X G !Sub(x))").unwrap();
        let mut e = Engine::new(
            sc.clone(),
            CheckOptions::builder()
                .mode(GroundMode::Full)
                .regrounding(Regrounding::Delta)
                .build(),
        );
        e.add_constraint("once", phi).unwrap();
        e.append(&Transaction::new().insert(sub, vec![1])).unwrap();
        let s = e.stats();
        assert_eq!(s.delta_grounds, 0, "full construction cannot delta-ground");
        assert_eq!(s.regrounds, 1);
    }

    #[test]
    fn transition_cache_hits_on_cyclic_appends() {
        // A stable two-element domain churned cyclically: after the
        // first lap every (residue, letter) pair recurs, so steady
        // state is all transition hits with no progression and no
        // phase-2 work.
        let sc = order_schema();
        let sub = sc.pred("Sub").unwrap();
        let fill = sc.pred("Fill").unwrap();
        let phi = parse(&sc, "forall x. G (Sub(x) -> Fill(x))").unwrap();
        // Template automata off: this test exercises the transition
        // cache specifically (the compiled path bypasses it).
        let mut e = Engine::new(
            sc.clone(),
            CheckOptions::builder().template_automata(false).build(),
        );
        e.add_constraint("covered", phi).unwrap();
        e.append(
            &Transaction::new()
                .insert(sub, vec![1])
                .insert(fill, vec![1]),
        )
        .unwrap();
        for _ in 0..5 {
            e.append(
                &Transaction::new()
                    .delete(sub, vec![1])
                    .delete(fill, vec![1]),
            )
            .unwrap();
            e.append(
                &Transaction::new()
                    .insert(sub, vec![1])
                    .insert(fill, vec![1]),
            )
            .unwrap();
        }
        let s = e.stats();
        assert!(s.cache.transition_hits >= 4, "{s:?}");
        assert!(s.cache.transition_misses >= 1, "{s:?}");
        assert!(s.encode_patched_atoms > 0, "incremental encoding ran");
        assert!(s.cache.letter_index_len > 0);
        assert_eq!(s.cache.transition_evictions, 0);
        // Hits skip progression entirely.
        assert!(s.progress_steps < s.appends + 1, "{s:?}");
    }

    #[test]
    fn hot_path_matches_rebuild_encoding() {
        // The same workload — including a mid-stream new element and a
        // final violation — through the hot configuration and through
        // the ablation (full re-encode, no transition cache) must
        // produce identical events and statuses.
        let sc = order_schema();
        let sub = sc.pred("Sub").unwrap();
        let phi = parse(&sc, "forall x. G (Sub(x) -> X G !Sub(x))").unwrap();
        let mut hot = Engine::new(sc.clone(), CheckOptions::default());
        let mut cold = Engine::new(
            sc.clone(),
            CheckOptions::builder()
                .encoding(Encoding::Rebuild)
                .transition_cache(false)
                .build(),
        );
        let h_id = hot.add_constraint("once", phi.clone()).unwrap();
        let c_id = cold.add_constraint("once", phi).unwrap();
        let txs = [
            Transaction::new().insert(sub, vec![1]),
            Transaction::new().delete(sub, vec![1]),
            Transaction::new(),
            Transaction::new().insert(sub, vec![2]), // new element: delta path
            Transaction::new().delete(sub, vec![2]),
            Transaction::new().insert(sub, vec![1]), // re-submission: violation
        ];
        for (i, tx) in txs.iter().enumerate() {
            let he = hot.append(tx).unwrap();
            let ce = cold.append(tx).unwrap();
            assert_eq!(he, ce, "append {i}");
            assert_eq!(hot.status(h_id), cold.status(c_id), "append {i}");
        }
        assert!(matches!(hot.status(h_id), Status::Violated { .. }));
        let hs = hot.stats();
        let cs = cold.stats();
        assert!(hs.encode_patched_atoms > 0);
        assert_eq!(cs.encode_patched_atoms, 0);
        assert_eq!(cs.cache.transition_hits + cs.cache.transition_misses, 0);
        // Identical groundings either way.
        assert_eq!(hs.letters, cs.letters);
        assert_eq!(hs.mappings, cs.mappings);
    }

    #[test]
    fn stats_track_timers_and_gauges() {
        let sc = order_schema();
        let sub = sc.pred("Sub").unwrap();
        let phi = parse(&sc, "forall x. G (Sub(x) -> X G !Sub(x))").unwrap();
        let mut e = Engine::new(sc.clone(), CheckOptions::default());
        e.add_constraint("once", phi).unwrap();
        e.append(&Transaction::new().insert(sub, vec![1])).unwrap();
        e.append(&Transaction::new().delete(sub, vec![1])).unwrap();
        let s = e.stats();
        assert_eq!(s.appends, 2);
        assert_eq!(s.grounds, 1);
        assert!(s.letters > 0);
        assert!(s.arena_nodes > 0);
        assert!(s.mappings > 0);
        // Under the default options both appends run compiled: table
        // lookups instead of symbolic progression steps.
        assert_eq!(s.automaton_appends, 2);
        assert!(s.templates_compiled >= 1);
        assert!(s.automaton_states > 0);
        assert!(s.automaton_insts >= 1);
        assert!(s.ground_time > Duration::ZERO);
        assert!(s.render().contains("delta regrounds"));
        assert!(s.render().contains("templates compiled"));
    }

    #[test]
    fn compiled_and_symbolic_paths_agree_end_to_end() {
        // The compiled path must be observationally identical to the
        // symbolic ablation on a workload that exercises violation,
        // delta re-grounding, and the steady state — and must actually
        // share templates across instantiations.
        let sc = order_schema();
        let sub = sc.pred("Sub").unwrap();
        let phi = parse(&sc, "forall x. G (Sub(x) -> X G !Sub(x))").unwrap();
        let mut auto = Engine::new(sc.clone(), CheckOptions::default());
        let mut sym = Engine::new(
            sc.clone(),
            CheckOptions::builder().template_automata(false).build(),
        );
        let a_id = auto.add_constraint("once", phi.clone()).unwrap();
        let s_id = sym.add_constraint("once", phi).unwrap();
        let txs = [
            Transaction::new().insert(sub, vec![1]),
            Transaction::new().insert(sub, vec![2]).delete(sub, vec![1]),
            Transaction::new().delete(sub, vec![2]),
            Transaction::new(),
            Transaction::new().insert(sub, vec![1]), // re-submission
        ];
        for (i, tx) in txs.iter().enumerate() {
            let ea = auto.append(tx).unwrap();
            let es = sym.append(tx).unwrap();
            assert_eq!(ea, es, "append {i}");
            assert_eq!(auto.status(a_id), sym.status(s_id), "append {i}");
        }
        assert!(matches!(auto.status(a_id), Status::Violated { .. }));
        let sa = auto.stats();
        let ss = sym.stats();
        assert!(sa.automaton_appends > 0, "{sa:?}");
        assert!(sa.automaton_steps > 0, "{sa:?}");
        assert_eq!(ss.automaton_appends, 0);
        // Sharing: both elements instantiate the same once-only
        // template shape.
        assert!(sa.templates_compiled < sa.automaton_insts, "{sa:?}");
        // Compiled appends never run per-append phase 2.
        assert!(sa.sat_checks <= ss.sat_checks, "{sa:?} vs {ss:?}");
        assert!(sa.automaton_compile_time > Duration::ZERO);
    }

    #[test]
    fn state_budget_exhaustion_falls_back_to_symbolic() {
        let sc = order_schema();
        let sub = sc.pred("Sub").unwrap();
        let phi = parse(&sc, "forall x. G (Sub(x) -> X G !Sub(x))").unwrap();
        let mut e = Engine::new(
            sc.clone(),
            CheckOptions::builder().automaton_state_budget(1).build(),
        );
        let id = e.add_constraint("once", phi).unwrap();
        e.append(&Transaction::new().insert(sub, vec![1])).unwrap();
        e.append(&Transaction::new().insert(sub, vec![1])).unwrap();
        assert!(matches!(e.status(id), Status::Violated { .. }));
        let s = e.stats();
        assert_eq!(s.templates_compiled, 0, "budget 1 cannot hold any run");
        assert_eq!(s.automaton_appends, 0);
        // The attempt itself is still accounted as build-phase time.
        assert!(s.automaton_compile_time > Duration::ZERO);
    }

    #[test]
    fn append_batch_matches_per_tx_appends() {
        // One batched sweep must be observationally identical to the
        // same transactions appended one at a time — per-transaction
        // events, final statuses, and the semantic counters — on both
        // the sequential path and the pooled path.
        let sc = order_schema();
        let sub = sc.pred("Sub").unwrap();
        let fill = sc.pred("Fill").unwrap();
        let txs = [
            Transaction::new()
                .insert(sub, vec![1])
                .insert(fill, vec![1]),
            Transaction::new()
                .insert(sub, vec![2])
                .insert(fill, vec![2]),
            Transaction::new().delete(fill, vec![2]), // violates "covered"
            Transaction::new().insert(sub, vec![1]),  // violates "once"
            Transaction::new().delete(sub, vec![2]),
        ];
        for threads in [Threads::Off, Threads::Fixed(4)] {
            let build = || {
                let mut e =
                    Engine::new(sc.clone(), CheckOptions::builder().threads(threads).build());
                let once = parse(&sc, "forall x. G (Sub(x) -> X G !Sub(x))").unwrap();
                let cov = parse(&sc, "forall x. G (Sub(x) -> Fill(x))").unwrap();
                let cap = parse(&sc, "G !Sub(999)").unwrap();
                let ids = vec![
                    e.add_constraint("once", once).unwrap(),
                    e.add_constraint("covered", cov).unwrap(),
                    e.add_constraint("cap", cap).unwrap(),
                ];
                (e, ids)
            };
            let (mut batched, b_ids) = build();
            let (mut serial, s_ids) = build();
            let be = batched.append_batch(&txs).unwrap();
            let se: Vec<_> = txs.iter().map(|tx| serial.append(tx).unwrap()).collect();
            assert_eq!(be, se, "{threads:?}");
            for (b, s) in b_ids.iter().zip(&s_ids) {
                assert_eq!(batched.status(*b), serial.status(*s), "{threads:?}");
            }
            let bs = batched.stats();
            let ss = serial.stats();
            assert_eq!(bs.appends, ss.appends, "{threads:?}");
            assert_eq!(bs.grounds, ss.grounds, "{threads:?}");
            assert_eq!(bs.delta_grounds, ss.delta_grounds, "{threads:?}");
            assert_eq!(bs.fast_appends, ss.fast_appends, "{threads:?}");
            assert_eq!(bs.sat_checks, ss.sat_checks, "{threads:?}");
            assert_eq!(bs.batches, 1, "{threads:?}");
            assert_eq!(bs.batched_txs, txs.len() as u64, "{threads:?}");
            assert_eq!(ss.batches, 0);
        }
    }

    #[test]
    fn append_batch_rejects_invalid_mid_batch_tx() {
        // `History::apply` validates before anything is swept; a bad
        // arity mid-batch errors out without stepping constraints.
        let sc = order_schema();
        let sub = sc.pred("Sub").unwrap();
        let mut e = Engine::new(sc.clone(), CheckOptions::default());
        e.add_constraint("once", parse(&sc, "G !Sub(999)").unwrap())
            .unwrap();
        let txs = [
            Transaction::new().insert(sub, vec![1]),
            Transaction::new().insert(sub, vec![1, 2]), // wrong arity
        ];
        assert!(e.append_batch(&txs).is_err());
    }

    #[test]
    fn pooled_sweep_counts_one_phase_per_dispatch() {
        // Satellite audit: the pooled constraint sweep forces inner
        // grounding to `Threads::Off`, so the parallel meter must see
        // exactly one phase per pool dispatch — re-grounding inside a
        // worker contributes busy time to that worker's slot, never a
        // nested phase or a double-counted fan-out.
        let sc = order_schema();
        let sub = sc.pred("Sub").unwrap();
        let phi = parse(&sc, "forall x. G (Sub(x) -> X G !Sub(x))").unwrap();
        let mut e = Engine::new(
            sc.clone(),
            CheckOptions::builder()
                .threads(Threads::Fixed(4))
                .regrounding(Regrounding::Full)
                .build(),
        );
        for name in ["a", "b", "c"] {
            e.add_constraint(name, phi.clone()).unwrap();
        }
        let n = 4u64;
        for i in 0..n {
            // A fresh element every append (the previous one cleared so
            // nothing violates): each pooled sweep re-grounds all three
            // constraints inside the workers.
            let mut tx = Transaction::new().insert(sub, vec![100 + i]);
            if i > 0 {
                tx = tx.delete(sub, vec![100 + i - 1]);
            }
            e.append(&tx).unwrap();
        }
        let s = e.stats();
        assert_eq!(s.par_phases, n, "one dispatch per append, no nesting");
        assert!(s.par_workers >= 2, "{s:?}");
        assert_eq!(s.pool_workers, 4, "{s:?}");
        assert!(
            s.regrounds >= 3 * (n - 1),
            "workers really re-ground: {s:?}"
        );
    }

    #[test]
    fn pooled_outcome_buffers_are_reused_across_dispatches() {
        // Satellite audit: the per-worker outcome buffers are allocated
        // once (on the first pooled dispatch) and reused thereafter —
        // `pool_buf_allocs` must not grow with the number of appends.
        let sc = order_schema();
        let sub = sc.pred("Sub").unwrap();
        let phi = parse(&sc, "forall x. G (Sub(x) -> X G !Sub(x))").unwrap();
        let mut e = Engine::new(
            sc.clone(),
            CheckOptions::builder().threads(Threads::Fixed(3)).build(),
        );
        for name in ["a", "b", "c", "d"] {
            e.add_constraint(name, phi.clone()).unwrap();
        }
        let mut tx = Transaction::new().insert(sub, vec![100]);
        e.append(&tx).unwrap();
        // Second append reaches the workload's full transaction width
        // (delete + insert), finishing the scratch-buffer warm-up that
        // `pool_buf_allocs` now also accounts for.
        tx = Transaction::new()
            .delete(sub, vec![100])
            .insert(sub, vec![101]);
        e.append(&tx).unwrap();
        let warm = e.stats().pool_buf_allocs;
        assert!(warm > 0, "{warm}");
        for i in 2..40u64 {
            tx = Transaction::new()
                .delete(sub, vec![100 + i - 1])
                .insert(sub, vec![100 + i]);
            e.append(&tx).unwrap();
        }
        let s = e.stats();
        assert_eq!(
            s.pool_buf_allocs, warm,
            "steady-state dispatches must not allocate outcome or scratch buffers"
        );
        assert!(s.par_phases >= 40, "the pooled path actually ran: {s:?}");
    }

    #[test]
    fn pooled_steady_appends_allocate_no_scratch_across_1k() {
        // ROADMAP item 1 remainder: `pool_buf_allocs` covers the
        // grounding scratch buffers too. A steady churn (known
        // elements only, no first-occurrence tuples) through the
        // pooled dispatch path must leave the counter flat across 1k
        // appends once the buffers have warmed up.
        let sc = order_schema();
        let sub = sc.pred("Sub").unwrap();
        let fill = sc.pred("Fill").unwrap();
        let phi = parse(&sc, "forall x. G (Sub(x) -> X G !Sub(x))").unwrap();
        let mut e = Engine::new(
            sc.clone(),
            CheckOptions::builder().threads(Threads::Fixed(2)).build(),
        );
        for name in ["a", "b"] {
            e.add_constraint(name, phi.clone()).unwrap();
        }
        // Warm-up: introduce the elements the churn cycles over (delta
        // re-grounds), retire the Sub tuples (a re-insert would
        // violate), and run one full churn cycle so every scratch
        // buffer and letter reaches steady state.
        e.append(&Transaction::new().insert(sub, vec![1])).unwrap();
        e.append(&Transaction::new().delete(sub, vec![1]).insert(sub, vec![2]))
            .unwrap();
        e.append(
            &Transaction::new()
                .delete(sub, vec![2])
                .insert(fill, vec![1]),
        )
        .unwrap();
        e.append(
            &Transaction::new()
                .insert(fill, vec![2])
                .delete(fill, vec![1]),
        )
        .unwrap();
        e.append(
            &Transaction::new()
                .insert(fill, vec![1])
                .delete(fill, vec![2]),
        )
        .unwrap();
        let warm = e.stats().pool_buf_allocs;
        for i in 0..1000u64 {
            let (on, off) = if i % 2 == 0 { (2, 1) } else { (1, 2) };
            let events = e
                .append(
                    &Transaction::new()
                        .insert(fill, vec![on])
                        .delete(fill, vec![off]),
                )
                .unwrap();
            assert!(events.is_empty(), "steady churn never violates");
        }
        let s = e.stats();
        assert_eq!(
            s.pool_buf_allocs, warm,
            "1k steady appends must not grow pool or grounding-scratch buffers: {s:?}"
        );
        assert!(
            s.fast_appends >= 2000,
            "churn stays on the fast path for both constraints: {s:?}"
        );
    }

    /// Churn workload for the budget tests: cycles `Sub` values so
    /// spilled states dedup, with a fresh element every 5th step so
    /// delta re-grounds replay through the cold tier.
    fn churn_tx(i: u64) -> Transaction {
        let sc = order_schema();
        let sub = sc.pred("Sub").unwrap();
        let mut tx = Transaction::new();
        if i > 0 {
            tx = tx.delete(sub, vec![i - 1]);
        }
        tx.insert(sub, vec![i])
    }

    #[test]
    fn truncation_defers_to_checkpoint_and_recovery_restores_horizon() {
        // With a store attached, truncation may never pass the newest
        // checkpoint — and a crash *between* a truncation and the next
        // checkpoint must recover: the snapshot covers every truncated
        // instant, the WAL holds the rest.
        let sc = order_schema();
        let path =
            std::env::temp_dir().join(format!("ticc-budget-crash-{}.wal", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let opts = CheckOptions::builder()
            .history_budget(HistoryBudget::Window(2))
            .durability(Durability::Wal)
            .build();
        let phi = parse(&sc, "forall x. G (Sub(x) -> X G !Sub(x))").unwrap();
        let (mut e, report) = Engine::open(&path, sc.clone(), opts).unwrap();
        assert!(!report.had_snapshot);
        e.add_constraint("once", phi.clone()).unwrap();
        for i in 0..8u64 {
            e.append(&churn_tx(i)).unwrap();
        }
        // No checkpoint yet → nothing may be truncated, however far
        // past the window the history has grown.
        assert_eq!(
            e.history().base(),
            0,
            "truncation must wait for a checkpoint"
        );
        e.checkpoint(&[]).unwrap();
        assert!(
            e.history().base() > 0,
            "checkpoint unlocks deferred truncation"
        );
        // Grow past the window again; the clamp holds truncation at
        // the checkpointed length while the WAL suffix accumulates.
        for i in 8..16u64 {
            e.append(&churn_tx(i)).unwrap();
        }
        assert!(
            e.history().base() <= 8,
            "never truncate past the checkpoint"
        );
        assert_eq!(e.history().len(), 16);
        drop(e); // crash: the truncated suffix exists only in the WAL

        let (e2, report) = Engine::open(&path, sc.clone(), opts).unwrap();
        assert!(report.had_snapshot);
        assert_eq!(report.replayed_txs, 8);
        assert_eq!(e2.history().len(), 16, "full horizon restored");
        // Oracle: a never-crashed unbounded twin over the same stream.
        let mut twin = Engine::new(sc.clone(), CheckOptions::default());
        let t_id = twin.add_constraint("once", phi).unwrap();
        for i in 0..16u64 {
            twin.append(&churn_tx(i)).unwrap();
        }
        let ids: Vec<_> = e2.constraints().collect();
        assert_eq!(ids.len(), 1);
        assert_eq!(e2.status(ids[0]), twin.status(t_id));
        let full = e2.full_history().unwrap();
        for t in 0..16 {
            assert_eq!(full.state(t), twin.history().state(t), "instant {t}");
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn add_constraint_after_truncation_sees_the_full_history() {
        // A constraint registered after instants were spilled grounds
        // over the materialised full history — its violation instant
        // must match a twin that never truncated.
        let sc = order_schema();
        let opts = CheckOptions::builder()
            .history_budget(HistoryBudget::Window(2))
            .build();
        let mut e = Engine::new(sc.clone(), opts);
        let mut twin = Engine::new(sc.clone(), CheckOptions::default());
        // `Sub(3)` occurs at t=3 and is gone by t=4; by t=12 that
        // instant is far behind the retention horizon.
        for i in 0..12u64 {
            e.append(&churn_tx(i)).unwrap();
            twin.append(&churn_tx(i)).unwrap();
        }
        assert!(e.history().base() > 3, "t=3 must be spilled for this test");
        let phi = parse(&sc, "G !Sub(3)").unwrap();
        let id = e.add_constraint("no3", phi.clone()).unwrap();
        let t_id = twin.add_constraint("no3", phi).unwrap();
        assert!(matches!(e.status(id), Status::Violated { .. }));
        assert_eq!(e.status(id), twin.status(t_id));
        // And the late constraint keeps monitoring correctly.
        for i in 12..15u64 {
            let ev = e.append(&churn_tx(i)).unwrap();
            let tv = twin.append(&churn_tx(i)).unwrap();
            assert_eq!(
                ev.iter().map(|v| (&v.name, v.at)).collect::<Vec<_>>(),
                tv.iter().map(|v| (&v.name, v.at)).collect::<Vec<_>>()
            );
        }
    }

    #[test]
    fn truncated_snapshot_round_trip_preserves_tier_shape() {
        // Snapshot v4 is fully self-contained: restoring a truncated
        // engine rebuilds the same (spilled, resident) split — the
        // restored process's footprint matches the writer's, and the
        // full history still materialises bit-identically.
        let sc = order_schema();
        let opts = CheckOptions::builder()
            .history_budget(HistoryBudget::Window(2))
            .build();
        let mut e = Engine::new(sc.clone(), opts);
        e.add_constraint(
            "once",
            parse(&sc, "forall x. G (Sub(x) -> X G !Sub(x))").unwrap(),
        )
        .unwrap();
        for i in 0..10u64 {
            e.append(&churn_tx(i)).unwrap();
        }
        let base = e.history().base();
        assert!(base > 0);
        let snap = e.snapshot_bytes(b"app");
        let (mut r, app) = Engine::restore_bytes(&snap, opts).unwrap();
        assert_eq!(app, b"app");
        assert_eq!(r.history().len(), e.history().len());
        assert_eq!(
            r.history().base(),
            base,
            "tier shape survives the round trip"
        );
        let es = e.stats().history;
        let rs = r.stats().history;
        assert_eq!(rs.resident_states, es.resident_states);
        assert_eq!(rs.spilled_instants, es.spilled_instants);
        assert_eq!(rs.spilled_distinct, es.spilled_distinct);
        let e_full = e.full_history().unwrap();
        let r_full = r.full_history().unwrap();
        for t in 0..e.history().len() {
            assert_eq!(e_full.state(t), r_full.state(t), "instant {t}");
        }
        // Both continue in lockstep past the restore.
        for i in 10..14u64 {
            assert_eq!(
                e.append(&churn_tx(i)).unwrap(),
                r.append(&churn_tx(i)).unwrap()
            );
        }
    }

    #[test]
    fn retention_floor_is_finite_for_pure_future_residues() {
        // Monitorable residues are pure-future (`progress` rejects past
        // operators), so the syntactic past-depth pass always finds a
        // finite floor and the budget can act. (`Since` would report
        // `PastDepth::Unbounded` and pin the history — covered by the
        // `window` unit tests.)
        let sc = order_schema();
        let opts = CheckOptions::builder()
            .history_budget(HistoryBudget::Window(2))
            .build();
        let mut e = Engine::new(sc.clone(), opts);
        let floor_before = e.retention_floor();
        assert_eq!(
            floor_before,
            Some(1),
            "no constraints → floor is the live state"
        );
        e.add_constraint(
            "once",
            parse(&sc, "forall x. G (Sub(x) -> X G !Sub(x))").unwrap(),
        )
        .unwrap();
        assert!(
            e.retention_floor().is_some(),
            "pure-future residues are bounded"
        );
        for i in 0..10u64 {
            e.append(&churn_tx(i)).unwrap();
        }
        assert!(e.history().base() > 0);
    }

    #[test]
    fn notion_flip_decompiles_transparently() {
        // A context compiled under Potential must fall back to the
        // symbolic residue when the notion flips to BadPrefix, and
        // still detect the (delayed) violation.
        let sc = order_schema();
        let sub = sc.pred("Sub").unwrap();
        let phi = parse(&sc, "forall x. G (Sub(x) -> X G !Sub(x))").unwrap();
        let mut e = Engine::new(sc.clone(), CheckOptions::default());
        let id = e.add_constraint("once", phi).unwrap();
        e.append(&Transaction::new().insert(sub, vec![1])).unwrap();
        assert!(e.stats().templates_compiled >= 1);
        e.set_notion(Notion::BadPrefix);
        e.append(&Transaction::new().insert(sub, vec![1])).unwrap();
        assert_eq!(e.stats().templates_compiled, 0, "decompiled on flip");
        // Under bad-prefix the duplicate makes the residue collapse to
        // ⊥ at this very step (G !Sub(1) progressed under Sub(1)).
        assert!(matches!(e.status(id), Status::Violated { .. }));
    }
}
