//! Free variables and capture-avoiding substitution.
//!
//! Used by the trigger engine (applying ground substitutions to a
//! trigger condition's free variables, Section 2) and by the grounder of
//! Theorem 4.1 (instantiating the external universal prefix).

use crate::formula::Formula;
use crate::term::Term;
use std::collections::{BTreeSet, HashMap};

/// The free variables of a formula, in name order.
pub fn free_vars(f: &Formula) -> BTreeSet<String> {
    let mut out = BTreeSet::new();
    collect_free(f, &mut BTreeSet::new(), &mut out);
    out
}

fn collect_free(f: &Formula, bound: &mut BTreeSet<String>, out: &mut BTreeSet<String>) {
    match f {
        Formula::Atom(a) => {
            for t in a.terms() {
                if let Term::Var(v) = t {
                    if !bound.contains(v) {
                        out.insert(v.clone());
                    }
                }
            }
        }
        Formula::Forall(v, body) | Formula::Exists(v, body) => {
            let fresh = bound.insert(v.clone());
            collect_free(body, bound, out);
            if fresh {
                bound.remove(v);
            }
        }
        _ => {
            for c in f.children() {
                collect_free(c, bound, out);
            }
        }
    }
}

/// A substitution mapping variable names to terms.
pub type Subst = HashMap<String, Term>;

/// Applies `theta` to the free occurrences of variables in `f`,
/// renaming bound variables where needed to avoid capture.
pub fn substitute(f: &Formula, theta: &Subst) -> Formula {
    if theta.is_empty() {
        return f.clone();
    }
    apply(f, theta)
}

fn term_subst(t: &Term, theta: &Subst) -> Term {
    match t {
        Term::Var(v) => theta.get(v).cloned().unwrap_or_else(|| t.clone()),
        _ => t.clone(),
    }
}

fn range_vars(theta: &Subst) -> BTreeSet<String> {
    theta
        .values()
        .filter_map(|t| t.as_var().map(str::to_owned))
        .collect()
}

fn fresh_name(base: &str, avoid: &BTreeSet<String>) -> String {
    let mut i = 0usize;
    loop {
        let candidate = format!("{base}_{i}");
        if !avoid.contains(&candidate) {
            return candidate;
        }
        i += 1;
    }
}

fn apply(f: &Formula, theta: &Subst) -> Formula {
    match f {
        Formula::True => Formula::True,
        Formula::False => Formula::False,
        Formula::Atom(a) => {
            let mut a = a.clone();
            for t in a.terms_mut() {
                *t = term_subst(t, theta);
            }
            Formula::Atom(a)
        }
        Formula::Not(g) => apply(g, theta).not(),
        Formula::And(a, b) => apply(a, theta).and(apply(b, theta)),
        Formula::Or(a, b) => apply(a, theta).or(apply(b, theta)),
        Formula::Implies(a, b) => apply(a, theta).implies(apply(b, theta)),
        Formula::Next(g) => apply(g, theta).next(),
        Formula::Prev(g) => apply(g, theta).prev(),
        Formula::Until(a, b) => apply(a, theta).until(apply(b, theta)),
        Formula::Since(a, b) => apply(a, theta).since(apply(b, theta)),
        Formula::Forall(v, body) => quantifier(v, body, theta, true),
        Formula::Exists(v, body) => quantifier(v, body, theta, false),
    }
}

fn quantifier(v: &str, body: &Formula, theta: &Subst, universal: bool) -> Formula {
    // The bound variable shadows any mapping for the same name.
    let mut inner: Subst = theta
        .iter()
        .filter(|(k, _)| k.as_str() != v)
        .map(|(k, t)| (k.clone(), t.clone()))
        .collect();
    // Capture: a substituted term mentions `v` as a free variable.
    let captured = range_vars(&inner).contains(v);
    let (bound_name, new_body);
    if captured {
        let mut avoid: BTreeSet<String> = free_vars(body);
        avoid.extend(range_vars(&inner));
        avoid.extend(inner.keys().cloned());
        let fresh = fresh_name(v, &avoid);
        inner.insert(v.to_owned(), Term::Var(fresh.clone()));
        bound_name = fresh;
        new_body = apply(body, &inner);
    } else {
        bound_name = v.to_owned();
        new_body = apply(body, &inner);
    }
    if universal {
        Formula::forall(bound_name, new_body)
    } else {
        Formula::exists(bound_name, new_body)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ticc_tdb::PredId;

    fn p(t: Term) -> Formula {
        Formula::pred(PredId(0), vec![t])
    }

    #[test]
    fn free_vars_respect_binding() {
        let f = Formula::forall("x", p(Term::var("x")).and(p(Term::var("y"))));
        let fv = free_vars(&f);
        assert_eq!(fv.into_iter().collect::<Vec<_>>(), vec!["y"]);
    }

    #[test]
    fn shadowing_inner_binder() {
        // ∀x (P(x) ∧ ∃x Q(x)): no free vars.
        let inner = Formula::exists("x", p(Term::var("x")));
        let f = Formula::forall("x", p(Term::var("x")).and(inner));
        assert!(free_vars(&f).is_empty());
    }

    #[test]
    fn ground_substitution() {
        let f = p(Term::var("x")).until(p(Term::var("y")));
        let theta: Subst = [("x".to_owned(), Term::Value(3))].into_iter().collect();
        let g = substitute(&f, &theta);
        assert_eq!(g, p(Term::Value(3)).until(p(Term::var("y"))));
    }

    #[test]
    fn bound_variables_shadow_substitution() {
        let f = Formula::forall("x", p(Term::var("x")));
        let theta: Subst = [("x".to_owned(), Term::Value(3))].into_iter().collect();
        assert_eq!(substitute(&f, &theta), f);
    }

    #[test]
    fn capture_avoided_by_renaming() {
        // (∀x P(y))[y := x] must not capture: becomes ∀x_0 P(x).
        let f = Formula::forall("x", p(Term::var("y")));
        let theta: Subst = [("y".to_owned(), Term::var("x"))].into_iter().collect();
        let g = substitute(&f, &theta);
        match g {
            Formula::Forall(v, body) => {
                assert_ne!(v, "x", "bound variable must be renamed");
                assert_eq!(*body, p(Term::var("x")));
            }
            other => panic!("expected forall, got {other:?}"),
        }
    }

    #[test]
    fn empty_substitution_is_identity() {
        let f = Formula::forall("x", p(Term::var("x")).eventually());
        assert_eq!(substitute(&f, &Subst::new()), f);
    }

    #[test]
    fn substitution_through_temporal_ops() {
        let f = p(Term::var("x")).prev().since(p(Term::var("x")).next());
        let theta: Subst = [("x".to_owned(), Term::Value(7))].into_iter().collect();
        let g = substitute(&f, &theta);
        assert_eq!(g, p(Term::Value(7)).prev().since(p(Term::Value(7)).next()));
    }
}
