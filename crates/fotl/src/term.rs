//! Terms and atomic formulas.
//!
//! A term is a constant or a variable (Section 2). We additionally allow
//! explicit universe elements (`Term::Value`) — they do not occur in user
//! constraints, but arise from ground substitutions (trigger firing) and
//! from the Turing-machine encodings of Section 3.
//!
//! Atomic formulas are `t1 = t2` or `p(t1, …, tr)`. The *extended
//! vocabulary* of Section 2 adds the interpreted, rigid symbols `≤`,
//! `succ` and `Zero`; they are not database predicates (their relations
//! are infinite) and are modelled as distinct atom kinds.

use ticc_tdb::{ConstId, PredId, Schema, Value};

/// A term: a variable, a constant symbol, or an explicit universe
/// element.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Term {
    /// A (rigid, global) variable.
    Var(String),
    /// A constant symbol of the schema.
    Const(ConstId),
    /// An explicit element of the universe `N`.
    Value(Value),
}

impl Term {
    /// Convenience constructor for a variable.
    pub fn var(name: impl Into<String>) -> Self {
        Term::Var(name.into())
    }

    /// The variable name, if this term is a variable.
    pub fn as_var(&self) -> Option<&str> {
        match self {
            Term::Var(v) => Some(v),
            _ => None,
        }
    }

    /// True if the term contains no variable.
    pub fn is_ground(&self) -> bool {
        !matches!(self, Term::Var(_))
    }
}

impl From<Value> for Term {
    fn from(v: Value) -> Self {
        Term::Value(v)
    }
}

/// An atomic formula.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Atom {
    /// Equality `t1 = t2` (interpreted, rigid, infinite relation).
    Eq(Term, Term),
    /// A database predicate applied to terms.
    Pred(PredId, Vec<Term>),
    /// Extended vocabulary: `t1 ≤ t2` on `N` (interpreted, rigid).
    Leq(Term, Term),
    /// Extended vocabulary: `succ(t1, t2)` i.e. `t2 = t1 + 1`.
    Succ(Term, Term),
    /// Extended vocabulary: `Zero(t)` i.e. `t = 0`.
    Zero(Term),
}

impl Atom {
    /// Iterates over the atom's terms.
    pub fn terms(&self) -> impl Iterator<Item = &Term> {
        let slice: Vec<&Term> = match self {
            Atom::Eq(a, b) | Atom::Leq(a, b) | Atom::Succ(a, b) => vec![a, b],
            Atom::Pred(_, ts) => ts.iter().collect(),
            Atom::Zero(t) => vec![t],
        };
        slice.into_iter()
    }

    /// Mutable access to the atom's terms.
    pub(crate) fn terms_mut(&mut self) -> Vec<&mut Term> {
        match self {
            Atom::Eq(a, b) | Atom::Leq(a, b) | Atom::Succ(a, b) => vec![a, b],
            Atom::Pred(_, ts) => ts.iter_mut().collect(),
            Atom::Zero(t) => vec![t],
        }
    }

    /// True if the atom uses the extended (interpreted) vocabulary
    /// `≤`/`succ`/`Zero`. Equality is counted separately since the paper
    /// always allows it.
    pub fn is_extended(&self) -> bool {
        matches!(self, Atom::Leq(_, _) | Atom::Succ(_, _) | Atom::Zero(_))
    }

    /// Checks predicate arities against a schema.
    pub fn arity_ok(&self, schema: &Schema) -> bool {
        match self {
            Atom::Pred(p, ts) => schema.arity(*p) == ts.len(),
            _ => true,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn term_helpers() {
        let x = Term::var("x");
        assert_eq!(x.as_var(), Some("x"));
        assert!(!x.is_ground());
        let v: Term = 5u64.into();
        assert!(v.is_ground());
        assert!(v.as_var().is_none());
        assert!(Term::Const(ConstId(0)).is_ground());
    }

    #[test]
    fn atom_terms_iteration() {
        let a = Atom::Pred(PredId(0), vec![Term::var("x"), Term::Value(1)]);
        assert_eq!(a.terms().count(), 2);
        let e = Atom::Eq(Term::var("x"), Term::var("y"));
        assert_eq!(e.terms().count(), 2);
        let z = Atom::Zero(Term::var("x"));
        assert_eq!(z.terms().count(), 1);
        assert!(z.is_extended());
        assert!(!e.is_extended());
    }

    #[test]
    fn arity_check() {
        let sc = Schema::builder().pred("E", 2).build();
        let e = sc.pred("E").unwrap();
        let good = Atom::Pred(e, vec![Term::Value(0), Term::Value(1)]);
        let bad = Atom::Pred(e, vec![Term::Value(0)]);
        assert!(good.arity_ok(&sc));
        assert!(!bad.arity_ok(&sc));
    }
}
