//! The paper's classification of FOTL formulas (Section 2).
//!
//! * `Σn`/`Πn` prenex classes of pure first-order formulas, via an
//!   explicit prenexing transformation;
//! * `tense(C)`: temporal formulas built from class-`C` first-order
//!   formulas with future temporal and propositional connectives, **no
//!   quantifier over a temporal subformula**;
//! * **external** quantifiers (the leading `∀*` prefix) vs **internal**
//!   quantifiers (inside maximal pure-FO subformulas);
//! * the headline classes: **biquantified** `∀*tense(Σ∞)`, **universal**
//!   `∀*tense(Π0)`, and `∀*tense(Σ1)` (single-internal-quantifier level),
//!   which respectively bound the decidable (Theorem 4.2) and
//!   undecidable (Theorem 3.2) sides of temporal integrity checking;
//! * a syntactic safety check on the tense structure (sufficient
//!   condition for defining a safety property, cf. Sistla's
//!   characterisation cited in §6).

use crate::formula::Formula;
use crate::subst::{substitute, Subst};
use crate::term::Term;

/// A quantifier kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Quant {
    /// Universal.
    Forall,
    /// Existential.
    Exists,
}

impl Quant {
    fn flip(self) -> Self {
        match self {
            Quant::Forall => Quant::Exists,
            Quant::Exists => Quant::Forall,
        }
    }
}

/// Prenex class of a pure first-order formula.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PrenexClass {
    /// No quantifiers: `Σ0 = Π0`.
    QuantifierFree,
    /// `Σn`: prefix starts with `∃`, `n` alternation blocks.
    Sigma(usize),
    /// `Πn`: prefix starts with `∀`, `n` alternation blocks.
    Pi(usize),
}

impl PrenexClass {
    /// The quantifier-alternation level `n` (0 for quantifier-free).
    pub fn level(self) -> usize {
        match self {
            PrenexClass::QuantifierFree => 0,
            PrenexClass::Sigma(n) | PrenexClass::Pi(n) => n,
        }
    }
}

/// Converts a **pure first-order** formula to prenex normal form,
/// returning the quantifier prefix (outermost first) and the
/// quantifier-free matrix. All bound variables are renamed apart (to
/// `$p0, $p1, …`, names the parser cannot produce).
///
/// # Panics
/// Panics if the formula contains temporal connectives.
pub fn prenex(f: &Formula) -> (Vec<(Quant, String)>, Formula) {
    assert!(
        f.is_pure_first_order(),
        "prenex is defined for pure first-order formulas"
    );
    let mut counter = 0usize;
    go_prenex(f, &mut counter)
}

fn go_prenex(f: &Formula, counter: &mut usize) -> (Vec<(Quant, String)>, Formula) {
    match f {
        Formula::True | Formula::False | Formula::Atom(_) => (vec![], f.clone()),
        Formula::Not(g) => {
            let (mut pfx, m) = go_prenex(g, counter);
            for (q, _) in &mut pfx {
                *q = q.flip();
            }
            (pfx, m.not())
        }
        Formula::Implies(a, b) => {
            let rewritten = a.as_ref().clone().not().or(b.as_ref().clone());
            go_prenex(&rewritten, counter)
        }
        Formula::And(a, b) | Formula::Or(a, b) => {
            let conj = matches!(f, Formula::And(_, _));
            let (pa, ma) = go_prenex(a, counter);
            let (pb, mb) = go_prenex(b, counter);
            // Bound variables were renamed apart by the recursion, so the
            // prefixes can simply be concatenated.
            let mut pfx = pa;
            pfx.extend(pb);
            let m = if conj { ma.and(mb) } else { ma.or(mb) };
            (pfx, m)
        }
        Formula::Forall(v, body) | Formula::Exists(v, body) => {
            let q = if matches!(f, Formula::Forall(_, _)) {
                Quant::Forall
            } else {
                Quant::Exists
            };
            let fresh = format!("$p{}", *counter);
            *counter += 1;
            let theta: Subst = [(v.clone(), Term::Var(fresh.clone()))]
                .into_iter()
                .collect();
            let renamed = substitute(body, &theta);
            let (mut pfx, m) = go_prenex(&renamed, counter);
            pfx.insert(0, (q, fresh));
            (pfx, m)
        }
        _ => unreachable!("temporal connective in pure first-order formula"),
    }
}

/// The `Σn`/`Πn` class of a pure first-order formula (via prenexing).
///
/// Returns `None` if the formula is not pure first-order.
pub fn prenex_class(f: &Formula) -> Option<PrenexClass> {
    if !f.is_pure_first_order() {
        return None;
    }
    let (pfx, _) = prenex(f);
    Some(class_of_prefix(&pfx))
}

fn class_of_prefix(pfx: &[(Quant, String)]) -> PrenexClass {
    let Some(&(first, _)) = pfx.first() else {
        return PrenexClass::QuantifierFree;
    };
    let mut blocks = 1usize;
    for w in pfx.windows(2) {
        if w[0].0 != w[1].0 {
            blocks += 1;
        }
    }
    match first {
        Quant::Exists => PrenexClass::Sigma(blocks),
        Quant::Forall => PrenexClass::Pi(blocks),
    }
}

/// Why a formula failed to be biquantified.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NotBiquantifiedReason {
    /// Past connectives occur (biquantified formulas are future-only).
    PastConnective,
    /// A quantifier has a temporal connective in its scope (other than
    /// the leading external `∀*`).
    QuantifierOverTemporal,
}

/// The classification result.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FormulaClass {
    /// `∀* tense(Π0)`: no internal quantifiers. Temporal integrity
    /// checking is decidable in exponential time (Theorem 4.2).
    Universal {
        /// Number of external universal quantifiers (`k`).
        external: usize,
    },
    /// `∀* tense(Σn)` with internal quantifiers present. Already with a
    /// *single* internal quantifier (`internal_level == 1`,
    /// `internal_quantifiers == 1`) checking is Π⁰₂-complete
    /// (Theorem 3.2).
    Biquantified {
        /// Number of external universal quantifiers (`k`).
        external: usize,
        /// Maximum `Σn`/`Πn` alternation level over the maximal pure-FO
        /// subformulas.
        internal_level: usize,
        /// Total number of internal quantifier occurrences.
        internal_quantifiers: usize,
    },
    /// Outside the biquantified fragment.
    NotBiquantified(NotBiquantifiedReason),
}

/// Strips the leading external `∀` prefix, returning the variable names
/// and the body.
pub fn external_prefix(f: &Formula) -> (Vec<&str>, &Formula) {
    let mut vars = Vec::new();
    let mut cur = f;
    while let Formula::Forall(v, body) = cur {
        vars.push(v.as_str());
        cur = body;
    }
    (vars, cur)
}

/// Classifies a closed FOTL formula against the paper's hierarchy.
pub fn classify(f: &Formula) -> FormulaClass {
    if !f.is_future() {
        return FormulaClass::NotBiquantified(NotBiquantifiedReason::PastConnective);
    }
    let (external, body) = external_prefix(f);
    let mut levels: Vec<PrenexClass> = Vec::new();
    let mut quantifiers = 0usize;
    if !scan_tense(body, &mut levels, &mut quantifiers) {
        return FormulaClass::NotBiquantified(NotBiquantifiedReason::QuantifierOverTemporal);
    }
    let internal_level = levels.iter().map(|c| c.level()).max().unwrap_or(0);
    if internal_level == 0 && quantifiers == 0 {
        FormulaClass::Universal {
            external: external.len(),
        }
    } else {
        FormulaClass::Biquantified {
            external: external.len(),
            internal_level,
            internal_quantifiers: quantifiers,
        }
    }
}

/// Walks the tense structure; for each *maximal pure-FO subformula*
/// containing quantifiers, records its prenex class. Returns false if a
/// quantifier is found above a temporal connective.
fn scan_tense(f: &Formula, levels: &mut Vec<PrenexClass>, quantifiers: &mut usize) -> bool {
    if f.is_pure_first_order() {
        let q = f.quantifier_count();
        if q > 0 {
            *quantifiers += q;
            levels.push(prenex_class(f).expect("pure FO"));
        }
        return true;
    }
    match f {
        Formula::Forall(_, _) | Formula::Exists(_, _) => false, // quantifier over temporal
        _ => f
            .children()
            .iter()
            .all(|c| scan_tense(c, levels, quantifiers)),
    }
}

/// Syntactic safety of the *tense structure*: treating maximal pure-FO
/// subformulas as atoms, the formula's NNF contains no `until` (only
/// `□`/`release`/`○`/booleans). A universal formula passing this check
/// defines a safety property. This mirrors
/// `ticc_ptl::safety::is_syntactically_safe` at the first-order level.
pub fn is_syntactically_safe(f: &Formula) -> bool {
    fn until_free(f: &Formula, positive: bool) -> bool {
        if f.is_pure_first_order() {
            return true;
        }
        match f {
            Formula::Not(g) => until_free(g, !positive),
            Formula::And(a, b) | Formula::Or(a, b) => {
                until_free(a, positive) && until_free(b, positive)
            }
            Formula::Implies(a, b) => until_free(a, !positive) && until_free(b, positive),
            Formula::Next(g) | Formula::Forall(_, g) | Formula::Exists(_, g) => {
                until_free(g, positive)
            }
            Formula::Until(a, b) => {
                if positive {
                    false
                } else {
                    // ¬(a U b) ≡ nnf(¬a) R nnf(¬b): both arguments keep
                    // the negative polarity.
                    until_free(a, false) && until_free(b, false)
                }
            }
            // Past connectives: □(past) is safety (Prop. 2.1); treat any
            // past subformula as an opaque atom.
            Formula::Prev(_) | Formula::Since(_, _) => f.is_past(),
            Formula::True | Formula::False | Formula::Atom(_) => true,
        }
    }
    until_free(f, true)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ticc_tdb::{PredId, Schema};

    fn p(t: Term) -> Formula {
        Formula::pred(PredId(0), vec![t])
    }

    #[test]
    fn prenex_of_nested() {
        // ¬∃x (P(x) ∧ ∀y P(y))  ⇒  ∀x ∃y ¬(P(x) ∧ P(y))
        let inner = Formula::forall("y", p(Term::var("y")));
        let f = Formula::exists("x", p(Term::var("x")).and(inner)).not();
        let (pfx, m) = prenex(&f);
        assert_eq!(pfx.len(), 2);
        assert_eq!(pfx[0].0, Quant::Forall);
        assert_eq!(pfx[1].0, Quant::Exists);
        assert!(m.is_quantifier_free());
        assert_eq!(prenex_class(&f), Some(PrenexClass::Pi(2)));
    }

    #[test]
    fn prenex_class_basics() {
        let qf = Formula::eq(Term::var("x"), Term::var("y"));
        assert_eq!(prenex_class(&qf), Some(PrenexClass::QuantifierFree));
        let e = Formula::exists("x", p(Term::var("x")));
        assert_eq!(prenex_class(&e), Some(PrenexClass::Sigma(1)));
        let a = Formula::forall("x", p(Term::var("x")));
        assert_eq!(prenex_class(&a), Some(PrenexClass::Pi(1)));
        // Same-block quantifiers do not add alternations.
        let ee = Formula::exists("x", Formula::exists("y", qf.clone()));
        assert_eq!(prenex_class(&ee), Some(PrenexClass::Sigma(1)));
        // Temporal formula: not pure FO.
        assert_eq!(prenex_class(&p(Term::var("x")).eventually()), None);
    }

    #[test]
    fn prenex_of_conjunction_renames_apart() {
        let e1 = Formula::exists("x", p(Term::var("x")));
        let e2 = Formula::exists("x", p(Term::var("x")).not());
        let f = e1.and(e2);
        let (pfx, m) = prenex(&f);
        assert_eq!(pfx.len(), 2);
        assert_ne!(pfx[0].1, pfx[1].1, "bound vars must be renamed apart");
        assert!(m.is_quantifier_free());
    }

    #[test]
    fn paper_examples_are_universal() {
        let sc = Schema::builder().pred("Sub", 1).pred("Fill", 1).build();
        let sub = |v: &str| Formula::pred(sc.pred("Sub").unwrap(), vec![Term::var(v)]);
        let fill = |v: &str| Formula::pred(sc.pred("Fill").unwrap(), vec![Term::var(v)]);

        // ∀x □(Sub(x) ⇒ ○□¬Sub(x))
        let once_only = Formula::forall(
            "x",
            sub("x").implies(sub("x").not().always().next()).always(),
        );
        assert_eq!(
            classify(&once_only),
            FormulaClass::Universal { external: 1 }
        );

        // The FIFO constraint (two external ∀, quantifier-free matrix).
        let fifo_body = Formula::neq(Term::var("x"), Term::var("y"))
            .and(sub("x"))
            .and(
                fill("x")
                    .not()
                    .until(sub("y").and(fill("x").not().until(fill("y").and(fill("x").not())))),
            )
            .not()
            .always();
        let fifo = Formula::forall_many(["x", "y"], fifo_body);
        assert_eq!(classify(&fifo), FormulaClass::Universal { external: 2 });
    }

    #[test]
    fn w2_is_biquantified_sigma1() {
        // W2 ≡ □◇∃x W(x): internal single existential quantifier.
        let sc = Schema::builder().pred("W", 1).build();
        let w = Formula::pred(sc.pred("W").unwrap(), vec![Term::var("x")]);
        let w2 = Formula::exists("x", w).eventually().always();
        match classify(&w2) {
            FormulaClass::Biquantified {
                external,
                internal_level,
                internal_quantifiers,
            } => {
                assert_eq!(external, 0);
                assert_eq!(internal_level, 1);
                assert_eq!(internal_quantifiers, 1);
            }
            other => panic!("expected biquantified, got {other:?}"),
        }
    }

    #[test]
    fn quantifier_over_temporal_rejected() {
        // ∃x ◇P(x) with the ∃ *inside* a temporal context:
        // □∃x◇P(x) — the ∃ scopes over ◇: not biquantified.
        let f = Formula::exists("x", p(Term::var("x")).eventually()).always();
        assert_eq!(
            classify(&f),
            FormulaClass::NotBiquantified(NotBiquantifiedReason::QuantifierOverTemporal)
        );
    }

    #[test]
    fn external_exists_is_internal_if_pure_and_rejected_if_temporal() {
        // ∃x ◇P(x) at top level: quantifier over temporal — rejected.
        let f = Formula::exists("x", p(Term::var("x")).eventually());
        assert!(matches!(classify(&f), FormulaClass::NotBiquantified(_)));
        // ∃x P(x) at top level: a pure-FO Σ1 component — biquantified
        // with zero external quantifiers.
        let g = Formula::exists("x", p(Term::var("x")));
        assert!(matches!(
            classify(&g),
            FormulaClass::Biquantified {
                external: 0,
                internal_level: 1,
                ..
            }
        ));
    }

    #[test]
    fn past_rejected() {
        let f = Formula::forall("x", p(Term::var("x")).once());
        assert_eq!(
            classify(&f),
            FormulaClass::NotBiquantified(NotBiquantifiedReason::PastConnective)
        );
    }

    #[test]
    fn safety_syntactic_check() {
        let x = || p(Term::var("x"));
        // □(P ⇒ ○¬P) is syntactically safe.
        let f = Formula::forall("x", x().implies(x().not().next()).always());
        assert!(is_syntactically_safe(&f));
        // ◇P is not.
        let g = Formula::forall("x", x().eventually());
        assert!(!is_syntactically_safe(&g));
        // □◇P is not.
        let h = x().eventually().always();
        assert!(!is_syntactically_safe(&h));
        // The FIFO constraint *is* (¬(… until …) under □).
        let u = x().until(x());
        let fifo_shape = Formula::forall("x", u.not().always());
        assert!(is_syntactically_safe(&fifo_shape));
        // □(past) is safety by Proposition 2.1.
        let past = x().once().always();
        assert!(is_syntactically_safe(&past));
    }

    #[test]
    fn external_prefix_stripping() {
        let body = p(Term::var("x")).always();
        let f = Formula::forall_many(["x", "y", "z"], body.clone());
        let (vars, b) = external_prefix(&f);
        assert_eq!(vars, vec!["x", "y", "z"]);
        assert_eq!(b, &body);
    }
}
