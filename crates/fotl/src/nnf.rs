//! Negation normal form for FOTL.
//!
//! Pushes negations down to atoms across the boolean connectives, the
//! quantifiers (`¬∀ = ∃¬`, `¬∃ = ∀¬`) and the temporal connectives. The
//! core syntax has no `release`/`trigger` duals, so the temporal duals
//! are expressed by the standard identities over `until`/`since`:
//!
//! * `¬○A = ○¬A` (time is infinite, `○` is self-dual — the paper's
//!   semantics);
//! * `¬(A U B) = (¬B) U (¬A ∧ ¬B) ∨ □¬B`, here kept simply as
//!   `¬(A U B)` with the negation *re-expressed* via the release
//!   equivalence `¬(A U B) = ¬B W (¬A ∧ ¬B)`… — to stay inside the
//!   paper's connective set we instead leave a single negation on
//!   `until`/`since` nodes (they become *negated-temporal literals*),
//!   which is exactly the shape the grounding consumes (the PTL layer
//!   finishes the job with its own `Release`-based NNF).
//!
//! The useful guarantees: after [`nnf`], negation appears only directly
//! above atoms, `until` nodes and `since` nodes; `⇒` is eliminated; the
//! result is semantically equivalent (same satisfaction relation,
//! Section 2).

use crate::formula::Formula;

/// Converts to negation normal form (negations only on atoms and
/// `until`/`since` nodes; implications eliminated).
pub fn nnf(f: &Formula) -> Formula {
    go(f, false)
}

fn go(f: &Formula, neg: bool) -> Formula {
    match (f, neg) {
        (Formula::True, false) | (Formula::False, true) => Formula::True,
        (Formula::True, true) | (Formula::False, false) => Formula::False,
        (Formula::Atom(_), false) => f.clone(),
        (Formula::Atom(_), true) => f.clone().not(),
        (Formula::Not(g), n) => go(g, !n),
        (Formula::And(a, b), false) | (Formula::Or(a, b), true) => go(a, neg).and(go(b, neg)),
        (Formula::And(a, b), true) | (Formula::Or(a, b), false) => go(a, neg).or(go(b, neg)),
        (Formula::Implies(a, b), false) => go(a, true).or(go(b, false)),
        (Formula::Implies(a, b), true) => go(a, false).and(go(b, true)),
        (Formula::Forall(v, g), false) | (Formula::Exists(v, g), true) => {
            Formula::forall(v.clone(), go(g, neg))
        }
        (Formula::Forall(v, g), true) | (Formula::Exists(v, g), false) => {
            Formula::exists(v.clone(), go(g, neg))
        }
        (Formula::Next(g), n) => go(g, n).next(),
        (Formula::Until(a, b), false) => go(a, false).until(go(b, false)),
        (Formula::Until(a, b), true) => go(a, false).until(go(b, false)).not(),
        (Formula::Prev(g), false) => go(g, false).prev(),
        // ¬●A at t: t = 0 or A false at t-1 — not expressible without a
        // weak-previous; keep the literal.
        (Formula::Prev(g), true) => go(g, false).prev().not(),
        (Formula::Since(a, b), false) => go(a, false).since(go(b, false)),
        (Formula::Since(a, b), true) => go(a, false).since(go(b, false)).not(),
    }
}

/// True if negations appear only directly above atoms or
/// `until`/`since`/`●` nodes and no implication remains.
pub fn is_nnf(f: &Formula) -> bool {
    match f {
        Formula::Implies(_, _) => false,
        Formula::Not(g) => {
            matches!(
                g.as_ref(),
                Formula::Atom(_) | Formula::Until(_, _) | Formula::Since(_, _) | Formula::Prev(_)
            ) && g.children().iter().all(|c| is_nnf(c))
        }
        _ => f.children().iter().all(|c| is_nnf(c)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;
    use std::sync::Arc;
    use ticc_tdb::Schema;

    fn schema() -> Arc<Schema> {
        Schema::builder().pred("P", 1).pred("Q", 1).build()
    }

    #[test]
    fn pushes_through_quantifiers() {
        let sc = schema();
        let f = parse(&sc, "!(forall x. P(x))").unwrap();
        let g = nnf(&f);
        let expect = parse(&sc, "exists x. !P(x)").unwrap();
        assert_eq!(g, expect);
        assert!(is_nnf(&g));
    }

    #[test]
    fn eliminates_implication() {
        let sc = schema();
        let f = parse(&sc, "P(x) -> Q(x)").unwrap();
        let g = nnf(&f);
        let expect = parse(&sc, "!P(x) | Q(x)").unwrap();
        assert_eq!(g, expect);
    }

    #[test]
    fn negation_stops_at_until() {
        let sc = schema();
        let f = parse(&sc, "!((P(x) -> Q(x)) U Q(y))").unwrap();
        let g = nnf(&f);
        assert!(is_nnf(&g), "{g:?}");
        // The until argument is normalised but the outer ¬ remains.
        let expect = parse(&sc, "!((!P(x) | Q(x)) U Q(y))").unwrap();
        assert_eq!(g, expect);
    }

    #[test]
    fn double_negation_vanishes() {
        let sc = schema();
        let f = parse(&sc, "!!(P(x) & !!Q(x))").unwrap();
        let g = nnf(&f);
        let expect = parse(&sc, "P(x) & Q(x)").unwrap();
        assert_eq!(g, expect);
    }

    #[test]
    fn next_is_self_dual() {
        let sc = schema();
        let f = parse(&sc, "!(X P(x))").unwrap();
        let g = nnf(&f);
        let expect = parse(&sc, "X !P(x)").unwrap();
        assert_eq!(g, expect);
    }

    #[test]
    fn constants_fold() {
        let sc = schema();
        let f = parse(&sc, "!(true & P(x))").unwrap();
        let g = nnf(&f);
        let expect = parse(&sc, "false | !P(x)").unwrap();
        assert_eq!(g, expect);
    }

    #[test]
    fn nnf_preserves_finite_history_semantics() {
        use crate::eval::{eval, EvalOptions};
        use ticc_tdb::{History, State};
        let sc = schema();
        let mut h = History::new(sc.clone());
        for vs in [&[1u64, 2][..], &[2], &[1]] {
            let mut s = State::empty(sc.clone());
            for &v in vs {
                s.insert_named("P", vec![v]).unwrap();
            }
            h.push_state(s);
        }
        // `¬○A = ○¬A` holds on infinite time (the paper's semantics) but
        // not at the final position of a finite trace under strong next,
        // so ○-containing cases are only compared away from the edge.
        for (src, last_safe_t) in [
            ("!(forall x. P(x) -> X P(x))", 1),
            ("!((exists y. P(y)) & !P(1))", 2),
            ("forall x. !(P(x) U Q(x))", 2),
            ("!(Y P(1) | (P(2) S P(1)))", 2),
        ] {
            let f = parse(&sc, src).unwrap();
            let g = nnf(&f);
            assert!(is_nnf(&g), "{src}");
            for t in 0..=last_safe_t {
                let v = Default::default();
                assert_eq!(
                    eval(&h, &f, t, &v, &EvalOptions::default()).unwrap(),
                    eval(&h, &g, t, &v, &EvalOptions::default()).unwrap(),
                    "{src} at t={t}"
                );
            }
        }
    }
}
