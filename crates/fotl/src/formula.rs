//! FOTL formulas.
//!
//! The core connectives follow Section 2 of the paper exactly: boolean
//! `∨ ∧ ¬ ⇒`, quantifiers `∃ ∀`, future `○`/`until`, past `●`/`since`.
//! The derived operators `◇ □ ◈ ▣` are provided as constructors that
//! desugar to the core (mirroring the paper's definitions), so every
//! algorithm only handles the core.

use crate::term::{Atom, Term};
use ticc_tdb::{PredId, Schema};

/// A first-order temporal formula.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Formula {
    /// The constant true.
    True,
    /// The constant false.
    False,
    /// An atomic formula.
    Atom(Atom),
    /// Negation.
    Not(Box<Formula>),
    /// Conjunction.
    And(Box<Formula>, Box<Formula>),
    /// Disjunction.
    Or(Box<Formula>, Box<Formula>),
    /// Implication.
    Implies(Box<Formula>, Box<Formula>),
    /// Universal quantification over the (infinite) universe.
    Forall(String, Box<Formula>),
    /// Existential quantification over the (infinite) universe.
    Exists(String, Box<Formula>),
    /// Next time.
    Next(Box<Formula>),
    /// `A until B`.
    Until(Box<Formula>, Box<Formula>),
    /// Previous time (strong).
    Prev(Box<Formula>),
    /// `A since B`.
    Since(Box<Formula>, Box<Formula>),
}

impl Formula {
    /// An atomic database-predicate formula.
    pub fn pred(p: PredId, terms: Vec<Term>) -> Self {
        Formula::Atom(Atom::Pred(p, terms))
    }

    /// Equality `t1 = t2`.
    pub fn eq(a: Term, b: Term) -> Self {
        Formula::Atom(Atom::Eq(a, b))
    }

    /// Inequality `t1 ≠ t2`.
    pub fn neq(a: Term, b: Term) -> Self {
        Formula::eq(a, b).not()
    }

    /// Negation.
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> Self {
        Formula::Not(Box::new(self))
    }

    /// Conjunction.
    pub fn and(self, other: Formula) -> Self {
        Formula::And(Box::new(self), Box::new(other))
    }

    /// Disjunction.
    pub fn or(self, other: Formula) -> Self {
        Formula::Or(Box::new(self), Box::new(other))
    }

    /// Implication.
    pub fn implies(self, other: Formula) -> Self {
        Formula::Implies(Box::new(self), Box::new(other))
    }

    /// Conjunction of many conjuncts (`⊤` when empty).
    pub fn and_all(items: impl IntoIterator<Item = Formula>) -> Self {
        let mut iter = items.into_iter();
        let Some(first) = iter.next() else {
            return Formula::True;
        };
        iter.fold(first, |acc, f| acc.and(f))
    }

    /// Disjunction of many disjuncts (`⊥` when empty).
    pub fn or_all(items: impl IntoIterator<Item = Formula>) -> Self {
        let mut iter = items.into_iter();
        let Some(first) = iter.next() else {
            return Formula::False;
        };
        iter.fold(first, |acc, f| acc.or(f))
    }

    /// Universal quantification.
    pub fn forall(var: impl Into<String>, body: Formula) -> Self {
        Formula::Forall(var.into(), Box::new(body))
    }

    /// Existential quantification.
    pub fn exists(var: impl Into<String>, body: Formula) -> Self {
        Formula::Exists(var.into(), Box::new(body))
    }

    /// `∀ x1 … xk . body`.
    pub fn forall_many<S: Into<String>>(vars: impl IntoIterator<Item = S>, body: Formula) -> Self {
        let vars: Vec<String> = vars.into_iter().map(Into::into).collect();
        vars.into_iter()
            .rev()
            .fold(body, |acc, v| Formula::forall(v, acc))
    }

    /// Next time `○A`.
    pub fn next(self) -> Self {
        Formula::Next(Box::new(self))
    }

    /// `A until B`.
    pub fn until(self, other: Formula) -> Self {
        Formula::Until(Box::new(self), Box::new(other))
    }

    /// Sometime in the future `◇A ≡ ⊤ until A` (paper's definition).
    pub fn eventually(self) -> Self {
        Formula::True.until(self)
    }

    /// Always in the future `□A ≡ ¬◇¬A`.
    pub fn always(self) -> Self {
        self.not().eventually().not()
    }

    /// Previous time `●A`.
    pub fn prev(self) -> Self {
        Formula::Prev(Box::new(self))
    }

    /// `A since B`.
    pub fn since(self, other: Formula) -> Self {
        Formula::Since(Box::new(self), Box::new(other))
    }

    /// Sometime in the past `◈A ≡ ⊤ since A`.
    pub fn once(self) -> Self {
        Formula::True.since(self)
    }

    /// Always in the past `▣A ≡ ¬◈¬A`.
    pub fn historically(self) -> Self {
        self.not().once().not()
    }

    /// Bounded eventually `◇≤k A ≡ A ∨ ○A ∨ … ∨ ○^k A` — the metric
    /// operator of the real-time extensions the paper's Section 5 points
    /// to (Past Metric FOTL), desugared to a `○`-chain so it stays in
    /// the core syntax. Note the bounded form is syntactically safe,
    /// unlike unbounded `◇`.
    pub fn eventually_within(self, k: usize) -> Self {
        let mut acc = self.clone();
        let mut step = self;
        for _ in 0..k {
            step = step.next();
            acc = acc.or(step.clone());
        }
        acc
    }

    /// Bounded always `□≤k A ≡ A ∧ ○A ∧ … ∧ ○^k A`.
    pub fn always_within(self, k: usize) -> Self {
        let mut acc = self.clone();
        let mut step = self;
        for _ in 0..k {
            step = step.next();
            acc = acc.and(step.clone());
        }
        acc
    }

    /// Bounded once `◈≤k A ≡ A ∨ ●A ∨ … ∨ ●^k A` (past metric).
    pub fn once_within(self, k: usize) -> Self {
        let mut acc = self.clone();
        let mut step = self;
        for _ in 0..k {
            step = step.prev();
            acc = acc.or(step.clone());
        }
        acc
    }

    /// Immediate subformulas.
    pub fn children(&self) -> Vec<&Formula> {
        match self {
            Formula::True | Formula::False | Formula::Atom(_) => vec![],
            Formula::Not(a)
            | Formula::Forall(_, a)
            | Formula::Exists(_, a)
            | Formula::Next(a)
            | Formula::Prev(a) => vec![a],
            Formula::And(a, b)
            | Formula::Or(a, b)
            | Formula::Implies(a, b)
            | Formula::Until(a, b)
            | Formula::Since(a, b) => vec![a, b],
        }
    }

    /// Tree size (`|φ|` in the paper's bounds).
    pub fn size(&self) -> usize {
        1 + self.children().iter().map(|c| c.size()).sum::<usize>()
    }

    /// True if no temporal connective occurs (a *pure first-order*
    /// formula).
    pub fn is_pure_first_order(&self) -> bool {
        match self {
            Formula::Next(_) | Formula::Until(_, _) | Formula::Prev(_) | Formula::Since(_, _) => {
                false
            }
            _ => self.children().iter().all(|c| c.is_pure_first_order()),
        }
    }

    /// True if only future temporal connectives occur (a *future
    /// temporal formula*).
    pub fn is_future(&self) -> bool {
        match self {
            Formula::Prev(_) | Formula::Since(_, _) => false,
            _ => self.children().iter().all(|c| c.is_future()),
        }
    }

    /// True if only past temporal connectives occur (a *past temporal
    /// formula*).
    pub fn is_past(&self) -> bool {
        match self {
            Formula::Next(_) | Formula::Until(_, _) => false,
            _ => self.children().iter().all(|c| c.is_past()),
        }
    }

    /// True if no quantifier occurs.
    pub fn is_quantifier_free(&self) -> bool {
        match self {
            Formula::Forall(_, _) | Formula::Exists(_, _) => false,
            _ => self.children().iter().all(|c| c.is_quantifier_free()),
        }
    }

    /// True if the formula uses the extended vocabulary (`≤`, `succ`,
    /// `Zero`).
    pub fn uses_extended_vocabulary(&self) -> bool {
        match self {
            Formula::Atom(a) => a.is_extended(),
            _ => self.children().iter().any(|c| c.uses_extended_vocabulary()),
        }
    }

    /// Checks every predicate atom's arity against the schema; returns
    /// the first offending atom if any.
    pub fn check_arities(&self, schema: &Schema) -> Result<(), Atom> {
        if let Formula::Atom(a) = self {
            if !a.arity_ok(schema) {
                return Err(a.clone());
            }
        }
        for c in self.children() {
            c.check_arities(schema)?;
        }
        Ok(())
    }

    /// Maximum quantifier nesting depth.
    pub fn quantifier_depth(&self) -> usize {
        let inner = self
            .children()
            .iter()
            .map(|c| c.quantifier_depth())
            .max()
            .unwrap_or(0);
        match self {
            Formula::Forall(_, _) | Formula::Exists(_, _) => inner + 1,
            _ => inner,
        }
    }

    /// Total number of quantifier occurrences.
    pub fn quantifier_count(&self) -> usize {
        let inner: usize = self.children().iter().map(|c| c.quantifier_count()).sum();
        match self {
            Formula::Forall(_, _) | Formula::Exists(_, _) => inner + 1,
            _ => inner,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ticc_tdb::Schema;

    fn sub_x(schema: &Schema) -> Formula {
        Formula::pred(schema.pred("Sub").unwrap(), vec![Term::var("x")])
    }

    #[test]
    fn paper_example_submitted_once() {
        // ∀x □(Sub(x) ⇒ ○□¬Sub(x))
        let sc = Schema::builder().pred("Sub", 1).build();
        let sub = sub_x(&sc);
        let f = Formula::forall("x", sub.clone().implies(sub.not().always().next()).always());
        assert!(f.is_future());
        assert!(!f.is_past());
        assert!(!f.is_pure_first_order());
        assert!(!f.is_quantifier_free());
        assert_eq!(f.quantifier_count(), 1);
        assert_eq!(f.quantifier_depth(), 1);
        assert!(f.check_arities(&sc).is_ok());
        assert!(!f.uses_extended_vocabulary());
    }

    #[test]
    fn sugar_desugars_to_core() {
        let p = Formula::pred(PredId(0), vec![Term::var("x")]);
        let ev = p.clone().eventually();
        assert_eq!(ev, Formula::True.until(p.clone()));
        let al = p.clone().always();
        assert_eq!(al, Formula::True.until(p.clone().not()).not());
        let on = p.clone().once();
        assert_eq!(on, Formula::True.since(p));
    }

    #[test]
    fn and_or_all() {
        assert_eq!(Formula::and_all([]), Formula::True);
        assert_eq!(Formula::or_all([]), Formula::False);
        let p = Formula::pred(PredId(0), vec![Term::Value(0)]);
        assert_eq!(Formula::and_all([p.clone()]), p);
    }

    #[test]
    fn forall_many_order() {
        let body = Formula::eq(Term::var("x"), Term::var("y"));
        let f = Formula::forall_many(["x", "y"], body.clone());
        assert_eq!(f, Formula::forall("x", Formula::forall("y", body)));
        assert_eq!(f.quantifier_depth(), 2);
    }

    #[test]
    fn size_counts_nodes() {
        let p = Formula::pred(PredId(0), vec![Term::var("x")]);
        let f = p.clone().and(p.not());
        assert_eq!(f.size(), 4); // And, Pred, Not, Pred
    }

    #[test]
    fn arity_violation_detected() {
        let sc = Schema::builder().pred("E", 2).build();
        let bad = Formula::pred(sc.pred("E").unwrap(), vec![Term::var("x")]);
        let f = Formula::forall("x", bad.eventually());
        assert!(f.check_arities(&sc).is_err());
    }

    #[test]
    fn mixed_tense_classification() {
        let p = Formula::pred(PredId(0), vec![Term::var("x")]);
        let mixed = p.clone().once().and(p.eventually());
        assert!(!mixed.is_future());
        assert!(!mixed.is_past());
        assert!(!mixed.is_pure_first_order());
        let fo = Formula::eq(Term::var("x"), Term::Value(3));
        assert!(fo.is_pure_first_order() && fo.is_future() && fo.is_past());
    }
}

#[cfg(test)]
mod bounded_ops_tests {
    use super::*;
    use ticc_tdb::Schema;

    #[test]
    fn bounded_operators_desugar_to_next_chains() {
        let sc = Schema::builder().pred("P", 1).build();
        let p = || Formula::pred(sc.pred("P").unwrap(), vec![Term::var("x")]);
        let f1 = p().eventually_within(2);
        assert_eq!(f1, p().or(p().next()).or(p().next().next()));
        let g1 = p().always_within(1);
        assert_eq!(g1, p().and(p().next()));
        let o1 = p().once_within(1);
        assert_eq!(o1, p().or(p().prev()));
        // k = 0 is the formula itself.
        assert_eq!(p().eventually_within(0), p());
        // Bounded eventually is future-only and syntactically safe.
        let c = Formula::forall("x", f1.always());
        assert!(crate::classify::is_syntactically_safe(&c));
        assert_eq!(
            crate::classify::classify(&c),
            crate::classify::FormulaClass::Universal { external: 1 }
        );
    }

    #[test]
    fn bounded_response_constraint_checks_end_to_end() {
        // ∀x □(P(x) → ◇≤2 Q(x)): a real-time "respond within 2
        // instants" constraint — safety, so fully in the decidable
        // pipeline (unlike its unbounded cousin).
        let sc = Schema::builder().pred("P", 1).pred("Q", 1).build();
        let p = Formula::pred(sc.pred("P").unwrap(), vec![Term::var("x")]);
        let q = Formula::pred(sc.pred("Q").unwrap(), vec![Term::var("x")]);
        let c = Formula::forall("x", p.implies(q.eventually_within(2)).always());
        assert!(crate::classify::is_syntactically_safe(&c));
    }
}
