//! Evaluation of FOTL formulas over finite histories.
//!
//! The paper's satisfaction relation `D, v, t ⊨ φ` (Section 2) is
//! defined over infinite databases; over a finite history we use the
//! standard strong finite-trace semantics for the future connectives
//! (`○A` is false at the last state; `A until B` needs a witness inside
//! the trace) and the paper's semantics verbatim for the past
//! connectives, which only ever look backward. Past formulas — the ones
//! the paper evaluates on finite databases — are therefore evaluated
//! exactly.
//!
//! **Quantifiers** range over the infinite universe `N`. Because every
//! database relation is finite, a quantified formula over the pure
//! database vocabulary is invariant under permutations of the elements
//! outside `R_D ∪ values(v)`, so each quantifier only needs to consider
//! `R_D ∪ values(v)` plus `quantifier_depth` pairwise-distinct *fresh*
//! elements — the same `z1 … zk` device that Theorem 4.1 uses for the
//! grounding ([`UniverseSpec::ActivePlusFresh`]). This argument breaks
//! for the interpreted extended vocabulary (`≤`, `succ`, `Zero`
//! distinguish irrelevant elements), so formulas using it must be
//! evaluated over an explicitly bounded universe
//! ([`UniverseSpec::Bounded`]) — which is how the Turing-machine
//! encodings of Section 3 are model-checked.

use crate::formula::Formula;
use crate::term::{Atom, Term};
use std::collections::{BTreeSet, HashMap};
use ticc_tdb::{History, Value};

/// How quantifiers are ranged.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UniverseSpec {
    /// Active domain + constants + valuation values + `quantifier_depth`
    /// fresh elements. Exact for the pure database vocabulary; rejected
    /// for the extended vocabulary.
    ActivePlusFresh,
    /// Quantifiers range over `0..n`. Used for bounded model checking of
    /// extended-vocabulary formulas (Section 3 encodings).
    Bounded(Value),
}

/// Evaluation options.
#[derive(Debug, Clone, Copy)]
pub struct EvalOptions {
    /// Quantifier range.
    pub universe: UniverseSpec,
}

impl Default for EvalOptions {
    fn default() -> Self {
        Self {
            universe: UniverseSpec::ActivePlusFresh,
        }
    }
}

/// Errors from evaluation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EvalError {
    /// A free variable had no binding in the valuation.
    UnboundVariable(String),
    /// The history has no states.
    EmptyHistory,
    /// `t` exceeds the history length.
    PositionOutOfRange {
        /// Requested position.
        t: usize,
        /// Number of states.
        len: usize,
    },
    /// Active-domain semantics is unsound for `≤`/`succ`/`Zero`; use
    /// [`UniverseSpec::Bounded`].
    ExtendedVocabularyNeedsBoundedUniverse,
}

impl std::fmt::Display for EvalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EvalError::UnboundVariable(v) => write!(f, "unbound variable {v}"),
            EvalError::EmptyHistory => write!(f, "cannot evaluate over an empty history"),
            EvalError::PositionOutOfRange { t, len } => {
                write!(f, "position {t} out of range (history has {len} states)")
            }
            EvalError::ExtendedVocabularyNeedsBoundedUniverse => write!(
                f,
                "formulas over the extended vocabulary (<=, succ, zero) require \
                 UniverseSpec::Bounded"
            ),
        }
    }
}

impl std::error::Error for EvalError {}

/// A valuation: variable name → universe element.
pub type Valuation = HashMap<String, Value>;

/// Evaluates `f` at instant `t` of `history` under `valuation`.
pub fn eval(
    history: &History,
    f: &Formula,
    t: usize,
    valuation: &Valuation,
    opts: &EvalOptions,
) -> Result<bool, EvalError> {
    if history.is_empty() {
        return Err(EvalError::EmptyHistory);
    }
    if t >= history.len() {
        return Err(EvalError::PositionOutOfRange {
            t,
            len: history.len(),
        });
    }
    let domain = quantifier_domain(history, f, valuation, opts)?;
    let mut v = valuation.clone();
    let mut ev = Evaluator { history, domain };
    ev.go(f, t, &mut v)
}

/// Evaluates a closed formula at instant 0.
pub fn eval_closed(history: &History, f: &Formula, opts: &EvalOptions) -> Result<bool, EvalError> {
    eval(history, f, 0, &Valuation::new(), opts)
}

/// The (finite) set each quantifier ranges over, per the options.
fn quantifier_domain(
    history: &History,
    f: &Formula,
    valuation: &Valuation,
    opts: &EvalOptions,
) -> Result<Vec<Value>, EvalError> {
    match opts.universe {
        UniverseSpec::Bounded(n) => Ok((0..n).collect()),
        UniverseSpec::ActivePlusFresh => {
            if f.uses_extended_vocabulary() {
                return Err(EvalError::ExtendedVocabularyNeedsBoundedUniverse);
            }
            let mut base: BTreeSet<Value> = history.relevant();
            base.extend(valuation.values().copied());
            collect_formula_values(f, &mut base);
            let mut out: Vec<Value> = base.iter().copied().collect();
            let mut fresh_needed = f.quantifier_depth();
            let mut candidate: Value = 0;
            while fresh_needed > 0 {
                if !base.contains(&candidate) {
                    out.push(candidate);
                    fresh_needed -= 1;
                }
                candidate += 1;
            }
            Ok(out)
        }
    }
}

fn collect_formula_values(f: &Formula, out: &mut BTreeSet<Value>) {
    if let Formula::Atom(a) = f {
        for t in a.terms() {
            if let Term::Value(v) = t {
                out.insert(*v);
            }
        }
    }
    for c in f.children() {
        collect_formula_values(c, out);
    }
}

struct Evaluator<'a> {
    history: &'a History,
    domain: Vec<Value>,
}

impl Evaluator<'_> {
    fn term(&self, t: &Term, v: &Valuation) -> Result<Value, EvalError> {
        match t {
            Term::Var(name) => v
                .get(name)
                .copied()
                .ok_or_else(|| EvalError::UnboundVariable(name.clone())),
            Term::Const(c) => Ok(self.history.const_value(*c)),
            Term::Value(x) => Ok(*x),
        }
    }

    fn atom(&self, a: &Atom, t: usize, v: &Valuation) -> Result<bool, EvalError> {
        Ok(match a {
            Atom::Eq(x, y) => self.term(x, v)? == self.term(y, v)?,
            Atom::Leq(x, y) => self.term(x, v)? <= self.term(y, v)?,
            Atom::Succ(x, y) => {
                let (xv, yv) = (self.term(x, v)?, self.term(y, v)?);
                yv == xv + 1
            }
            Atom::Zero(x) => self.term(x, v)? == 0,
            Atom::Pred(p, ts) => {
                let tuple: Vec<Value> = ts
                    .iter()
                    .map(|t| self.term(t, v))
                    .collect::<Result<_, _>>()?;
                self.history.state(t).holds(*p, &tuple)
            }
        })
    }

    fn go(&mut self, f: &Formula, t: usize, v: &mut Valuation) -> Result<bool, EvalError> {
        Ok(match f {
            Formula::True => true,
            Formula::False => false,
            Formula::Atom(a) => self.atom(a, t, v)?,
            Formula::Not(g) => !self.go(g, t, v)?,
            Formula::And(a, b) => self.go(a, t, v)? && self.go(b, t, v)?,
            Formula::Or(a, b) => self.go(a, t, v)? || self.go(b, t, v)?,
            Formula::Implies(a, b) => !self.go(a, t, v)? || self.go(b, t, v)?,
            Formula::Exists(x, body) => {
                let saved = v.get(x).copied();
                let mut found = false;
                for i in 0..self.domain.len() {
                    let d = self.domain[i];
                    v.insert(x.clone(), d);
                    if self.go(body, t, v)? {
                        found = true;
                        break;
                    }
                }
                restore(v, x, saved);
                found
            }
            Formula::Forall(x, body) => {
                let saved = v.get(x).copied();
                let mut all = true;
                for i in 0..self.domain.len() {
                    let d = self.domain[i];
                    v.insert(x.clone(), d);
                    if !self.go(body, t, v)? {
                        all = false;
                        break;
                    }
                }
                restore(v, x, saved);
                all
            }
            Formula::Next(g) => t + 1 < self.history.len() && self.go(g, t + 1, v)?,
            Formula::Until(a, b) => {
                let mut ok = false;
                for s in t..self.history.len() {
                    if self.go(b, s, v)? {
                        ok = true;
                        break;
                    }
                    if !self.go(a, s, v)? {
                        break;
                    }
                }
                ok
            }
            Formula::Prev(g) => t > 0 && self.go(g, t - 1, v)?,
            Formula::Since(a, b) => {
                let mut ok = false;
                for s in (0..=t).rev() {
                    if self.go(b, s, v)? {
                        ok = true;
                        break;
                    }
                    if !self.go(a, s, v)? {
                        break;
                    }
                }
                ok
            }
        })
    }
}

fn restore(v: &mut Valuation, x: &str, saved: Option<Value>) {
    match saved {
        Some(old) => {
            v.insert(x.to_owned(), old);
        }
        None => {
            v.remove(x);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;
    use std::sync::Arc;
    use ticc_tdb::{Schema, State};

    fn order_schema() -> Arc<Schema> {
        Schema::builder().pred("Sub", 1).pred("Fill", 1).build()
    }

    /// Builds a history from per-instant (subs, fills) lists.
    fn order_history(spec: &[(&[Value], &[Value])]) -> History {
        let sc = order_schema();
        let mut h = History::new(sc.clone());
        for (subs, fills) in spec {
            let mut s = State::empty(sc.clone());
            for &v in *subs {
                s.insert_named("Sub", vec![v]).unwrap();
            }
            for &v in *fills {
                s.insert_named("Fill", vec![v]).unwrap();
            }
            h.push_state(s);
        }
        h
    }

    #[test]
    fn atoms_and_equality() {
        let h = order_history(&[(&[1], &[])]);
        let sc = h.schema().clone();
        let f = parse(&sc, "Sub(1) & !Sub(2) & 1 = 1 & 1 != 2").unwrap();
        assert!(eval_closed(&h, &f, &EvalOptions::default()).unwrap());
    }

    #[test]
    fn submitted_once_constraint_detects_violation() {
        let sc = order_schema();
        let c = parse(&sc, "forall x. G (Sub(x) -> X G !Sub(x))").unwrap();
        let clean = order_history(&[(&[1], &[]), (&[2], &[1]), (&[], &[2])]);
        assert!(eval_closed(&clean, &c, &EvalOptions::default()).unwrap());
        let dirty = order_history(&[(&[1], &[]), (&[2], &[]), (&[1], &[])]);
        assert!(!eval_closed(&dirty, &c, &EvalOptions::default()).unwrap());
    }

    #[test]
    fn fifo_constraint_on_histories() {
        let sc = order_schema();
        let src = "forall x y. G !(x != y & Sub(x) & \
                   ((!Fill(x)) U (Sub(y) & ((!Fill(x)) U (Fill(y) & !Fill(x))))))";
        let c = parse(&sc, src).unwrap();
        // FIFO-respecting: submit 1, submit 2, fill 1, fill 2.
        let good = order_history(&[(&[1], &[]), (&[2], &[]), (&[], &[1]), (&[], &[2])]);
        assert!(eval_closed(&good, &c, &EvalOptions::default()).unwrap());
        // Violation: 2 filled before 1.
        let bad = order_history(&[(&[1], &[]), (&[2], &[]), (&[], &[2]), (&[], &[1])]);
        assert!(!eval_closed(&bad, &c, &EvalOptions::default()).unwrap());
    }

    #[test]
    fn fresh_witness_for_existential() {
        // ∃x ¬Sub(x) is true even when every active element is in Sub:
        // an irrelevant (fresh) element witnesses it.
        let h = order_history(&[(&[0, 1, 2], &[])]);
        let sc = h.schema().clone();
        let f = parse(&sc, "exists x. !Sub(x)").unwrap();
        assert!(eval_closed(&h, &f, &EvalOptions::default()).unwrap());
        // And ∀x Sub(x) is false for the same reason.
        let g = parse(&sc, "forall x. Sub(x)").unwrap();
        assert!(!eval_closed(&h, &g, &EvalOptions::default()).unwrap());
    }

    #[test]
    fn nested_quantifiers_need_distinct_fresh_elements() {
        // ∃x ∃y (x ≠ y ∧ ¬Sub(x) ∧ ¬Sub(y)): needs two distinct fresh
        // witnesses when the whole active domain is submitted.
        let h = order_history(&[(&[0, 1], &[])]);
        let sc = h.schema().clone();
        let f = parse(&sc, "exists x y. x != y & !Sub(x) & !Sub(y)").unwrap();
        assert!(eval_closed(&h, &f, &EvalOptions::default()).unwrap());
    }

    #[test]
    fn past_operators_exact() {
        let h = order_history(&[(&[1], &[]), (&[], &[]), (&[], &[1])]);
        let sc = h.schema().clone();
        // At the fill instant, the order was submitted in the past.
        let f = parse(&sc, "G (Fill(x) -> O Sub(x))").unwrap();
        let v: Valuation = [("x".to_owned(), 1)].into_iter().collect();
        assert!(eval(&h, &f, 0, &v, &EvalOptions::default()).unwrap());
        // ●: strong at instant 0.
        let y = parse(&sc, "Y true").unwrap();
        assert!(!eval(&h, &y, 0, &Valuation::new(), &EvalOptions::default()).unwrap());
        assert!(eval(&h, &y, 1, &Valuation::new(), &EvalOptions::default()).unwrap());
    }

    #[test]
    fn bounded_universe_for_extended_vocabulary() {
        let h = order_history(&[(&[], &[])]);
        let sc = h.schema().clone();
        let f = parse(&sc, "forall x y. succ(x, y) -> x <= y").unwrap();
        // Rejected under active-domain semantics…
        assert_eq!(
            eval_closed(&h, &f, &EvalOptions::default()),
            Err(EvalError::ExtendedVocabularyNeedsBoundedUniverse)
        );
        // …fine over a bounded universe.
        let opts = EvalOptions {
            universe: UniverseSpec::Bounded(8),
        };
        assert!(eval_closed(&h, &f, &opts).unwrap());
        let g = parse(&sc, "exists x. zero(x) & forall y. x <= y").unwrap();
        assert!(eval_closed(&h, &g, &opts).unwrap());
    }

    #[test]
    fn unbound_variable_reported() {
        let h = order_history(&[(&[], &[])]);
        let sc = h.schema().clone();
        let f = parse(&sc, "Sub(x)").unwrap();
        assert_eq!(
            eval_closed(&h, &f, &EvalOptions::default()),
            Err(EvalError::UnboundVariable("x".to_owned()))
        );
    }

    #[test]
    fn errors_on_empty_or_out_of_range() {
        let sc = order_schema();
        let h = History::new(sc.clone());
        let f = parse(&sc, "true").unwrap();
        assert_eq!(
            eval_closed(&h, &f, &EvalOptions::default()),
            Err(EvalError::EmptyHistory)
        );
        let h2 = order_history(&[(&[], &[])]);
        assert!(matches!(
            eval(&h2, &f, 5, &Valuation::new(), &EvalOptions::default()),
            Err(EvalError::PositionOutOfRange { t: 5, len: 1 })
        ));
    }

    #[test]
    fn quantifier_scoping_restores_valuation() {
        let h = order_history(&[(&[1], &[])]);
        let sc = h.schema().clone();
        // (∃x Sub(x)) ∧ Sub(x) with outer x bound to 1.
        let f = parse(&sc, "(exists x. Sub(x)) & Sub(x)").unwrap();
        let v: Valuation = [("x".to_owned(), 1)].into_iter().collect();
        assert!(eval(&h, &f, 0, &v, &EvalOptions::default()).unwrap());
        let v2: Valuation = [("x".to_owned(), 9)].into_iter().collect();
        assert!(!eval(&h, &f, 0, &v2, &EvalOptions::default()).unwrap());
    }
}
