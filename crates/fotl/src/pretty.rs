//! Pretty-printing FOTL formulas against a schema.
//!
//! The output uses the same text syntax accepted by [`crate::parser`],
//! re-sugaring `⊤ until A` to `F A`, `¬(⊤ until ¬A)` to `G A`, and the
//! past analogues to `O`/`H`, so `parse(display(f))` round-trips
//! (modulo the desugaring the constructors perform).

use crate::formula::Formula;
use crate::term::{Atom, Term};
use std::fmt;
use ticc_tdb::Schema;

/// Display adapter for a term.
pub struct TermDisplay<'a> {
    schema: &'a Schema,
    term: &'a Term,
}

impl fmt::Display for TermDisplay<'_> {
    fn fmt(&self, out: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.term {
            Term::Var(v) => write!(out, "{v}"),
            Term::Const(c) => write!(out, "{}", self.schema.const_name(*c)),
            Term::Value(v) => write!(out, "{v}"),
        }
    }
}

/// Display adapter for a formula.
pub struct FormulaDisplay<'a> {
    schema: &'a Schema,
    formula: &'a Formula,
}

/// Renders a term against a schema.
pub fn term<'a>(schema: &'a Schema, t: &'a Term) -> TermDisplay<'a> {
    TermDisplay { schema, term: t }
}

/// Renders a formula against a schema.
pub fn formula<'a>(schema: &'a Schema, f: &'a Formula) -> FormulaDisplay<'a> {
    FormulaDisplay { schema, formula: f }
}

// Precedence: 0 quantifiers (their body extends maximally right, so
// they must be parenthesised under any operator), 1 implies, 2 or,
// 3 and, 4 until/since, 5 unary, 6 atoms.
fn prec(f: &Formula) -> u8 {
    match sugar(f) {
        Sugar::Plain(g) => match g {
            Formula::Forall(_, _) | Formula::Exists(_, _) => 0,
            Formula::Implies(_, _) => 1,
            Formula::Or(_, _) => 2,
            Formula::And(_, _) => 3,
            Formula::Until(_, _) | Formula::Since(_, _) => 4,
            Formula::Not(_) | Formula::Next(_) | Formula::Prev(_) => 5,
            _ => 6,
        },
        _ => 5, // F/G/O/H are unary
    }
}

enum Sugar<'a> {
    Eventually(&'a Formula),
    Always(&'a Formula),
    Once(&'a Formula),
    Historically(&'a Formula),
    Plain(&'a Formula),
}

fn sugar(f: &Formula) -> Sugar<'_> {
    match f {
        Formula::Until(a, b) if **a == Formula::True => Sugar::Eventually(b),
        Formula::Since(a, b) if **a == Formula::True => Sugar::Once(b),
        Formula::Not(inner) => match inner.as_ref() {
            Formula::Until(a, b) if **a == Formula::True => {
                if let Formula::Not(g) = b.as_ref() {
                    return Sugar::Always(g);
                }
                Sugar::Plain(f)
            }
            Formula::Since(a, b) if **a == Formula::True => {
                if let Formula::Not(g) = b.as_ref() {
                    return Sugar::Historically(g);
                }
                Sugar::Plain(f)
            }
            _ => Sugar::Plain(f),
        },
        _ => Sugar::Plain(f),
    }
}

impl FormulaDisplay<'_> {
    fn fmt_prec(&self, f: &Formula, min: u8, out: &mut fmt::Formatter<'_>) -> fmt::Result {
        let my = prec(f);
        let parens = my < min;
        if parens {
            write!(out, "(")?;
        }
        self.fmt_node(f, out)?;
        if parens {
            write!(out, ")")?;
        }
        Ok(())
    }

    fn fmt_node(&self, f: &Formula, out: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = self.schema;
        match sugar(f) {
            Sugar::Eventually(g) => {
                write!(out, "F ")?;
                return self.fmt_prec(g, 5, out);
            }
            Sugar::Always(g) => {
                write!(out, "G ")?;
                return self.fmt_prec(g, 5, out);
            }
            Sugar::Once(g) => {
                write!(out, "O ")?;
                return self.fmt_prec(g, 5, out);
            }
            Sugar::Historically(g) => {
                write!(out, "H ")?;
                return self.fmt_prec(g, 5, out);
            }
            Sugar::Plain(_) => {}
        }
        match f {
            Formula::True => write!(out, "true"),
            Formula::False => write!(out, "false"),
            Formula::Atom(a) => self.fmt_atom(a, out),
            Formula::Not(g) => {
                write!(out, "!")?;
                self.fmt_prec(g, 5, out)
            }
            Formula::And(a, b) => {
                self.fmt_prec(a, 4, out)?;
                write!(out, " & ")?;
                self.fmt_prec(b, 4, out)
            }
            Formula::Or(a, b) => {
                self.fmt_prec(a, 3, out)?;
                write!(out, " | ")?;
                self.fmt_prec(b, 3, out)
            }
            Formula::Implies(a, b) => {
                // Right-associative: the right side may be another
                // implication at equal precedence.
                self.fmt_prec(a, 2, out)?;
                write!(out, " -> ")?;
                self.fmt_prec(b, 1, out)
            }
            Formula::Forall(v, body) => {
                write!(out, "forall {v}. ")?;
                self.fmt_prec(body, 0, out)
            }
            Formula::Exists(v, body) => {
                write!(out, "exists {v}. ")?;
                self.fmt_prec(body, 0, out)
            }
            Formula::Next(g) => {
                write!(out, "X ")?;
                self.fmt_prec(g, 5, out)
            }
            Formula::Prev(g) => {
                write!(out, "Y ")?;
                self.fmt_prec(g, 5, out)
            }
            Formula::Until(a, b) => {
                self.fmt_prec(a, 5, out)?;
                write!(out, " U ")?;
                self.fmt_prec(b, 5, out)
            }
            Formula::Since(a, b) => {
                self.fmt_prec(a, 5, out)?;
                write!(out, " S ")?;
                self.fmt_prec(b, 5, out)
            }
        }
        .map(|_| ())?;
        let _ = s;
        Ok(())
    }

    fn fmt_atom(&self, a: &Atom, out: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = self.schema;
        match a {
            Atom::Eq(x, y) => write!(out, "{} = {}", term(s, x), term(s, y)),
            Atom::Leq(x, y) => write!(out, "{} <= {}", term(s, x), term(s, y)),
            Atom::Succ(x, y) => write!(out, "succ({}, {})", term(s, x), term(s, y)),
            Atom::Zero(x) => write!(out, "zero({})", term(s, x)),
            Atom::Pred(p, ts) => {
                write!(out, "{}(", s.pred_name(*p))?;
                for (i, t) in ts.iter().enumerate() {
                    if i > 0 {
                        write!(out, ", ")?;
                    }
                    write!(out, "{}", term(s, t))?;
                }
                write!(out, ")")
            }
        }
    }
}

impl fmt::Display for FormulaDisplay<'_> {
    fn fmt(&self, out: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.fmt_prec(self.formula, 0, out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema() -> std::sync::Arc<Schema> {
        Schema::builder()
            .pred("Sub", 1)
            .pred("E", 2)
            .constant("vip")
            .build()
    }

    #[test]
    fn atoms_render() {
        let sc = schema();
        let e = Formula::pred(
            sc.pred("E").unwrap(),
            vec![Term::var("x"), Term::Const(sc.constant("vip").unwrap())],
        );
        assert_eq!(format!("{}", formula(&sc, &e)), "E(x, vip)");
        let eq = Formula::eq(Term::var("x"), Term::Value(3));
        assert_eq!(format!("{}", formula(&sc, &eq)), "x = 3");
    }

    #[test]
    fn sugar_rendering() {
        let sc = schema();
        let p = Formula::pred(sc.pred("Sub").unwrap(), vec![Term::var("x")]);
        let g = p.clone().always();
        assert_eq!(format!("{}", formula(&sc, &g)), "G Sub(x)");
        let ev = p.clone().eventually();
        assert_eq!(format!("{}", formula(&sc, &ev)), "F Sub(x)");
        let h = p.clone().historically();
        assert_eq!(format!("{}", formula(&sc, &h)), "H Sub(x)");
        let o = p.once();
        assert_eq!(format!("{}", formula(&sc, &o)), "O Sub(x)");
    }

    #[test]
    fn paper_constraint_renders_readably() {
        let sc = schema();
        let p = |v: &str| Formula::pred(sc.pred("Sub").unwrap(), vec![Term::var(v)]);
        let f = Formula::forall("x", p("x").implies(p("x").not().always().next()).always());
        assert_eq!(
            format!("{}", formula(&sc, &f)),
            "forall x. G (Sub(x) -> X G !Sub(x))"
        );
    }

    #[test]
    fn precedence_parens() {
        let sc = schema();
        let p = |v: &str| Formula::pred(sc.pred("Sub").unwrap(), vec![Term::var(v)]);
        let f = p("x").or(p("y")).and(p("z"));
        assert_eq!(
            format!("{}", formula(&sc, &f)),
            "(Sub(x) | Sub(y)) & Sub(z)"
        );
        let u = p("x").until(p("y")).not();
        assert_eq!(format!("{}", formula(&sc, &u)), "!(Sub(x) U Sub(y))");
    }
}
