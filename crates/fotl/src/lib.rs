//! First-order temporal logic (FOTL).
//!
//! The constraint language of Chomicki & Niwiński (PODS 1993), Section 2:
//! first-order logic with equality over a database vocabulary, extended
//! with the future temporal connectives `○` (next) and `until` and the
//! past connectives `●` (previous) and `since`; derived operators `◇ □ ◈
//! ▣` are provided as sugar. Variables are *rigid* (their value does not
//! change over time); quantifiers range over the whole countably infinite
//! universe.
//!
//! Modules:
//! * [`term`], [`formula`] — AST with smart constructors;
//! * [`mod@classify`] — the paper's classification: pure first-order /
//!   future / past formulas, prenex classes `Σn`/`Πn`, `tense(C)`,
//!   external/internal quantifiers, and recognisers for **biquantified**
//!   (`∀*tense(Σ∞)`), **universal** (`∀*tense(Π0)`) and single-internal-
//!   quantifier (`∀*tense(Σ1)`) formulas;
//! * [`nnf`] — negation normal form;
//! * [`subst`] — free variables, capture-avoiding substitution;
//! * [`parser`] — a text syntax resolving symbols against a
//!   [`ticc_tdb::Schema`];
//! * [`mod@eval`] — evaluation over finite histories, with active-domain +
//!   fresh-witness quantifier semantics (the `z1…zk` device of Theorem
//!   4.1) or an explicitly bounded universe (used by the Turing-machine
//!   encodings, whose extended vocabulary `≤`, `succ`, `Zero` is
//!   interpreted);
//! * [`pretty`] — display against a schema.

pub mod classify;
pub mod eval;
pub mod formula;
pub mod nnf;
pub mod parser;
pub mod pretty;
pub mod subst;
pub mod term;

pub use classify::{classify, FormulaClass};
pub use eval::{eval, eval_closed, EvalError, EvalOptions, UniverseSpec};
pub use formula::Formula;
pub use parser::parse;
pub use term::{Atom, Term};
