//! Text syntax for FOTL constraints.
//!
//! Grammar (loosest binding first; quantifiers extend maximally right):
//!
//! ```text
//! formula := quant | iff
//! quant   := ("forall" | "exists") ident+ "." formula
//! iff     := impl ( "<->" impl )*
//! impl    := or ( "->" impl )?
//! or      := and ( "|" and )*
//! and     := temp ( "&" temp )*
//! temp    := unary ( ("U" | "R" | "S") temp )?
//! unary   := ("!" | "X" | "F" | "G" | "Y" | "O" | "H") unary | quant | primary
//! primary := "true" | "false" | atom | "(" formula ")"
//! atom    := pred "(" term ("," term)* ")" | "succ" "(" t "," t ")"
//!          | "zero" "(" t ")" | term ("=" | "!=" | "<=") term
//! term    := ident | integer
//! ```
//!
//! Identifiers are resolved against the supplied schema: a predicate
//! name must be applied to arguments; a constant name denotes the
//! constant; anything else is a variable. `R` (release) is accepted as
//! sugar for `¬(¬a U ¬b)` — the paper's FOTL has no primitive release.
//!
//! Example (the paper's first constraint):
//!
//! ```text
//! forall x. G (Sub(x) -> X G !Sub(x))
//! ```

use crate::formula::Formula;
use crate::term::{Atom, Term};
use std::fmt;
use ticc_tdb::{Schema, Value};

/// A parse error with byte position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset of the offending token.
    pub at: usize,
    /// Description.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at byte {}: {}", self.at, self.message)
    }
}

impl std::error::Error for ParseError {}

#[derive(Debug, Clone, PartialEq, Eq)]
enum Tok {
    Ident(String),
    Int(Value),
    Forall,
    Exists,
    True,
    False,
    Not,
    And,
    Or,
    Implies,
    Iff,
    Eq,
    Neq,
    Leq,
    LParen,
    RParen,
    Comma,
    Dot,
    Next,
    Finally,
    Globally,
    Until,
    Release,
    Prev,
    Since,
    Once,
    Hist,
    Succ,
    Zero,
    Eof,
}

struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Self {
        Self {
            src: src.as_bytes(),
            pos: 0,
        }
    }

    fn err(&self, message: impl Into<String>) -> ParseError {
        ParseError {
            at: self.pos,
            message: message.into(),
        }
    }

    fn next_token(&mut self) -> Result<(usize, Tok), ParseError> {
        while self.pos < self.src.len() && self.src[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
        let start = self.pos;
        if self.pos >= self.src.len() {
            return Ok((start, Tok::Eof));
        }
        let c = self.src[self.pos];
        let tok = match c {
            b'(' => {
                self.pos += 1;
                Tok::LParen
            }
            b')' => {
                self.pos += 1;
                Tok::RParen
            }
            b',' => {
                self.pos += 1;
                Tok::Comma
            }
            b'.' => {
                self.pos += 1;
                Tok::Dot
            }
            b'=' => {
                self.pos += 1;
                Tok::Eq
            }
            b'!' => {
                if self.src.get(self.pos + 1) == Some(&b'=') {
                    self.pos += 2;
                    Tok::Neq
                } else {
                    self.pos += 1;
                    Tok::Not
                }
            }
            b'&' => {
                self.pos += 1;
                if self.src.get(self.pos) == Some(&b'&') {
                    self.pos += 1;
                }
                Tok::And
            }
            b'|' => {
                self.pos += 1;
                if self.src.get(self.pos) == Some(&b'|') {
                    self.pos += 1;
                }
                Tok::Or
            }
            b'-' => {
                if self.src.get(self.pos + 1) == Some(&b'>') {
                    self.pos += 2;
                    Tok::Implies
                } else {
                    return Err(self.err("expected '->'"));
                }
            }
            b'<' => {
                if self.src.get(self.pos + 1) == Some(&b'-')
                    && self.src.get(self.pos + 2) == Some(&b'>')
                {
                    self.pos += 3;
                    Tok::Iff
                } else if self.src.get(self.pos + 1) == Some(&b'=') {
                    self.pos += 2;
                    Tok::Leq
                } else {
                    return Err(self.err("expected '<=' or '<->'"));
                }
            }
            c if c.is_ascii_digit() => {
                let s = self.pos;
                while self.pos < self.src.len() && self.src[self.pos].is_ascii_digit() {
                    self.pos += 1;
                }
                let text = std::str::from_utf8(&self.src[s..self.pos]).unwrap();
                let v: Value = text
                    .parse()
                    .map_err(|_| self.err(format!("integer literal {text} out of range")))?;
                Tok::Int(v)
            }
            c if c.is_ascii_alphabetic() || c == b'_' => {
                let s = self.pos;
                while self.pos < self.src.len()
                    && (self.src[self.pos].is_ascii_alphanumeric()
                        || self.src[self.pos] == b'_'
                        || self.src[self.pos] == b'\'')
                {
                    self.pos += 1;
                }
                let word = std::str::from_utf8(&self.src[s..self.pos]).unwrap();
                match word {
                    "forall" => Tok::Forall,
                    "exists" => Tok::Exists,
                    "true" => Tok::True,
                    "false" => Tok::False,
                    "succ" => Tok::Succ,
                    "zero" => Tok::Zero,
                    "X" => Tok::Next,
                    "F" => Tok::Finally,
                    "G" => Tok::Globally,
                    "U" => Tok::Until,
                    "R" => Tok::Release,
                    "Y" => Tok::Prev,
                    "S" => Tok::Since,
                    "O" => Tok::Once,
                    "H" => Tok::Hist,
                    _ => Tok::Ident(word.to_owned()),
                }
            }
            _ => return Err(self.err(format!("unexpected character '{}'", c as char))),
        };
        Ok((start, tok))
    }
}

struct Parser<'a> {
    lexer: Lexer<'a>,
    look: (usize, Tok),
    schema: &'a Schema,
}

impl<'a> Parser<'a> {
    fn new(src: &'a str, schema: &'a Schema) -> Result<Self, ParseError> {
        let mut lexer = Lexer::new(src);
        let look = lexer.next_token()?;
        Ok(Self {
            lexer,
            look,
            schema,
        })
    }

    fn bump(&mut self) -> Result<Tok, ParseError> {
        let next = self.lexer.next_token()?;
        Ok(std::mem::replace(&mut self.look, next).1)
    }

    fn expect(&mut self, tok: Tok, what: &str) -> Result<(), ParseError> {
        if self.look.1 == tok {
            self.bump()?;
            Ok(())
        } else {
            Err(self.err_here(format!("expected {what}")))
        }
    }

    fn err_here(&self, message: impl Into<String>) -> ParseError {
        ParseError {
            at: self.look.0,
            message: message.into(),
        }
    }

    fn formula(&mut self) -> Result<Formula, ParseError> {
        if matches!(self.look.1, Tok::Forall | Tok::Exists) {
            return self.quantified();
        }
        let mut left = self.implication()?;
        while self.look.1 == Tok::Iff {
            self.bump()?;
            let right = self.implication()?;
            let l2 = left.clone();
            let r2 = right.clone();
            left = left.implies(right).and(r2.implies(l2));
        }
        Ok(left)
    }

    fn quantified(&mut self) -> Result<Formula, ParseError> {
        let universal = self.look.1 == Tok::Forall;
        self.bump()?;
        let mut vars = Vec::new();
        loop {
            match self.bump()? {
                Tok::Ident(v) => {
                    if self.schema.pred(&v).is_some() || self.schema.constant(&v).is_some() {
                        return Err(
                            self.err_here(format!("cannot bind '{v}': it names a schema symbol"))
                        );
                    }
                    vars.push(v);
                }
                _ => return Err(self.err_here("expected variable name after quantifier")),
            }
            if self.look.1 == Tok::Dot {
                self.bump()?;
                break;
            }
            if !matches!(self.look.1, Tok::Ident(_)) {
                return Err(self.err_here("expected variable name or '.'"));
            }
        }
        let body = self.formula()?;
        Ok(vars.into_iter().rev().fold(body, |acc, v| {
            if universal {
                Formula::forall(v, acc)
            } else {
                Formula::exists(v, acc)
            }
        }))
    }

    fn implication(&mut self) -> Result<Formula, ParseError> {
        let left = self.or()?;
        if self.look.1 == Tok::Implies {
            self.bump()?;
            let right = self.implication()?;
            return Ok(left.implies(right));
        }
        Ok(left)
    }

    fn or(&mut self) -> Result<Formula, ParseError> {
        let mut left = self.and()?;
        while self.look.1 == Tok::Or {
            self.bump()?;
            let right = self.and()?;
            left = left.or(right);
        }
        Ok(left)
    }

    fn and(&mut self) -> Result<Formula, ParseError> {
        let mut left = self.temporal()?;
        while self.look.1 == Tok::And {
            self.bump()?;
            let right = self.temporal()?;
            left = left.and(right);
        }
        Ok(left)
    }

    fn temporal(&mut self) -> Result<Formula, ParseError> {
        let left = self.unary()?;
        match self.look.1 {
            Tok::Until => {
                self.bump()?;
                let right = self.temporal()?;
                Ok(left.until(right))
            }
            Tok::Release => {
                // a R b ≡ ¬(¬a U ¬b)
                self.bump()?;
                let right = self.temporal()?;
                Ok(left.not().until(right.not()).not())
            }
            Tok::Since => {
                self.bump()?;
                let right = self.temporal()?;
                Ok(left.since(right))
            }
            _ => Ok(left),
        }
    }

    fn unary(&mut self) -> Result<Formula, ParseError> {
        match self.look.1 {
            Tok::Not => {
                self.bump()?;
                Ok(self.unary()?.not())
            }
            Tok::Next => {
                self.bump()?;
                Ok(self.unary()?.next())
            }
            Tok::Finally => {
                self.bump()?;
                Ok(self.unary()?.eventually())
            }
            Tok::Globally => {
                self.bump()?;
                Ok(self.unary()?.always())
            }
            Tok::Prev => {
                self.bump()?;
                Ok(self.unary()?.prev())
            }
            Tok::Once => {
                self.bump()?;
                Ok(self.unary()?.once())
            }
            Tok::Hist => {
                self.bump()?;
                Ok(self.unary()?.historically())
            }
            Tok::Forall | Tok::Exists => self.quantified(),
            _ => self.primary(),
        }
    }

    fn primary(&mut self) -> Result<Formula, ParseError> {
        match self.bump()? {
            Tok::True => Ok(Formula::True),
            Tok::False => Ok(Formula::False),
            Tok::LParen => {
                let f = self.formula()?;
                self.expect(Tok::RParen, "')'")?;
                Ok(f)
            }
            Tok::Succ => {
                self.expect(Tok::LParen, "'(' after succ")?;
                let a = self.term()?;
                self.expect(Tok::Comma, "','")?;
                let b = self.term()?;
                self.expect(Tok::RParen, "')'")?;
                Ok(Formula::Atom(Atom::Succ(a, b)))
            }
            Tok::Zero => {
                self.expect(Tok::LParen, "'(' after zero")?;
                let a = self.term()?;
                self.expect(Tok::RParen, "')'")?;
                Ok(Formula::Atom(Atom::Zero(a)))
            }
            Tok::Ident(name) => {
                if let Some(p) = self.schema.pred(&name) {
                    self.expect(Tok::LParen, &format!("'(' after predicate {name}"))?;
                    let mut args = vec![self.term()?];
                    while self.look.1 == Tok::Comma {
                        self.bump()?;
                        args.push(self.term()?);
                    }
                    self.expect(Tok::RParen, "')'")?;
                    let expected = self.schema.arity(p);
                    if args.len() != expected {
                        return Err(self.err_here(format!(
                            "predicate {name} expects {expected} argument(s), got {}",
                            args.len()
                        )));
                    }
                    Ok(Formula::pred(p, args))
                } else {
                    let left = self.resolve_term(name);
                    self.comparison(left)
                }
            }
            Tok::Int(v) => self.comparison(Term::Value(v)),
            other => Err(self.err_here(format!("unexpected token {other:?}"))),
        }
    }

    fn comparison(&mut self, left: Term) -> Result<Formula, ParseError> {
        match self.bump()? {
            Tok::Eq => Ok(Formula::eq(left, self.term()?)),
            Tok::Neq => Ok(Formula::neq(left, self.term()?)),
            Tok::Leq => Ok(Formula::Atom(Atom::Leq(left, self.term()?))),
            _ => Err(self.err_here("expected '=', '!=' or '<=' after term")),
        }
    }

    fn term(&mut self) -> Result<Term, ParseError> {
        match self.bump()? {
            Tok::Ident(name) => Ok(self.resolve_term(name)),
            Tok::Int(v) => Ok(Term::Value(v)),
            other => Err(self.err_here(format!("expected term, got {other:?}"))),
        }
    }

    fn resolve_term(&self, name: String) -> Term {
        match self.schema.constant(&name) {
            Some(c) => Term::Const(c),
            None => Term::Var(name),
        }
    }
}

/// Parses a FOTL formula, resolving symbols against `schema`.
pub fn parse(schema: &Schema, src: &str) -> Result<Formula, ParseError> {
    let mut p = Parser::new(src, schema)?;
    let f = p.formula()?;
    if p.look.1 != Tok::Eof {
        return Err(p.err_here("trailing input after formula"));
    }
    Ok(f)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pretty;
    use std::sync::Arc;

    fn schema() -> Arc<Schema> {
        Schema::builder()
            .pred("Sub", 1)
            .pred("Fill", 1)
            .pred("E", 2)
            .constant("vip")
            .build()
    }

    #[test]
    fn parses_paper_constraint() {
        let sc = schema();
        let f = parse(&sc, "forall x. G (Sub(x) -> X G !Sub(x))").unwrap();
        let sub = |v: &str| Formula::pred(sc.pred("Sub").unwrap(), vec![Term::var(v)]);
        let expect = Formula::forall(
            "x",
            sub("x").implies(sub("x").not().always().next()).always(),
        );
        assert_eq!(f, expect);
    }

    #[test]
    fn parses_fifo_constraint() {
        let sc = schema();
        let src = "forall x y. G !(x != y & Sub(x) & \
                   ((!Fill(x)) U (Sub(y) & ((!Fill(x)) U (Fill(y) & !Fill(x))))))";
        let f = parse(&sc, src).unwrap();
        assert!(f.is_future());
        assert_eq!(
            crate::classify::classify(&f),
            crate::classify::FormulaClass::Universal { external: 2 }
        );
    }

    #[test]
    fn constants_and_values_resolve() {
        let sc = schema();
        let f = parse(&sc, "Sub(vip) & Sub(3) & Sub(x)").unwrap();
        let sub = sc.pred("Sub").unwrap();
        let expect = Formula::pred(sub, vec![Term::Const(sc.constant("vip").unwrap())])
            .and(Formula::pred(sub, vec![Term::Value(3)]))
            .and(Formula::pred(sub, vec![Term::var("x")]));
        assert_eq!(f, expect);
    }

    #[test]
    fn extended_vocabulary() {
        let sc = schema();
        let f = parse(&sc, "forall x y. succ(x, y) -> x <= y & !zero(y)").unwrap();
        assert!(f.uses_extended_vocabulary());
    }

    #[test]
    fn multi_var_quantifier_and_nesting() {
        let sc = schema();
        let f = parse(&sc, "forall x y. E(x, y) -> exists z. E(y, z)").unwrap();
        assert_eq!(f.quantifier_count(), 3);
        assert_eq!(f.quantifier_depth(), 3);
    }

    #[test]
    fn release_desugars() {
        let sc = schema();
        let f = parse(&sc, "Sub(x) R Fill(x)").unwrap();
        let sub = Formula::pred(sc.pred("Sub").unwrap(), vec![Term::var("x")]);
        let fill = Formula::pred(sc.pred("Fill").unwrap(), vec![Term::var("x")]);
        assert_eq!(f, sub.not().until(fill.not()).not());
    }

    #[test]
    fn arity_errors_at_parse_time() {
        let sc = schema();
        let e = parse(&sc, "E(x)").unwrap_err();
        assert!(e.message.contains("expects 2"));
    }

    #[test]
    fn binding_schema_symbol_rejected() {
        let sc = schema();
        let e = parse(&sc, "forall vip. Sub(vip)").unwrap_err();
        assert!(e.message.contains("schema symbol"));
    }

    #[test]
    fn display_parse_roundtrip() {
        let sc = schema();
        for src in [
            "forall x. G (Sub(x) -> X G !Sub(x))",
            "forall x y. G (E(x, y) -> F Fill(x))",
            "G (Fill(x) -> O Sub(x))",
            "Sub(x) U (Fill(x) & x = vip)",
            "forall x. Sub(x) | Fill(x) -> x <= 5",
        ] {
            let f1 = parse(&sc, src).unwrap();
            let printed = format!("{}", pretty::formula(&sc, &f1));
            let f2 = parse(&sc, &printed).unwrap();
            assert_eq!(f1, f2, "roundtrip failed: {src} -> {printed}");
        }
    }

    #[test]
    fn error_positions() {
        let sc = schema();
        assert!(parse(&sc, "Sub(x) &").is_err());
        assert!(parse(&sc, "(Sub(x)").is_err());
        assert!(parse(&sc, "Sub(x) Sub(y)").is_err());
        assert!(parse(&sc, "forall . Sub(x)").is_err());
        assert!(parse(&sc, "x").is_err(), "bare term is not a formula");
    }
}
