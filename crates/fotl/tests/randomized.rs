//! Deterministic randomized tests for the FOTL syntax layer — the
//! live, always-on counterpart of the gated `properties.rs` suite,
//! driven by the in-repo xoshiro PRNG with fixed seeds.
//!
//! * `parse ∘ display` is the identity on the AST;
//! * substitution respects free variables;
//! * prenexing pure first-order formulas preserves quantifier count and
//!   produces a quantifier-free matrix;
//! * the universal closure of a `tense(Π0)` body classifies as
//!   universal.

use std::sync::Arc;
use ticc_fotl::classify::{classify, prenex, FormulaClass};
use ticc_fotl::parser::parse;
use ticc_fotl::subst::{free_vars, substitute, Subst};
use ticc_fotl::{pretty, Formula, Term};
use ticc_tdb::rng::Rng;
use ticc_tdb::Schema;

fn schema() -> Arc<Schema> {
    Schema::builder()
        .pred("P", 1)
        .pred("Q", 1)
        .pred("E", 2)
        .constant("c")
        .build()
}

const VARS: &[&str] = &["x", "y", "z"];

fn term(rng: &mut Rng, sc: &Schema) -> Term {
    match rng.gen_range(0..5) {
        0..=2 => Term::var(VARS[rng.gen_range_usize(0..3)]),
        3 => Term::Const(sc.constant("c").unwrap()),
        _ => Term::Value(rng.gen_range(0..7)),
    }
}

/// Builds a random formula; `quantifiers`/`temporal` gate those
/// connective families, mirroring the gated suite's `fshape` strategy.
fn gen_formula(
    rng: &mut Rng,
    sc: &Schema,
    depth: u32,
    quantifiers: bool,
    temporal: bool,
) -> Formula {
    if depth == 0 || rng.gen_bool(0.3) {
        return match rng.gen_range(0..4) {
            0 => Formula::pred(sc.pred("P").unwrap(), vec![term(rng, sc)]),
            1 => Formula::pred(sc.pred("Q").unwrap(), vec![term(rng, sc)]),
            2 => {
                let (a, b) = (term(rng, sc), term(rng, sc));
                Formula::pred(sc.pred("E").unwrap(), vec![a, b])
            }
            _ => {
                let (a, b) = (term(rng, sc), term(rng, sc));
                Formula::eq(a, b)
            }
        };
    }
    let mut top = 4; // ¬ ∧ ∨ →
    if temporal {
        top += 4; // ○ U ● S
    }
    if quantifiers {
        top += 2; // ∀ ∃
    }
    let pick = rng.gen_range(0..top);
    let pick = match pick {
        4..=7 if !temporal => pick + 4,
        _ => pick,
    };
    match pick {
        0 => gen_formula(rng, sc, depth - 1, quantifiers, temporal).not(),
        1 => gen_formula(rng, sc, depth - 1, quantifiers, temporal).and(gen_formula(
            rng,
            sc,
            depth - 1,
            quantifiers,
            temporal,
        )),
        2 => gen_formula(rng, sc, depth - 1, quantifiers, temporal).or(gen_formula(
            rng,
            sc,
            depth - 1,
            quantifiers,
            temporal,
        )),
        3 => gen_formula(rng, sc, depth - 1, quantifiers, temporal).implies(gen_formula(
            rng,
            sc,
            depth - 1,
            quantifiers,
            temporal,
        )),
        4 => gen_formula(rng, sc, depth - 1, quantifiers, temporal).next(),
        5 => gen_formula(rng, sc, depth - 1, quantifiers, temporal).until(gen_formula(
            rng,
            sc,
            depth - 1,
            quantifiers,
            temporal,
        )),
        6 => gen_formula(rng, sc, depth - 1, quantifiers, temporal).prev(),
        7 => gen_formula(rng, sc, depth - 1, quantifiers, temporal).since(gen_formula(
            rng,
            sc,
            depth - 1,
            quantifiers,
            temporal,
        )),
        8 => Formula::forall(
            VARS[rng.gen_range_usize(0..3)],
            gen_formula(rng, sc, depth - 1, quantifiers, temporal),
        ),
        _ => Formula::exists(
            VARS[rng.gen_range_usize(0..3)],
            gen_formula(rng, sc, depth - 1, quantifiers, temporal),
        ),
    }
}

#[test]
fn parse_display_roundtrip() {
    let mut rng = Rng::seed_from_u64(21);
    let sc = schema();
    for _ in 0..200 {
        let f = gen_formula(&mut rng, &sc, 4, true, true);
        let printed = format!("{}", pretty::formula(&sc, &f));
        let back = parse(&sc, &printed).unwrap_or_else(|e| panic!("{e}: {printed}"));
        assert_eq!(f, back, "roundtrip failed for {printed}");
    }
}

#[test]
fn substituting_non_free_variable_is_noop() {
    let mut rng = Rng::seed_from_u64(22);
    let sc = schema();
    for _ in 0..200 {
        let f = gen_formula(&mut rng, &sc, 3, true, true);
        let fv = free_vars(&f);
        // "w" never occurs in generated formulas.
        let theta: Subst = [("w".to_owned(), Term::Value(99))].into_iter().collect();
        assert_eq!(substitute(&f, &theta), f);
        assert!(!fv.contains("w"));
    }
}

#[test]
fn ground_substitution_removes_free_variable() {
    let mut rng = Rng::seed_from_u64(23);
    let sc = schema();
    for _ in 0..200 {
        let f = gen_formula(&mut rng, &sc, 3, true, true);
        for v in free_vars(&f) {
            let theta: Subst = [(v.clone(), Term::Value(42))].into_iter().collect();
            let g = substitute(&f, &theta);
            assert!(
                !free_vars(&g).contains(&v),
                "{v} still free after substitution in {}",
                pretty::formula(&sc, &g)
            );
        }
    }
}

#[test]
fn prenex_preserves_quantifier_count() {
    let mut rng = Rng::seed_from_u64(24);
    let sc = schema();
    for _ in 0..200 {
        let f = gen_formula(&mut rng, &sc, 3, true, false);
        assert!(f.is_pure_first_order(), "temporal=false shapes are pure FO");
        let (prefix, matrix) = prenex(&f);
        assert!(matrix.is_quantifier_free());
        // Prenexing of ¬/∧/∨/→ never duplicates or drops quantifiers
        // (implication rewrites ¬a∨b without copying subterms).
        assert_eq!(prefix.len(), f.quantifier_count());
    }
}

#[test]
fn universal_closure_of_tense_pi0_is_universal() {
    let mut rng = Rng::seed_from_u64(25);
    let sc = schema();
    for _ in 0..200 {
        let body = gen_formula(&mut rng, &sc, 3, false, true);
        if !body.is_future() {
            continue; // past shapes excluded
        }
        let f = Formula::forall_many(["x", "y", "z"], body);
        assert_eq!(classify(&f), FormulaClass::Universal { external: 3 });
    }
}

#[test]
fn size_is_positive_and_children_smaller() {
    let mut rng = Rng::seed_from_u64(26);
    let sc = schema();
    for _ in 0..200 {
        let f = gen_formula(&mut rng, &sc, 4, true, true);
        let n = f.size();
        assert!(n >= 1);
        for c in f.children() {
            assert!(c.size() < n);
        }
    }
}
