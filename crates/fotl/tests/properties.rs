//! Property-based tests for the FOTL syntax layer.
//!
//! * `parse ∘ display` is the identity on the AST;
//! * substitution respects free variables (substituting a variable that
//!   is not free is a no-op; after substituting `x ↦ value`, `x` is no
//!   longer free);
//! * prenexing pure first-order formulas preserves quantifier count and
//!   produces a quantifier-free matrix;
//! * classification invariants: adding an external `∀` never breaks
//!   universality; `tense(Π0)` bodies classify as universal.

// Gated: `proptest` is an off-by-default feature so the workspace
// resolves with no registry access. To run this suite, restore the
// `proptest` dev-dependency and pass `--features proptest`.
#![cfg(feature = "proptest")]

use proptest::prelude::*;
use std::sync::Arc;
use ticc_fotl::classify::{classify, prenex, FormulaClass};
use ticc_fotl::parser::parse;
use ticc_fotl::subst::{free_vars, substitute, Subst};
use ticc_fotl::{pretty, Formula, Term};
use ticc_tdb::Schema;

fn schema() -> Arc<Schema> {
    Schema::builder()
        .pred("P", 1)
        .pred("Q", 1)
        .pred("E", 2)
        .constant("c")
        .build()
}

/// Random FOTL formula recipe (future + past + quantifiers).
#[derive(Debug, Clone)]
enum FShape {
    P(u8),
    Q(u8),
    E(u8, u8),
    Eq(u8, u8),
    Not(Box<FShape>),
    And(Box<FShape>, Box<FShape>),
    Or(Box<FShape>, Box<FShape>),
    Implies(Box<FShape>, Box<FShape>),
    Next(Box<FShape>),
    Until(Box<FShape>, Box<FShape>),
    Prev(Box<FShape>),
    Since(Box<FShape>, Box<FShape>),
    Forall(u8, Box<FShape>),
    Exists(u8, Box<FShape>),
}

const VARS: &[&str] = &["x", "y", "z"];

fn term(code: u8, sc: &Schema) -> Term {
    match code % 5 {
        0..=2 => Term::var(VARS[(code % 3) as usize]),
        3 => Term::Const(sc.constant("c").unwrap()),
        _ => Term::Value((code % 7) as u64),
    }
}

impl FShape {
    fn build(&self, sc: &Schema) -> Formula {
        match self {
            FShape::P(a) => Formula::pred(sc.pred("P").unwrap(), vec![term(*a, sc)]),
            FShape::Q(a) => Formula::pred(sc.pred("Q").unwrap(), vec![term(*a, sc)]),
            FShape::E(a, b) => {
                Formula::pred(sc.pred("E").unwrap(), vec![term(*a, sc), term(*b, sc)])
            }
            FShape::Eq(a, b) => Formula::eq(term(*a, sc), term(*b, sc)),
            FShape::Not(a) => a.build(sc).not(),
            FShape::And(a, b) => a.build(sc).and(b.build(sc)),
            FShape::Or(a, b) => a.build(sc).or(b.build(sc)),
            FShape::Implies(a, b) => a.build(sc).implies(b.build(sc)),
            FShape::Next(a) => a.build(sc).next(),
            FShape::Until(a, b) => a.build(sc).until(b.build(sc)),
            FShape::Prev(a) => a.build(sc).prev(),
            FShape::Since(a, b) => a.build(sc).since(b.build(sc)),
            FShape::Forall(v, a) => Formula::forall(VARS[(*v % 3) as usize], a.build(sc)),
            FShape::Exists(v, a) => Formula::exists(VARS[(*v % 3) as usize], a.build(sc)),
        }
    }
}

fn fshape(depth: u32, quantifiers: bool, temporal: bool) -> impl Strategy<Value = FShape> {
    let leaf = prop_oneof![
        (0u8..16).prop_map(FShape::P),
        (0u8..16).prop_map(FShape::Q),
        (0u8..16, 0u8..16).prop_map(|(a, b)| FShape::E(a, b)),
        (0u8..16, 0u8..16).prop_map(|(a, b)| FShape::Eq(a, b)),
    ];
    leaf.prop_recursive(depth, 24, 2, move |inner| {
        let mut opts: Vec<BoxedStrategy<FShape>> = vec![
            inner.clone().prop_map(|a| FShape::Not(Box::new(a))).boxed(),
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| FShape::And(Box::new(a), Box::new(b)))
                .boxed(),
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| FShape::Or(Box::new(a), Box::new(b)))
                .boxed(),
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| FShape::Implies(Box::new(a), Box::new(b)))
                .boxed(),
        ];
        if temporal {
            opts.push(
                inner
                    .clone()
                    .prop_map(|a| FShape::Next(Box::new(a)))
                    .boxed(),
            );
            opts.push(
                (inner.clone(), inner.clone())
                    .prop_map(|(a, b)| FShape::Until(Box::new(a), Box::new(b)))
                    .boxed(),
            );
            opts.push(
                inner
                    .clone()
                    .prop_map(|a| FShape::Prev(Box::new(a)))
                    .boxed(),
            );
            opts.push(
                (inner.clone(), inner.clone())
                    .prop_map(|(a, b)| FShape::Since(Box::new(a), Box::new(b)))
                    .boxed(),
            );
        }
        if quantifiers {
            opts.push(
                (0u8..3, inner.clone())
                    .prop_map(|(v, a)| FShape::Forall(v, Box::new(a)))
                    .boxed(),
            );
            opts.push(
                (0u8..3, inner)
                    .prop_map(|(v, a)| FShape::Exists(v, Box::new(a)))
                    .boxed(),
            );
        }
        proptest::strategy::Union::new(opts)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn parse_display_roundtrip(s in fshape(4, true, true)) {
        let sc = schema();
        let f = s.build(&sc);
        let printed = format!("{}", pretty::formula(&sc, &f));
        let back = parse(&sc, &printed)
            .map_err(|e| TestCaseError::fail(format!("{e}: {printed}")))?;
        prop_assert_eq!(f, back, "roundtrip failed for {}", printed);
    }

    #[test]
    fn substituting_non_free_variable_is_noop(s in fshape(3, true, true)) {
        let sc = schema();
        let f = s.build(&sc);
        let fv = free_vars(&f);
        // "w" never occurs in generated formulas.
        let theta: Subst = [("w".to_owned(), Term::Value(99))].into_iter().collect();
        prop_assert_eq!(substitute(&f, &theta), f.clone());
        prop_assert!(!fv.contains("w"));
    }

    #[test]
    fn ground_substitution_removes_free_variable(s in fshape(3, true, true)) {
        let sc = schema();
        let f = s.build(&sc);
        for v in free_vars(&f) {
            let theta: Subst = [(v.clone(), Term::Value(42))].into_iter().collect();
            let g = substitute(&f, &theta);
            prop_assert!(
                !free_vars(&g).contains(&v),
                "{v} still free after substitution in {}",
                pretty::formula(&sc, &g)
            );
        }
    }

    #[test]
    fn prenex_preserves_quantifier_count(s in fshape(3, true, false)) {
        let sc = schema();
        let f = s.build(&sc);
        assert!(f.is_pure_first_order(), "temporal=false shapes are pure FO");
        let (prefix, matrix) = prenex(&f);
        prop_assert!(matrix.is_quantifier_free());
        // Prenexing of ¬/∧/∨/→ never duplicates or drops quantifiers
        // (implication rewrites ¬a∨b without copying subterms).
        prop_assert_eq!(prefix.len(), f.quantifier_count());
    }

    #[test]
    fn universal_closure_of_tense_pi0_is_universal(s in fshape(3, false, true)) {
        let sc = schema();
        let body = s.build(&sc);
        prop_assume!(body.is_future()); // past shapes excluded
        let f = Formula::forall_many(["x", "y", "z"], body);
        prop_assert_eq!(classify(&f), FormulaClass::Universal { external: 3 });
    }

    #[test]
    fn size_is_positive_and_children_smaller(s in fshape(4, true, true)) {
        let sc = schema();
        let f = s.build(&sc);
        let n = f.size();
        prop_assert!(n >= 1);
        for c in f.children() {
            prop_assert!(c.size() < n);
        }
    }
}
