//! Deterministic randomized tests for the PTL engines.
//!
//! The live, always-on counterpart of the gated `properties.rs` suite:
//! the same semantic oracles, driven by the in-repo xoshiro PRNG
//! (`ticc_tdb::rng`) with fixed seeds instead of `proptest`, so they
//! run offline on every `cargo test`.
//!
//! * satisfiability witnesses actually satisfy the formula (lasso
//!   evaluation is an independent implementation of the semantics),
//! * the Büchi and tableau engines agree,
//! * progression is sound w.r.t. the semantics (`w·σ ⊨ f` iff
//!   `σ ⊨ progress(f, w)`),
//! * the Lemma 4.2 `extends` pipeline agrees with a naive encoding of
//!   the prefix as a `○`-chain formula,
//! * NNF and `simplify` preserve semantics; parse∘display is the
//!   identity.

use ticc_ptl::arena::{Arena, AtomId, FormulaId};
use ticc_ptl::lasso::Lasso;
use ticc_ptl::nnf::nnf;
use ticc_ptl::parser::parse;
use ticc_ptl::progression::progress;
use ticc_ptl::sat::{extends, is_satisfiable, is_satisfiable_with, SatSolver};
use ticc_ptl::trace::PropState;
use ticc_tdb::rng::Rng;

const ATOMS: &[&str] = &["p", "q", "r"];

/// Builds a random future formula directly in the arena.
fn gen_formula(rng: &mut Rng, ar: &mut Arena, depth: u32) -> FormulaId {
    if depth == 0 || rng.gen_bool(0.3) {
        return ar.atom(ATOMS[rng.gen_range_usize(0..ATOMS.len())]);
    }
    match rng.gen_range(0..8) {
        0 => {
            let a = gen_formula(rng, ar, depth - 1);
            ar.not(a)
        }
        1 => {
            let (a, b) = (
                gen_formula(rng, ar, depth - 1),
                gen_formula(rng, ar, depth - 1),
            );
            ar.and(a, b)
        }
        2 => {
            let (a, b) = (
                gen_formula(rng, ar, depth - 1),
                gen_formula(rng, ar, depth - 1),
            );
            ar.or(a, b)
        }
        3 => {
            let a = gen_formula(rng, ar, depth - 1);
            ar.next(a)
        }
        4 => {
            let (a, b) = (
                gen_formula(rng, ar, depth - 1),
                gen_formula(rng, ar, depth - 1),
            );
            ar.until(a, b)
        }
        5 => {
            let (a, b) = (
                gen_formula(rng, ar, depth - 1),
                gen_formula(rng, ar, depth - 1),
            );
            ar.release(a, b)
        }
        6 => {
            let a = gen_formula(rng, ar, depth - 1);
            ar.eventually(a)
        }
        _ => {
            let a = gen_formula(rng, ar, depth - 1);
            ar.always(a)
        }
    }
}

fn register_atoms(ar: &mut Arena) -> Vec<AtomId> {
    ATOMS.iter().map(|n| ar.intern_atom(n)).collect()
}

fn state_from_bits(bits: u8, atoms: &[AtomId]) -> PropState {
    PropState::from_true_atoms(
        atoms
            .iter()
            .enumerate()
            .filter(|(i, _)| bits >> i & 1 == 1)
            .map(|(_, &a)| a),
    )
}

fn gen_states(rng: &mut Rng, atoms: &[AtomId], len: usize) -> Vec<PropState> {
    (0..len)
        .map(|_| state_from_bits(rng.gen_range(0..8) as u8, atoms))
        .collect()
}

fn gen_lasso(rng: &mut Rng, atoms: &[AtomId]) -> Lasso {
    let plen = rng.gen_range_usize(0..3);
    let clen = rng.gen_range_usize(1..4);
    let prefix = gen_states(rng, atoms, plen);
    let cycle = gen_states(rng, atoms, clen);
    Lasso::new(prefix, cycle)
}

#[test]
fn sat_witness_satisfies_formula() {
    let mut rng = Rng::seed_from_u64(1);
    for _ in 0..200 {
        let mut ar = Arena::new();
        let f = gen_formula(&mut rng, &mut ar, 4);
        let r = is_satisfiable(&mut ar, f).unwrap();
        if let Some(w) = r.witness {
            assert!(r.satisfiable);
            assert!(w.eval(&ar, f).unwrap(), "witness fails {}", ar.display(f));
        } else {
            assert!(!r.satisfiable);
        }
    }
}

#[test]
fn unsat_means_no_lasso_model() {
    let mut rng = Rng::seed_from_u64(2);
    for _ in 0..200 {
        let mut ar = Arena::new();
        let atoms = register_atoms(&mut ar);
        let f = gen_formula(&mut rng, &mut ar, 3);
        let r = is_satisfiable(&mut ar, f).unwrap();
        if !r.satisfiable {
            let l = gen_lasso(&mut rng, &atoms);
            assert!(
                !l.eval(&ar, f).unwrap(),
                "unsat formula {} has a model",
                ar.display(f)
            );
        }
    }
}

#[test]
fn engines_agree() {
    let mut rng = Rng::seed_from_u64(3);
    for _ in 0..200 {
        let mut ar = Arena::new();
        let f = gen_formula(&mut rng, &mut ar, 3);
        let b = is_satisfiable_with(&mut ar, f, SatSolver::Buchi).unwrap();
        // (an Err means the closure exceeded the tableau cap: skip)
        if let Ok(t) = is_satisfiable_with(&mut ar, f, SatSolver::Tableau) {
            assert_eq!(
                b.satisfiable,
                t.satisfiable,
                "engines disagree on {}",
                ar.display(f)
            );
        }
    }
}

#[test]
fn progression_is_sound() {
    let mut rng = Rng::seed_from_u64(4);
    for _ in 0..200 {
        let mut ar = Arena::new();
        let atoms = register_atoms(&mut ar);
        let f = gen_formula(&mut rng, &mut ar, 3);
        let w0 = state_from_bits(rng.gen_range(0..8) as u8, &atoms);
        let g = progress(&mut ar, f, &w0).unwrap();
        // word = w0 · rest; f on word iff g on rest.
        let rest = gen_lasso(&mut rng, &atoms);
        let mut full_prefix = vec![w0];
        full_prefix.extend(rest.prefix.iter().cloned());
        let word = Lasso::new(full_prefix, rest.cycle.clone());
        assert_eq!(
            word.eval(&ar, f).unwrap(),
            rest.eval(&ar, g).unwrap(),
            "progression unsound for {}",
            ar.display(f)
        );
    }
}

#[test]
fn nnf_preserves_semantics() {
    let mut rng = Rng::seed_from_u64(5);
    for _ in 0..200 {
        let mut ar = Arena::new();
        let atoms = register_atoms(&mut ar);
        let f = gen_formula(&mut rng, &mut ar, 3);
        let g = nnf(&mut ar, f).unwrap();
        let l = gen_lasso(&mut rng, &atoms);
        assert_eq!(l.eval(&ar, f).unwrap(), l.eval(&ar, g).unwrap());
    }
}

#[test]
fn extends_agrees_with_naive_prefix_encoding() {
    let mut rng = Rng::seed_from_u64(6);
    for _ in 0..150 {
        let mut ar = Arena::new();
        let atoms = register_atoms(&mut ar);
        let f = gen_formula(&mut rng, &mut ar, 3);
        let plen = rng.gen_range_usize(0..4);
        let prefix = gen_states(&mut rng, &atoms, plen);
        let fast = extends(&mut ar, &prefix, f).unwrap().satisfiable;
        // Naive: f ∧ ⋀_i ○^i (literal description of state i).
        let mut conj = f;
        for (i, st) in prefix.iter().enumerate() {
            let mut desc = ar.tru();
            for &a in &atoms {
                let at = ar.atom_id(a);
                let lit = if st.get(a) { at } else { ar.not(at) };
                desc = ar.and(desc, lit);
            }
            let mut wrapped = desc;
            for _ in 0..i {
                wrapped = ar.next(wrapped);
            }
            conj = ar.and(conj, wrapped);
        }
        let naive = is_satisfiable(&mut ar, conj).unwrap().satisfiable;
        assert_eq!(
            fast,
            naive,
            "Lemma 4.2 pipeline disagrees with naive encoding on {}",
            ar.display(f)
        );
    }
}

#[test]
fn parse_display_roundtrip() {
    let mut rng = Rng::seed_from_u64(7);
    for _ in 0..200 {
        let mut ar = Arena::new();
        let f = gen_formula(&mut rng, &mut ar, 4);
        let printed = format!("{}", ar.display(f));
        let g = parse(&mut ar, &printed).unwrap();
        assert_eq!(f, g, "roundtrip failed: {printed}");
    }
}

#[test]
fn finite_eval_agrees_with_lasso_on_safety_violations() {
    let mut rng = Rng::seed_from_u64(8);
    for _ in 0..200 {
        // If progression reaches ⊥ on a finite trace, no lasso extending
        // that trace may satisfy the formula.
        let mut ar = Arena::new();
        let atoms = register_atoms(&mut ar);
        let f = gen_formula(&mut rng, &mut ar, 3);
        let tlen = rng.gen_range_usize(1..5);
        let trace = gen_states(&mut rng, &atoms, tlen);
        if let Some(k) = ticc_ptl::safety::find_bad_prefix(&mut ar, f, &trace).unwrap() {
            let l = Lasso::new(trace[..=k].to_vec(), vec![PropState::new()]);
            assert!(!l.eval(&ar, f).unwrap());
        }
    }
}

#[test]
fn simplify_preserves_semantics_and_size() {
    let mut rng = Rng::seed_from_u64(9);
    for _ in 0..200 {
        let mut ar = Arena::new();
        let atoms = register_atoms(&mut ar);
        let f = gen_formula(&mut rng, &mut ar, 4);
        let g = ticc_ptl::simplify::simplify(&mut ar, f);
        assert!(
            ar.tree_size(g) <= ar.tree_size(f),
            "simplify must not grow the formula"
        );
        let l = gen_lasso(&mut rng, &atoms);
        assert_eq!(
            l.eval(&ar, f).unwrap(),
            l.eval(&ar, g).unwrap(),
            "simplify changed semantics of {}",
            ar.display(f)
        );
    }
}
