//! Property-based tests for the PTL engines.
//!
//! These are the crate's semantic oracles:
//!
//! * satisfiability witnesses actually satisfy the formula (lasso
//!   evaluation is an independent implementation of the semantics),
//! * the two satisfiability engines agree,
//! * progression is sound w.r.t. the semantics (`w·σ ⊨ f` iff
//!   `σ ⊨ progress(f, w)`),
//! * the Lemma 4.2 `extends` pipeline agrees with a naive encoding of
//!   the prefix as a `○`-chain formula,
//! * NNF preserves semantics and parse∘display is the identity.

// Gated: `proptest` is an off-by-default feature so the workspace
// resolves with no registry access. To run this suite, restore the
// `proptest` dev-dependency and pass `--features proptest`.
#![cfg(feature = "proptest")]

use proptest::prelude::*;
use ticc_ptl::arena::{Arena, AtomId, FormulaId};
use ticc_ptl::lasso::Lasso;
use ticc_ptl::nnf::nnf;
use ticc_ptl::parser::parse;
use ticc_ptl::progression::progress;
use ticc_ptl::sat::{extends, is_satisfiable, is_satisfiable_with, SatSolver};
use ticc_ptl::trace::PropState;

const ATOMS: &[&str] = &["p", "q", "r"];

/// A compact recipe for building a random future formula in an arena.
#[derive(Debug, Clone)]
enum Shape {
    Atom(usize),
    Not(Box<Shape>),
    And(Box<Shape>, Box<Shape>),
    Or(Box<Shape>, Box<Shape>),
    Next(Box<Shape>),
    Until(Box<Shape>, Box<Shape>),
    Release(Box<Shape>, Box<Shape>),
    Eventually(Box<Shape>),
    Always(Box<Shape>),
}

impl Shape {
    fn build(&self, ar: &mut Arena) -> FormulaId {
        match self {
            Shape::Atom(i) => ar.atom(ATOMS[i % ATOMS.len()]),
            Shape::Not(a) => {
                let x = a.build(ar);
                ar.not(x)
            }
            Shape::And(a, b) => {
                let (x, y) = (a.build(ar), b.build(ar));
                ar.and(x, y)
            }
            Shape::Or(a, b) => {
                let (x, y) = (a.build(ar), b.build(ar));
                ar.or(x, y)
            }
            Shape::Next(a) => {
                let x = a.build(ar);
                ar.next(x)
            }
            Shape::Until(a, b) => {
                let (x, y) = (a.build(ar), b.build(ar));
                ar.until(x, y)
            }
            Shape::Release(a, b) => {
                let (x, y) = (a.build(ar), b.build(ar));
                ar.release(x, y)
            }
            Shape::Eventually(a) => {
                let x = a.build(ar);
                ar.eventually(x)
            }
            Shape::Always(a) => {
                let x = a.build(ar);
                ar.always(x)
            }
        }
    }
}

fn shape(depth: u32) -> impl Strategy<Value = Shape> {
    let leaf = (0usize..ATOMS.len()).prop_map(Shape::Atom);
    leaf.prop_recursive(depth, 24, 2, |inner| {
        prop_oneof![
            inner.clone().prop_map(|a| Shape::Not(Box::new(a))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Shape::And(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Shape::Or(Box::new(a), Box::new(b))),
            inner.clone().prop_map(|a| Shape::Next(Box::new(a))),
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| Shape::Until(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| Shape::Release(Box::new(a), Box::new(b))),
            inner.clone().prop_map(|a| Shape::Eventually(Box::new(a))),
            inner.prop_map(|a| Shape::Always(Box::new(a))),
        ]
    })
}

fn state_from_bits(bits: u8, atoms: &[AtomId]) -> PropState {
    PropState::from_true_atoms(
        atoms
            .iter()
            .enumerate()
            .filter(|(i, _)| bits >> i & 1 == 1)
            .map(|(_, &a)| a),
    )
}

fn register_atoms(ar: &mut Arena) -> Vec<AtomId> {
    ATOMS.iter().map(|n| ar.intern_atom(n)).collect()
}

fn lasso_from(prefix_bits: &[u8], cycle_bits: &[u8], atoms: &[AtomId]) -> Lasso {
    Lasso::new(
        prefix_bits
            .iter()
            .map(|&b| state_from_bits(b, atoms))
            .collect(),
        cycle_bits
            .iter()
            .map(|&b| state_from_bits(b, atoms))
            .collect(),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn sat_witness_satisfies_formula(s in shape(4)) {
        let mut ar = Arena::new();
        let f = s.build(&mut ar);
        let r = is_satisfiable(&mut ar, f).unwrap();
        if let Some(w) = r.witness {
            prop_assert!(r.satisfiable);
            prop_assert!(w.eval(&ar, f).unwrap(),
                "witness fails formula {}", ar.display(f));
        } else {
            prop_assert!(!r.satisfiable);
        }
    }

    #[test]
    fn unsat_means_no_lasso_model(
        s in shape(3),
        pfx in proptest::collection::vec(0u8..8, 0..3),
        cyc in proptest::collection::vec(0u8..8, 1..4),
    ) {
        let mut ar = Arena::new();
        let atoms = register_atoms(&mut ar);
        let f = s.build(&mut ar);
        let r = is_satisfiable(&mut ar, f).unwrap();
        if !r.satisfiable {
            let l = lasso_from(&pfx, &cyc, &atoms);
            prop_assert!(!l.eval(&ar, f).unwrap(),
                "unsat formula {} has a model", ar.display(f));
        }
    }

    #[test]
    fn engines_agree(s in shape(3)) {
        let mut ar = Arena::new();
        let f = s.build(&mut ar);
        let b = is_satisfiable_with(&mut ar, f, SatSolver::Buchi).unwrap();
        if let Ok(t) = is_satisfiable_with(&mut ar, f, SatSolver::Tableau) {
            // (an Err means the closure exceeded the tableau cap: skip)
            prop_assert_eq!(b.satisfiable, t.satisfiable,
                "engines disagree on {}", ar.display(f));
        }
    }

    #[test]
    fn progression_is_sound(
        s in shape(3),
        head in 0u8..8,
        pfx in proptest::collection::vec(0u8..8, 0..3),
        cyc in proptest::collection::vec(0u8..8, 1..4),
    ) {
        let mut ar = Arena::new();
        let atoms = register_atoms(&mut ar);
        let f = s.build(&mut ar);
        let w0 = state_from_bits(head, &atoms);
        let g = progress(&mut ar, f, &w0).unwrap();
        // word = w0 · rest; f on word iff g on rest.
        let rest = lasso_from(&pfx, &cyc, &atoms);
        let mut full_prefix = vec![w0];
        full_prefix.extend(rest.prefix.iter().cloned());
        let word = Lasso::new(full_prefix, rest.cycle.clone());
        prop_assert_eq!(
            word.eval(&ar, f).unwrap(),
            rest.eval(&ar, g).unwrap(),
            "progression unsound for {}", ar.display(f)
        );
    }

    #[test]
    fn nnf_preserves_semantics(
        s in shape(3),
        pfx in proptest::collection::vec(0u8..8, 0..3),
        cyc in proptest::collection::vec(0u8..8, 1..4),
    ) {
        let mut ar = Arena::new();
        let atoms = register_atoms(&mut ar);
        let f = s.build(&mut ar);
        let g = nnf(&mut ar, f).unwrap();
        let l = lasso_from(&pfx, &cyc, &atoms);
        prop_assert_eq!(l.eval(&ar, f).unwrap(), l.eval(&ar, g).unwrap());
    }

    #[test]
    fn extends_agrees_with_naive_prefix_encoding(
        s in shape(3),
        pfx in proptest::collection::vec(0u8..8, 0..4),
    ) {
        let mut ar = Arena::new();
        let atoms = register_atoms(&mut ar);
        let f = s.build(&mut ar);
        let prefix: Vec<PropState> =
            pfx.iter().map(|&b| state_from_bits(b, &atoms)).collect();
        let fast = extends(&mut ar, &prefix, f).unwrap().satisfiable;
        // Naive: f ∧ ⋀_i ○^i (literal description of state i).
        let mut conj = f;
        for (i, st) in prefix.iter().enumerate() {
            let mut desc = ar.tru();
            for &a in &atoms {
                let at = ar.atom_id(a);
                let lit = if st.get(a) { at } else { ar.not(at) };
                desc = ar.and(desc, lit);
            }
            let mut wrapped = desc;
            for _ in 0..i {
                wrapped = ar.next(wrapped);
            }
            conj = ar.and(conj, wrapped);
        }
        let naive = is_satisfiable(&mut ar, conj).unwrap().satisfiable;
        prop_assert_eq!(fast, naive,
            "Lemma 4.2 pipeline disagrees with naive encoding on {}",
            ar.display(f));
    }

    #[test]
    fn parse_display_roundtrip(s in shape(4)) {
        let mut ar = Arena::new();
        let f = s.build(&mut ar);
        let printed = format!("{}", ar.display(f));
        let g = parse(&mut ar, &printed).unwrap();
        prop_assert_eq!(f, g, "roundtrip failed: {}", printed);
    }

    #[test]
    fn finite_eval_agrees_with_lasso_on_safety_violations(
        s in shape(3),
        pfx in proptest::collection::vec(0u8..8, 1..5),
    ) {
        // If progression reaches ⊥ on a finite trace, no lasso extending
        // that trace may satisfy the formula.
        let mut ar = Arena::new();
        let atoms = register_atoms(&mut ar);
        let f = s.build(&mut ar);
        let trace: Vec<PropState> =
            pfx.iter().map(|&b| state_from_bits(b, &atoms)).collect();
        if let Some(k) =
            ticc_ptl::safety::find_bad_prefix(&mut ar, f, &trace).unwrap()
        {
            let l = Lasso::new(trace[..=k].to_vec(), vec![PropState::new()]);
            prop_assert!(!l.eval(&ar, f).unwrap());
        }
    }

    #[test]
    fn simplify_preserves_semantics_and_size(
        s in shape(4),
        pfx in proptest::collection::vec(0u8..8, 0..3),
        cyc in proptest::collection::vec(0u8..8, 1..4),
    ) {
        let mut ar = Arena::new();
        let atoms = register_atoms(&mut ar);
        let f = s.build(&mut ar);
        let g = ticc_ptl::simplify::simplify(&mut ar, f);
        prop_assert!(ar.tree_size(g) <= ar.tree_size(f),
            "simplify must not grow the formula");
        let l = lasso_from(&pfx, &cyc, &atoms);
        prop_assert_eq!(
            l.eval(&ar, f).unwrap(),
            l.eval(&ar, g).unwrap(),
            "simplify changed semantics of {}",
            ar.display(f)
        );
    }
}
