//! Satisfiability and prefix extension — the full Lemma 4.2 procedure.
//!
//! [`is_satisfiable`] decides satisfiability of a future PTL formula and
//! returns an ultimately-periodic witness when one exists. [`extends`]
//! answers the question at the heart of the paper's Theorem 4.2: *can a
//! finite sequence of propositional states be extended to an infinite
//! model of the formula?* — by first rewriting the formula through the
//! prefix (phase 1, [`crate::progression`]) and then testing the residue
//! for satisfiability (phase 2).

use crate::arena::{Arena, FormulaId};
use crate::buchi::Buchi;
use crate::emptiness::find_fair_lasso;
use crate::lasso::Lasso;
use crate::nnf::NnfError;
use crate::progression::progress_trace;
use crate::tableau::{Tableau, TableauError};
use crate::trace::PropState;

/// Which engine to use for phase 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SatSolver {
    /// On-the-fly GPVW generalized-Büchi construction, preceded by the
    /// constant-word safety probe (production).
    #[default]
    Buchi,
    /// GPVW without the safety probe: always builds the automaton.
    /// Used by the scaling experiments to expose the worst-case
    /// exponential behaviour that the probe usually hides.
    BuchiExhaustive,
    /// Classic closure-subset tableau (baseline/oracle; exponential
    /// always, capped closure size).
    Tableau,
}

/// Statistics from a satisfiability run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SatStats {
    /// Automaton/tableau states materialised.
    pub states: usize,
    /// Tree size of the formula actually solved (after progression, for
    /// [`extends`]).
    pub formula_size: usize,
    /// States consumed by progression before phase 2.
    pub prefix_len: usize,
}

/// Result of a satisfiability or extension query.
#[derive(Debug, Clone)]
pub struct SatResult {
    /// Whether a model (an extension, for [`extends`]) exists.
    pub satisfiable: bool,
    /// An ultimately-periodic witness when satisfiable. For [`extends`]
    /// this is a witness for the *suffix after the prefix*.
    pub witness: Option<Lasso>,
    /// Run statistics.
    pub stats: SatStats,
}

/// Errors from the satisfiability facade.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SatError {
    /// Past connectives are outside the decidable pipeline.
    Past,
    /// The tableau baseline refused the formula.
    Tableau(TableauError),
}

impl std::fmt::Display for SatError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SatError::Past => write!(f, "past connectives are not supported"),
            SatError::Tableau(e) => write!(f, "tableau: {e}"),
        }
    }
}

impl std::error::Error for SatError {}

impl From<NnfError> for SatError {
    fn from(_: NnfError) -> Self {
        SatError::Past
    }
}

impl From<TableauError> for SatError {
    fn from(e: TableauError) -> Self {
        SatError::Tableau(e)
    }
}

/// Decides satisfiability with the default (Büchi) engine.
pub fn is_satisfiable(arena: &mut Arena, f: FormulaId) -> Result<SatResult, SatError> {
    is_satisfiable_with(arena, f, SatSolver::Buchi)
}

/// For an **until-free** NNF formula (the syntactically safe fragment —
/// which every grounded universal safety constraint falls into), a word
/// is a model iff no finite prefix progresses the formula to `⊥`
/// (safety properties fail only via bad prefixes). So a constant word
/// `labelω` whose progression cycles through non-`⊥` residues is a
/// model. This probe tries the all-false and all-true constant words —
/// which satisfy typical integrity-constraint residues — before paying
/// for the automaton construction.
fn probe_safety_constant_words(arena: &mut Arena, f: FormulaId) -> Option<Lasso> {
    let nnf = crate::nnf::nnf(arena, f).ok()?;
    if has_until(arena, nnf) {
        return None;
    }
    let atoms = arena.atoms_of(nnf);
    let all_false = PropState::new();
    let all_true = PropState::from_true_atoms(atoms.iter().copied());
    let (tru, fls) = (arena.tru(), arena.fls());
    let size_cap = 8 * arena.dag_size(nnf) + 64;
    'words: for label in [all_false, all_true] {
        let mut seen = std::collections::HashSet::new();
        let mut cur = nnf;
        for _ in 0..64 {
            if cur == fls {
                continue 'words;
            }
            if cur == tru || !seen.insert(cur) {
                // Residues cycle without reaching ⊥: labelω is a model.
                return Some(Lasso::new(vec![], vec![label]));
            }
            if arena.dag_size(cur) > size_cap {
                // Residues are growing instead of cycling: give up and
                // let the automaton decide.
                continue 'words;
            }
            cur = match crate::progression::progress(arena, cur, &label) {
                Ok(next) => next,
                Err(_) => return None,
            };
        }
    }
    None
}

fn has_until(arena: &Arena, f: FormulaId) -> bool {
    use crate::arena::Node;
    let mut seen = std::collections::HashSet::new();
    let mut stack = vec![f];
    while let Some(id) = stack.pop() {
        if !seen.insert(id) {
            continue;
        }
        match arena.node(id) {
            Node::Until(_, _) => return true,
            Node::True | Node::False | Node::Atom(_) => {}
            Node::Not(g) | Node::Next(g) | Node::Prev(g) => stack.push(g),
            Node::And(a, b) | Node::Or(a, b) | Node::Release(a, b) | Node::Since(a, b) => {
                stack.push(a);
                stack.push(b);
            }
        }
    }
    false
}

/// Decides satisfiability with a chosen engine.
pub fn is_satisfiable_with(
    arena: &mut Arena,
    f: FormulaId,
    solver: SatSolver,
) -> Result<SatResult, SatError> {
    let formula_size = arena.tree_size(f);
    if solver == SatSolver::Buchi {
        if let Some(witness) = probe_safety_constant_words(arena, f) {
            return Ok(SatResult {
                satisfiable: true,
                witness: Some(witness),
                stats: SatStats {
                    states: 0,
                    formula_size,
                    prefix_len: 0,
                },
            });
        }
    }
    match solver {
        SatSolver::Buchi | SatSolver::BuchiExhaustive => {
            let b = Buchi::build(arena, f)?;
            let (graph, labels) = b.to_fair_graph(arena);
            let stats = SatStats {
                states: b.len(),
                formula_size,
                prefix_len: 0,
            };
            match find_fair_lasso(&graph) {
                Some(l) => Ok(SatResult {
                    satisfiable: true,
                    witness: Some(buchi_witness(&l, &labels)),
                    stats,
                }),
                None => Ok(SatResult {
                    satisfiable: false,
                    witness: None,
                    stats,
                }),
            }
        }
        SatSolver::Tableau => {
            let t = Tableau::build(arena, f)?;
            let (graph, labels) = t.to_fair_graph(arena);
            let stats = SatStats {
                states: t.len(),
                formula_size,
                prefix_len: 0,
            };
            match find_fair_lasso(&graph) {
                Some(l) => {
                    let prefix = l.stem.iter().map(|&n| labels[n as usize].clone()).collect();
                    let cycle = l
                        .cycle
                        .iter()
                        .map(|&n| labels[n as usize].clone())
                        .collect();
                    Ok(SatResult {
                        satisfiable: true,
                        witness: Some(Lasso::new(prefix, cycle)),
                        stats,
                    })
                }
                None => Ok(SatResult {
                    satisfiable: false,
                    witness: None,
                    stats,
                }),
            }
        }
    }
}

/// Builds the ultimately-periodic witness from a fair lasso and the
/// Büchi automaton's per-edge labels.
///
/// Labels live on edges (see [`crate::buchi`]), so the first traversal
/// of the cycle (entered from the stem or from `INIT`) may be labelled
/// differently from subsequent traversals (entered via the wrap-around
/// edge). The witness therefore unrolls the first cycle pass into the
/// prefix and uses the wrap-edge labels for the repeated part.
fn buchi_witness(l: &crate::emptiness::FairLasso, labels: &crate::buchi::EdgeLabels) -> Lasso {
    let mut path: Vec<u32> = l.stem.clone();
    path.extend(&l.cycle);
    let prefix: Vec<PropState> = (0..path.len()).map(|i| labels.at(&path, i)).collect();
    let m = l.cycle.len();
    let last = *l.cycle.last().expect("cycle is non-empty");
    let mut cycle = Vec::with_capacity(m);
    cycle.push(labels.edge[&(last, l.cycle[0])].clone());
    for i in 1..m {
        cycle.push(labels.edge[&(l.cycle[i - 1], l.cycle[i])].clone());
    }
    Lasso::new(prefix, cycle)
}

/// Decides whether the finite state sequence `prefix` can be extended to
/// an infinite model of `f` (Lemma 4.2: phase 1 rewriting + phase 2
/// satisfiability). The witness, when present, describes the suffix.
pub fn extends(
    arena: &mut Arena,
    prefix: &[PropState],
    f: FormulaId,
) -> Result<SatResult, SatError> {
    extends_with(arena, prefix, f, SatSolver::Buchi)
}

/// [`extends`] with a chosen phase-2 engine.
pub fn extends_with(
    arena: &mut Arena,
    prefix: &[PropState],
    f: FormulaId,
    solver: SatSolver,
) -> Result<SatResult, SatError> {
    let residue = progress_trace(arena, f, prefix)?;
    let mut r = is_satisfiable_with(arena, residue, solver)?;
    r.stats.prefix_len = prefix.len();
    Ok(r)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arena::AtomId;

    fn st(atoms: &[AtomId]) -> PropState {
        PropState::from_true_atoms(atoms.iter().copied())
    }

    #[test]
    fn witness_is_verified_by_lasso_eval() {
        let mut ar = Arena::new();
        let p = ar.atom("p");
        let q = ar.atom("q");
        let u = ar.until(p, q);
        let x = ar.next(p);
        let f = ar.and(u, x);
        let r = is_satisfiable(&mut ar, f).unwrap();
        assert!(r.satisfiable);
        let w = r.witness.unwrap();
        assert!(w.eval(&ar, f).unwrap(), "witness must satisfy the formula");
    }

    #[test]
    fn extends_respects_prefix() {
        let mut ar = Arena::new();
        let p = ar.atom("p");
        let pa = ar.find_atom("p").unwrap();
        let g = ar.always(p);
        // Good prefix: extension exists.
        let good = vec![st(&[pa]), st(&[pa])];
        assert!(extends(&mut ar, &good, g).unwrap().satisfiable);
        // Violated prefix: no extension can repair □p.
        let bad = vec![st(&[pa]), st(&[])];
        assert!(!extends(&mut ar, &bad, g).unwrap().satisfiable);
    }

    #[test]
    fn extends_with_pending_obligation() {
        let mut ar = Arena::new();
        let p = ar.atom("p");
        let q = ar.atom("q");
        let pa = ar.find_atom("p").unwrap();
        let u = ar.until(p, q);
        // p p — until not yet discharged but extensible.
        let pfx = vec![st(&[pa]), st(&[pa])];
        let r = extends(&mut ar, &pfx, u).unwrap();
        assert!(r.satisfiable);
        // p ∅ — chain broken, not extensible.
        let bad = vec![st(&[pa]), st(&[])];
        assert!(!extends(&mut ar, &bad, u).unwrap().satisfiable);
    }

    #[test]
    fn engines_agree_via_extends() {
        let mut ar = Arena::new();
        let p = ar.atom("p");
        let q = ar.atom("q");
        let (pa, qa) = (ar.find_atom("p").unwrap(), ar.find_atom("q").unwrap());
        let u = ar.until(p, q);
        let nq = ar.not(q);
        let gnq = ar.always(nq);
        let f = ar.and(u, gnq);
        for pfx in [vec![], vec![st(&[pa])], vec![st(&[pa, qa])]] {
            let a = extends_with(&mut ar, &pfx, f, SatSolver::Buchi).unwrap();
            let b = extends_with(&mut ar, &pfx, f, SatSolver::Tableau).unwrap();
            assert_eq!(a.satisfiable, b.satisfiable, "prefix len {}", pfx.len());
        }
        let r = extends(&mut ar, &[st(&[pa])], u).unwrap();
        assert_eq!(r.stats.prefix_len, 1);
    }

    #[test]
    fn empty_prefix_is_plain_sat() {
        let mut ar = Arena::new();
        let p = ar.atom("p");
        let np = ar.not(p);
        let f = ar.and(p, np);
        assert!(!extends(&mut ar, &[], f).unwrap().satisfiable);
    }
}
