//! Text syntax for PTL formulas.
//!
//! Grammar (loosest binding first):
//!
//! ```text
//! formula := iff
//! iff     := impl ( "<->" impl )*
//! impl    := or ( "->" impl )?            // right associative
//! or      := and ( "|" and )*
//! and     := temp ( "&" temp )*
//! temp    := unary ( ("U" | "R" | "S") temp )?   // right associative
//! unary   := ("!" | "X" | "F" | "G" | "Y" | "O" | "H") unary | primary
//! primary := "true" | "false" | ident | string | "(" formula ")"
//! ```
//!
//! `X ○`, `F ◇`, `G □`, `Y ●`, `O ◈` (once), `H ▣` (historically);
//! `U`/`R`/`S` are until/release/since. Identifiers are
//! `[A-Za-z_][A-Za-z0-9_']*` except the reserved single letters; atoms
//! with arbitrary names (e.g. the grounder's `p(1,z2)`) can be written as
//! double-quoted strings.

use crate::arena::{Arena, FormulaId};
use std::fmt;

/// A parse error with a byte offset into the input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset of the offending token.
    pub at: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at byte {}: {}", self.at, self.message)
    }
}

impl std::error::Error for ParseError {}

#[derive(Debug, Clone, PartialEq, Eq)]
enum Tok {
    Ident(String),
    Str(String),
    True,
    False,
    Not,
    And,
    Or,
    Implies,
    Iff,
    LParen,
    RParen,
    Next,
    Finally,
    Globally,
    Until,
    Release,
    Prev,
    Since,
    Once,
    Hist,
    Eof,
}

struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Self {
        Self {
            src: src.as_bytes(),
            pos: 0,
        }
    }

    fn error(&self, message: impl Into<String>) -> ParseError {
        ParseError {
            at: self.pos,
            message: message.into(),
        }
    }

    fn next_token(&mut self) -> Result<(usize, Tok), ParseError> {
        while self.pos < self.src.len() && self.src[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
        let start = self.pos;
        if self.pos >= self.src.len() {
            return Ok((start, Tok::Eof));
        }
        let c = self.src[self.pos];
        let tok = match c {
            b'(' => {
                self.pos += 1;
                Tok::LParen
            }
            b')' => {
                self.pos += 1;
                Tok::RParen
            }
            b'!' => {
                self.pos += 1;
                Tok::Not
            }
            b'&' => {
                self.pos += 1;
                if self.src.get(self.pos) == Some(&b'&') {
                    self.pos += 1;
                }
                Tok::And
            }
            b'|' => {
                self.pos += 1;
                if self.src.get(self.pos) == Some(&b'|') {
                    self.pos += 1;
                }
                Tok::Or
            }
            b'-' => {
                if self.src.get(self.pos + 1) == Some(&b'>') {
                    self.pos += 2;
                    Tok::Implies
                } else {
                    return Err(self.error("expected '->'"));
                }
            }
            b'<' => {
                if self.src.get(self.pos + 1) == Some(&b'-')
                    && self.src.get(self.pos + 2) == Some(&b'>')
                {
                    self.pos += 3;
                    Tok::Iff
                } else {
                    return Err(self.error("expected '<->'"));
                }
            }
            b'"' => {
                self.pos += 1;
                let s = self.pos;
                while self.pos < self.src.len() && self.src[self.pos] != b'"' {
                    self.pos += 1;
                }
                if self.pos >= self.src.len() {
                    return Err(self.error("unterminated string atom"));
                }
                let name = std::str::from_utf8(&self.src[s..self.pos])
                    .map_err(|_| self.error("invalid utf-8 in atom"))?
                    .to_owned();
                self.pos += 1;
                Tok::Str(name)
            }
            c if c.is_ascii_alphabetic() || c == b'_' => {
                let s = self.pos;
                while self.pos < self.src.len()
                    && (self.src[self.pos].is_ascii_alphanumeric()
                        || self.src[self.pos] == b'_'
                        || self.src[self.pos] == b'\'')
                {
                    self.pos += 1;
                }
                let word = std::str::from_utf8(&self.src[s..self.pos]).unwrap();
                match word {
                    "true" => Tok::True,
                    "false" => Tok::False,
                    "X" => Tok::Next,
                    "F" => Tok::Finally,
                    "G" => Tok::Globally,
                    "U" => Tok::Until,
                    "R" => Tok::Release,
                    "Y" => Tok::Prev,
                    "S" => Tok::Since,
                    "O" => Tok::Once,
                    "H" => Tok::Hist,
                    _ => Tok::Ident(word.to_owned()),
                }
            }
            _ => return Err(self.error(format!("unexpected character '{}'", c as char))),
        };
        Ok((start, tok))
    }
}

struct Parser<'a> {
    lexer: Lexer<'a>,
    look: (usize, Tok),
    arena: &'a mut Arena,
}

impl<'a> Parser<'a> {
    fn new(src: &'a str, arena: &'a mut Arena) -> Result<Self, ParseError> {
        let mut lexer = Lexer::new(src);
        let look = lexer.next_token()?;
        Ok(Self { lexer, look, arena })
    }

    fn bump(&mut self) -> Result<Tok, ParseError> {
        let next = self.lexer.next_token()?;
        Ok(std::mem::replace(&mut self.look, next).1)
    }

    fn error_here(&self, message: impl Into<String>) -> ParseError {
        ParseError {
            at: self.look.0,
            message: message.into(),
        }
    }

    fn formula(&mut self) -> Result<FormulaId, ParseError> {
        let mut left = self.implication()?;
        while self.look.1 == Tok::Iff {
            self.bump()?;
            let right = self.implication()?;
            left = self.arena.iff(left, right);
        }
        Ok(left)
    }

    fn implication(&mut self) -> Result<FormulaId, ParseError> {
        let left = self.or()?;
        if self.look.1 == Tok::Implies {
            self.bump()?;
            let right = self.implication()?;
            return Ok(self.arena.implies(left, right));
        }
        Ok(left)
    }

    fn or(&mut self) -> Result<FormulaId, ParseError> {
        let mut left = self.and()?;
        while self.look.1 == Tok::Or {
            self.bump()?;
            let right = self.and()?;
            left = self.arena.or(left, right);
        }
        Ok(left)
    }

    fn and(&mut self) -> Result<FormulaId, ParseError> {
        let mut left = self.temporal()?;
        while self.look.1 == Tok::And {
            self.bump()?;
            let right = self.temporal()?;
            left = self.arena.and(left, right);
        }
        Ok(left)
    }

    fn temporal(&mut self) -> Result<FormulaId, ParseError> {
        let left = self.unary()?;
        match self.look.1 {
            Tok::Until => {
                self.bump()?;
                let right = self.temporal()?;
                Ok(self.arena.until(left, right))
            }
            Tok::Release => {
                self.bump()?;
                let right = self.temporal()?;
                Ok(self.arena.release(left, right))
            }
            Tok::Since => {
                self.bump()?;
                let right = self.temporal()?;
                Ok(self.arena.since(left, right))
            }
            _ => Ok(left),
        }
    }

    fn unary(&mut self) -> Result<FormulaId, ParseError> {
        match self.look.1 {
            Tok::Not => {
                self.bump()?;
                let f = self.unary()?;
                Ok(self.arena.not(f))
            }
            Tok::Next => {
                self.bump()?;
                let f = self.unary()?;
                Ok(self.arena.next(f))
            }
            Tok::Finally => {
                self.bump()?;
                let f = self.unary()?;
                Ok(self.arena.eventually(f))
            }
            Tok::Globally => {
                self.bump()?;
                let f = self.unary()?;
                Ok(self.arena.always(f))
            }
            Tok::Prev => {
                self.bump()?;
                let f = self.unary()?;
                Ok(self.arena.prev(f))
            }
            Tok::Once => {
                self.bump()?;
                let f = self.unary()?;
                Ok(self.arena.once(f))
            }
            Tok::Hist => {
                self.bump()?;
                let f = self.unary()?;
                Ok(self.arena.historically(f))
            }
            _ => self.primary(),
        }
    }

    fn primary(&mut self) -> Result<FormulaId, ParseError> {
        match self.bump()? {
            Tok::True => Ok(self.arena.tru()),
            Tok::False => Ok(self.arena.fls()),
            Tok::Ident(name) | Tok::Str(name) => Ok(self.arena.atom(&name)),
            Tok::LParen => {
                let f = self.formula()?;
                match self.bump()? {
                    Tok::RParen => Ok(f),
                    _ => Err(self.error_here("expected ')'")),
                }
            }
            other => Err(self.error_here(format!("unexpected token {other:?}"))),
        }
    }
}

/// Parses a PTL formula from the crate's text syntax.
pub fn parse(arena: &mut Arena, src: &str) -> Result<FormulaId, ParseError> {
    let mut p = Parser::new(src, arena)?;
    let f = p.formula()?;
    if p.look.1 != Tok::Eof {
        return Err(p.error_here("trailing input after formula"));
    }
    Ok(f)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(src: &str) -> String {
        let mut ar = Arena::new();
        let f = parse(&mut ar, src).unwrap();
        format!("{}", ar.display(f))
    }

    #[test]
    fn atoms_and_constants() {
        assert_eq!(roundtrip("p"), "p");
        assert_eq!(roundtrip("true"), "true");
        assert_eq!(roundtrip("false"), "false");
        assert_eq!(roundtrip("\"p(1,z2)\""), "p(1,z2)");
    }

    #[test]
    fn precedence() {
        // & binds tighter than |, temporal tighter than &.
        let mut ar = Arena::new();
        let f = parse(&mut ar, "a | b & c U d").unwrap();
        let a = ar.atom("a");
        let b = ar.atom("b");
        let c = ar.atom("c");
        let d = ar.atom("d");
        let u = ar.until(c, d);
        let band = ar.and(b, u);
        let expect = ar.or(a, band);
        assert_eq!(f, expect);
    }

    #[test]
    fn implication_right_assoc() {
        let mut ar = Arena::new();
        let f = parse(&mut ar, "a -> b -> c").unwrap();
        let a = ar.atom("a");
        let b = ar.atom("b");
        let c = ar.atom("c");
        let bc = ar.implies(b, c);
        let expect = ar.implies(a, bc);
        assert_eq!(f, expect);
    }

    #[test]
    fn temporal_sugar() {
        let mut ar = Arena::new();
        let f = parse(&mut ar, "G (p -> F q)").unwrap();
        let p = ar.atom("p");
        let q = ar.atom("q");
        let fq = ar.eventually(q);
        let imp = ar.implies(p, fq);
        let expect = ar.always(imp);
        assert_eq!(f, expect);
    }

    #[test]
    fn past_ops_parse() {
        let mut ar = Arena::new();
        let f = parse(&mut ar, "G (fill -> O sub)").unwrap();
        assert!(ar.has_past(f));
        assert!(ar.has_future(f));
        let g = parse(&mut ar, "a S b").unwrap();
        let a = ar.atom("a");
        let b = ar.atom("b");
        assert_eq!(g, ar.since(a, b));
    }

    #[test]
    fn parse_display_roundtrip_is_stable() {
        for src in [
            "G (p U q)",
            "F p & G q | !r",
            "X X p",
            "p R q",
            "a & b & c",
            "!(p & q)",
        ] {
            let mut ar = Arena::new();
            let f1 = parse(&mut ar, src).unwrap();
            let printed = format!("{}", ar.display(f1));
            let f2 = parse(&mut ar, &printed).unwrap();
            assert_eq!(f1, f2, "roundtrip failed for {src} -> {printed}");
        }
    }

    #[test]
    fn errors_carry_position() {
        let mut ar = Arena::new();
        let e = parse(&mut ar, "p & ").unwrap_err();
        assert!(e.at >= 4);
        let e2 = parse(&mut ar, "(p").unwrap_err();
        assert!(e2.message.contains("')'"));
        let e3 = parse(&mut ar, "p q").unwrap_err();
        assert!(e3.message.contains("trailing"));
        let e4 = parse(&mut ar, "\"unterminated").unwrap_err();
        assert!(e4.message.contains("unterminated"));
    }

    #[test]
    fn double_symbol_operators() {
        assert_eq!(roundtrip("a && b"), "a & b");
        assert_eq!(roundtrip("a || b"), "a | b");
    }
}
