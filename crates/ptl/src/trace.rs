//! Propositional states and finite-trace evaluation.
//!
//! A *propositional state* is a mapping from the propositional letters to
//! `{true, false}` (Section 2 of the paper); a finite trace is a sequence
//! of such states, the propositional image `w_D` of a finite-time
//! temporal database. Evaluation over finite traces supports the past
//! connectives (used for `□ψ`-with-`ψ`-past monitoring, Proposition 2.1)
//! and a *strong* finite semantics for the future connectives (a witness
//! must exist inside the trace), used as a testing oracle.

use crate::arena::{Arena, AtomId, FormulaId, Node};
use std::collections::HashMap;

/// A truth assignment to the propositional letters, stored as a bitset.
///
/// Letters not explicitly set are false, matching the paper's convention
/// that predicates over irrelevant elements are false.
///
/// The representation is canonical — trailing all-zero words are
/// trimmed on clear — so two states are `==` (and hash alike) exactly
/// when they assign the same truth values, regardless of whether they
/// were built fresh or patched in place from a wider predecessor.
#[derive(Clone, PartialEq, Eq, Hash, Default, Debug)]
pub struct PropState {
    bits: Vec<u64>,
}

impl PropState {
    /// An all-false state.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds a state from the atoms that should be true.
    pub fn from_true_atoms<I: IntoIterator<Item = AtomId>>(atoms: I) -> Self {
        let mut s = Self::new();
        for a in atoms {
            s.set(a, true);
        }
        s
    }

    /// Sets the truth value of a letter.
    pub fn set(&mut self, a: AtomId, v: bool) {
        let (w, b) = (a.index() / 64, a.index() % 64);
        if w >= self.bits.len() {
            if !v {
                return;
            }
            self.bits.resize(w + 1, 0);
        }
        if v {
            self.bits[w] |= 1 << b;
        } else {
            self.bits[w] &= !(1 << b);
            while self.bits.last() == Some(&0) {
                self.bits.pop();
            }
        }
    }

    /// Gets the truth value of a letter (false if never set).
    #[inline]
    pub fn get(&self, a: AtomId) -> bool {
        let (w, b) = (a.index() / 64, a.index() % 64);
        self.bits.get(w).is_some_and(|&x| x >> b & 1 == 1)
    }

    /// The raw bitset words, 64 letters per word, lowest ids first.
    /// Canonical: never ends in an all-zero word.
    pub fn words(&self) -> &[u64] {
        &self.bits
    }

    /// Rebuilds a state from raw bitset words (the [`Self::words`]
    /// layout). Trailing all-zero words are trimmed so the result is
    /// canonical regardless of the input.
    pub fn from_words(mut bits: Vec<u64>) -> Self {
        while bits.last() == Some(&0) {
            bits.pop();
        }
        Self { bits }
    }

    /// Iterates over the letters that are true, in increasing id order.
    pub fn true_atoms(&self) -> impl Iterator<Item = AtomId> + '_ {
        self.bits.iter().enumerate().flat_map(|(w, &word)| {
            (0..64)
                .filter(move |b| word >> b & 1 == 1)
                .map(move |b| AtomId((w * 64 + b) as u32))
        })
    }

    /// Number of true letters.
    pub fn count_true(&self) -> usize {
        self.bits.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Renders the state as the set of true letter names.
    pub fn display<'a>(&'a self, arena: &'a Arena) -> String {
        let names: Vec<&str> = self.true_atoms().map(|a| arena.atom_name(a)).collect();
        format!("{{{}}}", names.join(", "))
    }
}

/// Evaluates `f` at position `t` of the finite trace `w` (`t < w.len()`).
///
/// * Past connectives use the paper's semantics verbatim (they only look
///   at positions `0..=t`, which the trace contains).
/// * Future connectives use the strong finite semantics: `○A` is false at
///   the last position; `A until B` needs a `B`-witness within the trace;
///   `A release B` holds if `B` holds up to the first `A∧B` position or
///   through the end of the trace (weak, as the dual of until).
///
/// # Panics
/// Panics if `t >= w.len()` or `w` is empty.
pub fn eval_finite(arena: &Arena, f: FormulaId, w: &[PropState], t: usize) -> bool {
    assert!(t < w.len(), "position out of range");
    let mut memo: HashMap<(FormulaId, usize), bool> = HashMap::new();
    eval_at(arena, f, w, t, &mut memo)
}

fn eval_at(
    arena: &Arena,
    f: FormulaId,
    w: &[PropState],
    t: usize,
    memo: &mut HashMap<(FormulaId, usize), bool>,
) -> bool {
    if let Some(&v) = memo.get(&(f, t)) {
        return v;
    }
    let v = match arena.node(f) {
        Node::True => true,
        Node::False => false,
        Node::Atom(a) => w[t].get(a),
        Node::Not(g) => !eval_at(arena, g, w, t, memo),
        Node::And(a, b) => eval_at(arena, a, w, t, memo) && eval_at(arena, b, w, t, memo),
        Node::Or(a, b) => eval_at(arena, a, w, t, memo) || eval_at(arena, b, w, t, memo),
        Node::Next(g) => t + 1 < w.len() && eval_at(arena, g, w, t + 1, memo),
        Node::Until(a, b) => {
            let mut ok = false;
            for s in t..w.len() {
                if eval_at(arena, b, w, s, memo) {
                    ok = true;
                    break;
                }
                if !eval_at(arena, a, w, s, memo) {
                    break;
                }
            }
            ok
        }
        Node::Release(a, b) => {
            // Dual of until on the finite trace: ¬(¬a U ¬b).
            let mut ok = true;
            for s in t..w.len() {
                if !eval_at(arena, b, w, s, memo) {
                    ok = false;
                    break;
                }
                if eval_at(arena, a, w, s, memo) {
                    break;
                }
            }
            ok
        }
        Node::Prev(g) => t > 0 && eval_at(arena, g, w, t - 1, memo),
        Node::Since(a, b) => {
            let mut ok = false;
            for s in (0..=t).rev() {
                if eval_at(arena, b, w, s, memo) {
                    ok = true;
                    break;
                }
                if !eval_at(arena, a, w, s, memo) {
                    break;
                }
            }
            ok
        }
    };
    memo.insert((f, t), v);
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trace(arena: &mut Arena, spec: &[&[&str]]) -> Vec<PropState> {
        spec.iter()
            .map(|names| {
                let atoms: Vec<AtomId> = names.iter().map(|n| arena.intern_atom(n)).collect();
                PropState::from_true_atoms(atoms)
            })
            .collect()
    }

    #[test]
    fn bitset_roundtrip() {
        let mut s = PropState::new();
        s.set(AtomId(3), true);
        s.set(AtomId(100), true);
        assert!(s.get(AtomId(3)));
        assert!(s.get(AtomId(100)));
        assert!(!s.get(AtomId(4)));
        assert_eq!(s.count_true(), 2);
        s.set(AtomId(3), false);
        assert!(!s.get(AtomId(3)));
        let trues: Vec<_> = s.true_atoms().collect();
        assert_eq!(trues, vec![AtomId(100)]);
    }

    #[test]
    fn clearing_canonicalises_representation() {
        // A state patched down from a wider predecessor must compare
        // equal to one built fresh — the monitor's incremental encoding
        // relies on this.
        let mut wide = PropState::new();
        wide.set(AtomId(2), true);
        wide.set(AtomId(200), true);
        wide.set(AtomId(200), false);
        let mut fresh = PropState::new();
        fresh.set(AtomId(2), true);
        assert_eq!(wide, fresh);
        let empty = PropState::new();
        let mut cleared = PropState::new();
        cleared.set(AtomId(500), true);
        cleared.set(AtomId(500), false);
        assert_eq!(cleared, empty);
    }

    #[test]
    fn unset_beyond_capacity_is_noop() {
        let mut s = PropState::new();
        s.set(AtomId(500), false);
        assert!(!s.get(AtomId(500)));
        assert_eq!(s.count_true(), 0);
    }

    #[test]
    fn until_on_finite_trace() {
        let mut ar = Arena::new();
        let w = trace(&mut ar, &[&["p"], &["p"], &["q"]]);
        let p = ar.atom("p");
        let q = ar.atom("q");
        let u = ar.until(p, q);
        assert!(eval_finite(&ar, u, &w, 0));
        assert!(eval_finite(&ar, u, &w, 2));
        // No q-witness if the trace stops early.
        assert!(!eval_finite(&ar, u, &w[..2], 0));
    }

    #[test]
    fn next_is_strong_at_trace_end() {
        let mut ar = Arena::new();
        let w = trace(&mut ar, &[&["p"], &["p"]]);
        let p = ar.atom("p");
        let x = ar.next(p);
        assert!(eval_finite(&ar, x, &w, 0));
        assert!(!eval_finite(&ar, x, &w, 1));
    }

    #[test]
    fn release_is_weak() {
        let mut ar = Arena::new();
        let w = trace(&mut ar, &[&["q"], &["q"], &["q"]]);
        let p = ar.atom("p");
        let q = ar.atom("q");
        let r = ar.release(p, q); // p never happens, q holds throughout
        assert!(eval_finite(&ar, r, &w, 0));
        let g = ar.always(q);
        assert!(eval_finite(&ar, g, &w, 0));
    }

    #[test]
    fn past_connectives_match_paper_semantics() {
        let mut ar = Arena::new();
        let w = trace(&mut ar, &[&["b"], &["a"], &["a"]]);
        let a = ar.atom("a");
        let b = ar.atom("b");
        // a since b: some s ≤ t with b at s and a on (s, t].
        let s = ar.since(a, b);
        assert!(eval_finite(&ar, s, &w, 0)); // s = t = 0
        assert!(eval_finite(&ar, s, &w, 2));
        // prev: strong at instant 0.
        let y = ar.prev(b);
        assert!(!eval_finite(&ar, y, &w, 0));
        assert!(eval_finite(&ar, y, &w, 1));
        // once / historically.
        let ob = ar.once(b);
        assert!(eval_finite(&ar, ob, &w, 2));
        let t = ar.tru();
        let pt = ar.prev(t);
        assert!(!eval_finite(&ar, pt, &w, 0), "●⊤ is false at instant 0");
        assert!(eval_finite(&ar, pt, &w, 1));
    }

    #[test]
    fn since_broken_chain() {
        let mut ar = Arena::new();
        let w = trace(&mut ar, &[&["b"], &[], &["a"]]);
        let a = ar.atom("a");
        let b = ar.atom("b");
        let s = ar.since(a, b);
        // At t=2: b last held at 0, but a fails at 1 ∈ (0, 2].
        assert!(!eval_finite(&ar, s, &w, 2));
    }
}
