//! Propositional linear-time temporal logic (PTL).
//!
//! This crate implements the propositional machinery that Section 4 of
//! Chomicki & Niwiński, *On the Feasibility of Checking Temporal Integrity
//! Constraints* (PODS 1993), reduces first-order temporal integrity
//! checking to:
//!
//! * a hash-consed formula arena with constant-folding constructors
//!   ([`Arena`]),
//! * negation normal form ([`nnf`]),
//! * **prefix rewriting / progression** through a sequence of propositional
//!   states — phase 1 of the paper's Lemma 4.2, after Sistla & Wolfson
//!   ([`progression`]),
//! * **satisfiability** — phase 2 of Lemma 4.2 — by two independent
//!   engines: the classic closure-set tableau of Sistla & Clarke
//!   ([`tableau`]) and an on-the-fly construction of a generalized Büchi
//!   automaton ([`buchi`]) with SCC-based emptiness ([`emptiness`]),
//! * the combined *prefix extension* decision ([`sat`]): can a finite
//!   sequence of propositional states be extended to an infinite model of
//!   a formula?
//! * evaluation over finite traces (including the past operators `●` and
//!   `since`) and over ultimately-periodic (lasso) words, used as testing
//!   oracles and to exhibit witnesses ([`trace`], [`lasso`]),
//! * the syntactically safe fragment and bad-prefix detection
//!   ([`safety`]), and rewriting-based simplification ([`simplify`]),
//! * explicit safety automata compiled once per residue *template*
//!   (shape modulo letter renaming), with per-state sat verdicts
//!   precomputed, for dense `u32`-state online stepping
//!   ([`automaton`]),
//! * structured-key atom interning shared by the grounding and the
//!   state encoding ([`interner`]),
//! * a small text syntax for formulas ([`parser`]).
//!
//! Time is isomorphic to the natural numbers; models are infinite
//! sequences of propositional states, exactly as in Section 2 of the
//! paper.

pub mod arena;
pub mod automaton;
pub mod buchi;
pub mod closure;
pub mod emptiness;
pub mod interner;
pub mod lasso;
pub mod nnf;
pub mod parser;
pub mod progression;
pub mod safety;
pub mod sat;
pub mod simplify;
pub mod tableau;
pub mod trace;

pub use arena::{Arena, AtomId, FormulaId, Node};
pub use automaton::{CompileLimits, SafetyAutomaton, TemplateKey};
pub use buchi::{Buchi, BuchiNode};
pub use interner::{AtomInterner, ShardedInterner};
pub use lasso::Lasso;
pub use progression::progress;
pub use sat::{extends, is_satisfiable, SatResult, SatSolver};
pub use trace::PropState;
