//! On-the-fly tableau construction (GPVW) to a generalized Büchi
//! automaton.
//!
//! This is the production satisfiability engine: it realises the
//! `2^O(|ψ|)` bound of Lemma 4.2 but only materialises tableau nodes
//! reachable from the initial obligation, which in practice is a tiny
//! fraction of the closure-set powerset that the classic construction
//! ([`crate::tableau`]) enumerates. The algorithm follows Gerth, Peled,
//! Vardi & Wolper, *Simple on-the-fly automatic verification of linear
//! temporal logic* (PSTV 1995); input must be a future formula, which is
//! converted to NNF internally.
//!
//! **Until-free merging.** Grounded universal *safety* constraints are
//! until-free in NNF (`□`, release, `○`, booleans), so the automaton has
//! no acceptance sets. Nodes are then merged by their `next` obligations
//! alone: successor behaviour depends only on `next`, and each variant's
//! (consistent) `old` is kept **on the incoming edge** as the label
//! justifying that particular decomposition. This collapses the
//! per-disjunct branch blowup of large safety conjunctions from
//! exponential to (typically) linear, while keeping both the emptiness
//! verdict and extracted witnesses exact.

use crate::arena::{Arena, AtomId, FormulaId, Node};
use crate::emptiness::FairGraph;
use crate::nnf::{nnf, NnfError};
use crate::trace::PropState;
use std::collections::{BTreeSet, HashMap};

/// Sentinel predecessor marking an initial node.
const INIT: u32 = u32::MAX;

/// An incoming edge: the predecessor (`INIT` for initial) and the
/// positive atoms required at *this* node's position by the variant
/// that produced the edge.
#[derive(Debug, Clone)]
pub struct Incoming {
    /// Predecessor node id, or `INIT`.
    pub from: u32,
    /// Positive literals of the producing variant's `old` set.
    pub label: PropState,
}

/// A node of the constructed automaton.
#[derive(Debug, Clone)]
pub struct BuchiNode {
    /// Incoming edges.
    pub incoming: Vec<Incoming>,
    /// Processed obligations of the variant that first created the node
    /// (consistent; used for acceptance in the non-merged mode).
    pub old: BTreeSet<FormulaId>,
    /// Obligations deferred to the next position (the merge key).
    pub next: BTreeSet<FormulaId>,
}

/// A generalized Büchi automaton equivalent (for nonemptiness) to an NNF
/// future formula.
pub struct Buchi {
    /// The automaton nodes.
    pub nodes: Vec<BuchiNode>,
    /// The `(a, b)` pairs of every `a U b` subformula: one acceptance set
    /// each (`u ∉ old ∨ b ∈ old`).
    pub untils: Vec<(FormulaId, FormulaId)>,
    /// The NNF root the automaton was built from.
    pub root: FormulaId,
    /// Whether until-free merging was applied.
    pub merged_by_next: bool,
}

struct Pending {
    incoming: Vec<u32>,
    new: BTreeSet<FormulaId>,
    old: BTreeSet<FormulaId>,
    next: BTreeSet<FormulaId>,
}

impl Buchi {
    /// Builds the automaton for `f` (any future formula; NNF conversion
    /// is applied first).
    pub fn build(arena: &mut Arena, f: FormulaId) -> Result<Self, NnfError> {
        let root = nnf(arena, f)?;
        let untils = collect_untils(arena, root);
        let merged_by_next = untils.is_empty();
        let mut nodes: Vec<BuchiNode> = Vec::new();
        let mut by_key: HashMap<(BTreeSet<FormulaId>, BTreeSet<FormulaId>), u32> = HashMap::new();
        let mut work: Vec<Pending> = vec![Pending {
            incoming: vec![INIT],
            new: BTreeSet::from([root]),
            old: BTreeSet::new(),
            next: BTreeSet::new(),
        }];

        while let Some(mut node) = work.pop() {
            loop {
                // Expansion order matters enormously for conjunction-
                // heavy inputs (e.g. the literal Axiom_D grounding):
                // process non-splitting formulas first so `old`
                // accumulates literals that let later disjunctions be
                // satisfied or pruned without branching.
                let picked = node
                    .new
                    .iter()
                    .find(|&&g| {
                        matches!(
                            arena.node(g),
                            Node::True
                                | Node::False
                                | Node::Atom(_)
                                | Node::Not(_)
                                | Node::And(_, _)
                                | Node::Next(_)
                        )
                    })
                    .or_else(|| node.new.iter().next())
                    .copied();
                let Some(f) = picked else {
                    // Fully expanded: merge or store, then enqueue the
                    // successor obligation.
                    let key = if merged_by_next {
                        (BTreeSet::new(), node.next.clone())
                    } else {
                        (node.old.clone(), node.next.clone())
                    };
                    let label = positive_label(arena, &node.old);
                    if let Some(&id) = by_key.get(&key) {
                        let target = &mut nodes[id as usize];
                        for &from in &node.incoming {
                            target.incoming.push(Incoming {
                                from,
                                label: label.clone(),
                            });
                        }
                    } else {
                        let id = u32::try_from(nodes.len()).expect("too many Büchi nodes");
                        by_key.insert(key, id);
                        let succ_new = node.next.clone();
                        nodes.push(BuchiNode {
                            incoming: node
                                .incoming
                                .iter()
                                .map(|&from| Incoming {
                                    from,
                                    label: label.clone(),
                                })
                                .collect(),
                            old: node.old,
                            next: node.next,
                        });
                        work.push(Pending {
                            incoming: vec![id],
                            new: succ_new,
                            old: BTreeSet::new(),
                            next: BTreeSet::new(),
                        });
                    }
                    break;
                };
                node.new.remove(&f);
                if node.old.contains(&f) {
                    continue;
                }
                match arena.node(f) {
                    Node::True => {}
                    Node::False => break, // contradictory node: drop
                    Node::Atom(_) => {
                        let neg = arena.not(f);
                        if node.old.contains(&neg) {
                            break;
                        }
                        node.old.insert(f);
                    }
                    Node::Not(g) => {
                        debug_assert!(matches!(arena.node(g), Node::Atom(_)), "input must be NNF");
                        if node.old.contains(&g) {
                            break;
                        }
                        node.old.insert(f);
                    }
                    Node::And(a, b) => {
                        node.old.insert(f);
                        node.new.insert(a);
                        node.new.insert(b);
                    }
                    Node::Or(a, b) => {
                        node.old.insert(f);
                        // Prune: already-satisfied disjunctions need no
                        // branch; a falsified disjunct forces the other.
                        if node.old.contains(&a) || node.old.contains(&b) {
                            continue;
                        }
                        let a_dead = falsified(arena, a, &node.old);
                        let b_dead = falsified(arena, b, &node.old);
                        match (a_dead, b_dead) {
                            (true, true) => break,
                            (true, false) => {
                                node.new.insert(b);
                            }
                            (false, true) => {
                                node.new.insert(a);
                            }
                            (false, false) => {
                                let mut other = Pending {
                                    incoming: node.incoming.clone(),
                                    new: node.new.clone(),
                                    old: node.old.clone(),
                                    next: node.next.clone(),
                                };
                                other.new.insert(b);
                                work.push(other);
                                node.new.insert(a);
                            }
                        }
                    }
                    Node::Next(g) => {
                        node.old.insert(f);
                        node.next.insert(g);
                    }
                    Node::Until(a, b) => {
                        // a U b ≡ b ∨ (a ∧ ○(a U b))
                        node.old.insert(f);
                        if node.old.contains(&b) {
                            continue; // discharged now
                        }
                        if falsified(arena, b, &node.old) {
                            // Only the continuation branch is viable.
                            node.new.insert(a);
                            node.next.insert(f);
                            continue;
                        }
                        let mut other = Pending {
                            incoming: node.incoming.clone(),
                            new: node.new.clone(),
                            old: node.old.clone(),
                            next: node.next.clone(),
                        };
                        other.new.insert(b);
                        work.push(other);
                        node.new.insert(a);
                        node.next.insert(f);
                    }
                    Node::Release(a, b) => {
                        // a R b ≡ b ∧ (a ∨ ○(a R b))
                        node.old.insert(f);
                        if falsified(arena, b, &node.old) {
                            break; // b is required either way
                        }
                        if node.old.contains(&a) {
                            // Released now; only b remains.
                            node.new.insert(b);
                            continue;
                        }
                        if falsified(arena, a, &node.old) {
                            // Only the continuation branch is viable.
                            node.new.insert(b);
                            node.next.insert(f);
                            continue;
                        }
                        let mut other = Pending {
                            incoming: node.incoming.clone(),
                            new: node.new.clone(),
                            old: node.old.clone(),
                            next: node.next.clone(),
                        };
                        other.new.insert(b);
                        other.next.insert(f);
                        work.push(other);
                        node.new.insert(a);
                        node.new.insert(b);
                    }
                    Node::Prev(_) | Node::Since(_, _) => unreachable!("NNF rejects past"),
                }
            }
        }

        Ok(Self {
            nodes,
            untils,
            root,
            merged_by_next,
        })
    }

    /// Number of automaton nodes (the headline statistic for E8).
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True if the automaton has no nodes (trivially empty language).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Ids of initial nodes.
    pub fn initial(&self) -> Vec<u32> {
        self.nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| n.incoming.iter().any(|e| e.from == INIT))
            .map(|(i, _)| i as u32)
            .collect()
    }

    /// Converts to the shared fair-graph representation plus edge labels
    /// for witness extraction.
    pub fn to_fair_graph(&self, arena: &Arena) -> (FairGraph, EdgeLabels) {
        let n = self.nodes.len();
        let mut succ: Vec<Vec<u32>> = vec![Vec::new(); n];
        let mut labels = EdgeLabels::default();
        for (id, node) in self.nodes.iter().enumerate() {
            for e in &node.incoming {
                if e.from == INIT {
                    labels
                        .init
                        .entry(id as u32)
                        .or_insert_with(|| e.label.clone());
                } else {
                    succ[e.from as usize].push(id as u32);
                    labels
                        .edge
                        .entry((e.from, id as u32))
                        .or_insert_with(|| e.label.clone());
                }
            }
        }
        for s in &mut succ {
            s.sort_unstable();
            s.dedup();
        }
        let num_sets = self.untils.len();
        let words = num_sets.div_ceil(64).max(1);
        let mut accept = vec![vec![0u64; words]; n];
        for (set, &(a, b)) in self.untils.iter().enumerate() {
            let u = lookup_until(arena, a, b);
            for (id, node) in self.nodes.iter().enumerate() {
                let in_f = match u {
                    Some(u) => !node.old.contains(&u) || node.old.contains(&b),
                    // The until node was folded away entirely: vacuously
                    // accepting everywhere.
                    None => true,
                };
                if in_f {
                    accept[id][set / 64] |= 1 << (set % 64);
                }
            }
        }
        (
            FairGraph {
                succ,
                initial: self.initial(),
                num_sets,
                accept,
            },
            labels,
        )
    }

    /// The atoms the node's own (first-stored) variant forces true.
    pub fn node_true_atoms(&self, arena: &Arena, id: u32) -> Vec<AtomId> {
        self.nodes[id as usize]
            .old
            .iter()
            .filter_map(|&f| match arena.node(f) {
                Node::Atom(a) => Some(a),
                _ => None,
            })
            .collect()
    }
}

/// Per-edge witness labels produced by [`Buchi::to_fair_graph`].
#[derive(Default)]
pub struct EdgeLabels {
    /// Label to use at an initial node's first position.
    pub init: HashMap<u32, PropState>,
    /// Label to use at the target node's position when arriving along
    /// `(from, to)`.
    pub edge: HashMap<(u32, u32), PropState>,
}

impl EdgeLabels {
    /// The label for position `i` of a run `path[0], path[1], …`
    /// starting at an initial node.
    pub fn at(&self, path: &[u32], i: usize) -> PropState {
        if i == 0 {
            self.init[&path[0]].clone()
        } else {
            self.edge[&(path[i - 1], path[i])].clone()
        }
    }
}

/// A formula is *falsified* by `old` when it is a literal whose
/// complement is already asserted (cheap one-step refutation used to
/// prune branches).
fn falsified(arena: &mut Arena, f: FormulaId, old: &BTreeSet<FormulaId>) -> bool {
    match arena.node(f) {
        Node::Atom(_) => {
            let neg = arena.not(f);
            old.contains(&neg)
        }
        Node::Not(g) => old.contains(&g),
        Node::False => true,
        _ => false,
    }
}

fn positive_label(arena: &Arena, old: &BTreeSet<FormulaId>) -> PropState {
    PropState::from_true_atoms(old.iter().filter_map(|&f| match arena.node(f) {
        Node::Atom(a) => Some(a),
        _ => None,
    }))
}

fn lookup_until(arena: &Arena, a: FormulaId, b: FormulaId) -> Option<FormulaId> {
    // The arena does not expose its intern map immutably, so scan the
    // dense id space. Cheap in practice because untils lists are short.
    for i in 0..arena.dag_len() {
        let id = FormulaId(i as u32);
        if arena.node(id) == Node::Until(a, b) {
            return Some(id);
        }
    }
    None
}

fn collect_untils(arena: &Arena, root: FormulaId) -> Vec<(FormulaId, FormulaId)> {
    let mut seen = std::collections::HashSet::new();
    let mut out = Vec::new();
    let mut stack = vec![root];
    while let Some(f) = stack.pop() {
        if !seen.insert(f) {
            continue;
        }
        match arena.node(f) {
            Node::True | Node::False | Node::Atom(_) => {}
            Node::Not(g) | Node::Next(g) | Node::Prev(g) => stack.push(g),
            Node::Until(a, b) => {
                out.push((a, b));
                stack.push(a);
                stack.push(b);
            }
            Node::And(a, b) | Node::Or(a, b) | Node::Release(a, b) | Node::Since(a, b) => {
                stack.push(a);
                stack.push(b);
            }
        }
    }
    out.sort_unstable();
    out.dedup();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::emptiness::find_fair_lasso;

    fn sat(arena: &mut Arena, f: FormulaId) -> bool {
        let b = Buchi::build(arena, f).unwrap();
        let (g, _) = b.to_fair_graph(arena);
        find_fair_lasso(&g).is_some()
    }

    #[test]
    fn tautology_and_contradiction() {
        let mut ar = Arena::new();
        let t = ar.tru();
        let f = ar.fls();
        assert!(sat(&mut ar, t));
        assert!(!sat(&mut ar, f));
    }

    #[test]
    fn atom_is_satisfiable() {
        let mut ar = Arena::new();
        let p = ar.atom("p");
        assert!(sat(&mut ar, p));
        let np = ar.not(p);
        let both = ar.and(p, np);
        assert!(!sat(&mut ar, both));
    }

    #[test]
    fn eventually_vs_always_conflict() {
        let mut ar = Arena::new();
        let p = ar.atom("p");
        let np = ar.not(p);
        let gp = ar.always(p);
        let fnp = ar.eventually(np);
        let conj = ar.and(gp, fnp);
        assert!(!sat(&mut ar, conj), "□p ∧ ◇¬p is unsatisfiable");
        assert!(sat(&mut ar, gp));
        assert!(sat(&mut ar, fnp));
    }

    #[test]
    fn until_needs_fulfilment() {
        let mut ar = Arena::new();
        let p = ar.atom("p");
        let q = ar.atom("q");
        let nq = ar.not(q);
        let u = ar.until(p, q);
        let gnq = ar.always(nq);
        let conj = ar.and(u, gnq);
        assert!(!sat(&mut ar, conj), "(p U q) ∧ □¬q is unsatisfiable");
        assert!(sat(&mut ar, u));
    }

    #[test]
    fn nested_until_release() {
        let mut ar = Arena::new();
        let p = ar.atom("p");
        let q = ar.atom("q");
        // □(p ⇒ ◇q) ∧ ◇p is satisfiable.
        let fq = ar.eventually(q);
        let imp = ar.implies(p, fq);
        let g = ar.always(imp);
        let fp = ar.eventually(p);
        let conj = ar.and(g, fp);
        assert!(sat(&mut ar, conj));
        // □(p ⇒ ◇q) ∧ □p ∧ □¬q is not.
        let nq = ar.not(q);
        let gp = ar.always(p);
        let gnq = ar.always(nq);
        let c2 = ar.and_all([g, gp, gnq]);
        assert!(!sat(&mut ar, c2));
    }

    #[test]
    fn next_chains() {
        let mut ar = Arena::new();
        let p = ar.atom("p");
        let np = ar.not(p);
        // ○○p ∧ ○○¬p unsat.
        let a = ar.next(p);
        let a = ar.next(a);
        let b = ar.next(np);
        let b = ar.next(b);
        let conj = ar.and(a, b);
        assert!(!sat(&mut ar, conj));
        // ○p ∧ ○○¬p sat.
        let c = ar.next(p);
        let conj2 = ar.and(c, b);
        assert!(sat(&mut ar, conj2));
    }

    #[test]
    fn infinitely_often_and_eventually_always_interact() {
        let mut ar = Arena::new();
        let p = ar.atom("p");
        let np = ar.not(p);
        // □◇p ∧ ◇□¬p unsat.
        let fp = ar.eventually(p);
        let gfp = ar.always(fp);
        let gnp = ar.always(np);
        let fgnp = ar.eventually(gnp);
        let conj = ar.and(gfp, fgnp);
        assert!(!sat(&mut ar, conj));
        // □◇p ∧ □◇¬p sat (alternation).
        let fnp = ar.eventually(np);
        let gfnp = ar.always(fnp);
        let conj2 = ar.and(gfp, gfnp);
        assert!(sat(&mut ar, conj2));
    }

    #[test]
    fn labels_respect_literals() {
        let mut ar = Arena::new();
        let p = ar.atom("p");
        let pa = ar.find_atom("p").unwrap();
        let g = ar.always(p);
        let b = Buchi::build(&mut ar, g).unwrap();
        assert!(b.merged_by_next, "□p is until-free");
        let (fg, labels) = b.to_fair_graph(&ar);
        let l = find_fair_lasso(&fg).unwrap();
        let mut path = l.stem.clone();
        path.extend(&l.cycle);
        for i in 0..path.len() {
            assert!(labels.at(&path, i).get(pa), "□p run must label p true");
        }
    }

    #[test]
    fn merged_mode_keeps_edge_labels_sound() {
        // R = (○(p ∧ □a)) ∨ ○□a — the shape where node-level labels
        // would be wrong under merging. The verdict must be sat and the
        // witness (checked in sat.rs / property tests) must satisfy R.
        let mut ar = Arena::new();
        let p = ar.atom("p");
        let a = ar.atom("a");
        let ga = ar.always(a);
        let pga = ar.and(p, ga);
        let l = ar.next(pga);
        let r = ar.next(ga);
        let f = ar.or(l, r);
        let b = Buchi::build(&mut ar, f).unwrap();
        assert!(b.merged_by_next);
        let (fg, _) = b.to_fair_graph(&ar);
        assert!(find_fair_lasso(&fg).is_some());
    }

    #[test]
    fn until_free_merging_collapses_safety_conjunctions() {
        // ⋀_i □(p_i → ○□¬p_i): without merging the node count is
        // exponential in i; with merging it must stay manageable.
        let mut ar = Arena::new();
        let mut f = ar.tru();
        for i in 0..6 {
            let p = ar.atom(&format!("p{i}"));
            let np = ar.not(p);
            let gnp = ar.always(np);
            let xgnp = ar.next(gnp);
            let imp = ar.implies(p, xgnp);
            let g = ar.always(imp);
            f = ar.and(f, g);
        }
        let b = Buchi::build(&mut ar, f).unwrap();
        assert!(b.merged_by_next);
        assert!(
            b.len() <= 2 * 64 + 2,
            "next-merging should avoid the 2^6 old-set blowup, got {}",
            b.len()
        );
        let (g, _) = b.to_fair_graph(&ar);
        assert!(find_fair_lasso(&g).is_some());
    }
}

impl Buchi {
    /// Renders the automaton in Graphviz DOT format (for debugging and
    /// documentation). Nodes show their required literals; doubled
    /// circles mark members of every acceptance set; `initial` nodes get
    /// an arrow from a point pseudo-node.
    pub fn to_dot(&self, arena: &Arena) -> String {
        use std::fmt::Write as _;
        let mut out = String::from("digraph buchi {\n  rankdir=LR;\n  init [shape=point];\n");
        let num_sets = self.untils.len();
        let in_all_sets = |node: &BuchiNode| {
            self.untils
                .iter()
                .all(|&(a, b)| match lookup_until(arena, a, b) {
                    Some(u) => !node.old.contains(&u) || node.old.contains(&b),
                    None => true,
                })
        };
        for (id, node) in self.nodes.iter().enumerate() {
            let lits: Vec<String> = node
                .old
                .iter()
                .filter_map(|&f| match arena.node(f) {
                    Node::Atom(a) => Some(arena.atom_name(a).to_owned()),
                    Node::Not(g) => match arena.node(g) {
                        Node::Atom(a) => Some(format!("!{}", arena.atom_name(a))),
                        _ => None,
                    },
                    _ => None,
                })
                .collect();
            let shape = if num_sets == 0 || in_all_sets(node) {
                "doublecircle"
            } else {
                "circle"
            };
            let _ = writeln!(
                out,
                "  n{id} [shape={shape}, label=\"{}\"];",
                lits.join(", ").replace('"', "'")
            );
        }
        for (id, node) in self.nodes.iter().enumerate() {
            let mut printed = std::collections::HashSet::new();
            for e in &node.incoming {
                if e.from == INIT {
                    if printed.insert(u32::MAX) {
                        let _ = writeln!(out, "  init -> n{id};");
                    }
                } else if printed.insert(e.from) {
                    let _ = writeln!(out, "  n{} -> n{id};", e.from);
                }
            }
        }
        out.push_str("}\n");
        out
    }
}

#[cfg(test)]
mod dot_tests {
    use super::*;

    #[test]
    fn dot_output_is_well_formed() {
        let mut ar = Arena::new();
        let p = ar.atom("p");
        let q = ar.atom("q");
        let u = ar.until(p, q);
        let b = Buchi::build(&mut ar, u).unwrap();
        let dot = b.to_dot(&ar);
        assert!(dot.starts_with("digraph buchi {"));
        assert!(dot.ends_with("}\n"));
        assert!(dot.contains("init ->"));
        assert!(dot.contains("doublecircle"), "q-discharged nodes accept");
        // Every node declared before any edge mentions it.
        for id in 0..b.len() {
            assert!(dot.contains(&format!("n{id} [shape=")));
        }
    }

    #[test]
    fn dot_labels_show_literals() {
        let mut ar = Arena::new();
        let p = ar.atom("p");
        let np = ar.not(p);
        let g = ar.always(np);
        let b = Buchi::build(&mut ar, g).unwrap();
        let dot = b.to_dot(&ar);
        assert!(dot.contains("!p"), "{dot}");
    }
}
