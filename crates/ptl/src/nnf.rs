//! Negation normal form.
//!
//! The satisfiability engines ([`crate::tableau`], [`crate::buchi`])
//! operate on future formulas in *negation normal form* (NNF): negation
//! applied only to atoms, with `Release` as the dual of `Until`. NNF
//! conversion is linear in the DAG thanks to a two-polarity memo table.

use crate::arena::{Arena, FormulaId, Node};

/// Error returned when a formula outside the supported fragment is given
/// to an engine that requires future-only NNF.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NnfError {
    /// The formula contains a past connective (`●` or `since`).
    PastOperator,
}

impl std::fmt::Display for NnfError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NnfError::PastOperator => {
                write!(f, "past temporal connectives are not supported here")
            }
        }
    }
}

impl std::error::Error for NnfError {}

/// Converts a future formula to negation normal form.
///
/// Returns an error if the formula contains past connectives; the
/// decision procedures of Lemma 4.2 are stated (and implemented) for
/// future formulas, matching the biquantified fragment of the paper.
pub fn nnf(arena: &mut Arena, f: FormulaId) -> Result<FormulaId, NnfError> {
    let mut memo: std::collections::HashMap<(FormulaId, bool), FormulaId> =
        std::collections::HashMap::new();
    go(arena, f, false, &mut memo)
}

fn go(
    arena: &mut Arena,
    f: FormulaId,
    negated: bool,
    memo: &mut std::collections::HashMap<(FormulaId, bool), FormulaId>,
) -> Result<FormulaId, NnfError> {
    if let Some(&r) = memo.get(&(f, negated)) {
        return Ok(r);
    }
    let r = match (arena.node(f), negated) {
        (Node::True, false) | (Node::False, true) => arena.tru(),
        (Node::True, true) | (Node::False, false) => arena.fls(),
        (Node::Atom(_), false) => f,
        (Node::Atom(_), true) => arena.not(f),
        (Node::Not(g), n) => go(arena, g, !n, memo)?,
        (Node::And(a, b), false) | (Node::Or(a, b), true) => {
            let x = go(arena, a, negated, memo)?;
            let y = go(arena, b, negated, memo)?;
            arena.and(x, y)
        }
        (Node::And(a, b), true) | (Node::Or(a, b), false) => {
            let x = go(arena, a, negated, memo)?;
            let y = go(arena, b, negated, memo)?;
            arena.or(x, y)
        }
        (Node::Next(g), n) => {
            let x = go(arena, g, n, memo)?;
            arena.next(x)
        }
        (Node::Until(a, b), false) => {
            let x = go(arena, a, false, memo)?;
            let y = go(arena, b, false, memo)?;
            arena.until(x, y)
        }
        (Node::Until(a, b), true) => {
            let x = go(arena, a, true, memo)?;
            let y = go(arena, b, true, memo)?;
            arena.release(x, y)
        }
        (Node::Release(a, b), false) => {
            let x = go(arena, a, false, memo)?;
            let y = go(arena, b, false, memo)?;
            arena.release(x, y)
        }
        (Node::Release(a, b), true) => {
            let x = go(arena, a, true, memo)?;
            let y = go(arena, b, true, memo)?;
            arena.until(x, y)
        }
        (Node::Prev(_), _) | (Node::Since(_, _), _) => return Err(NnfError::PastOperator),
    };
    memo.insert((f, negated), r);
    Ok(r)
}

/// True if the DAG rooted at `f` is already in negation normal form
/// (negation only on atoms, no derived connectives outside the core).
pub fn is_nnf(arena: &Arena, f: FormulaId) -> bool {
    let mut stack = vec![f];
    let mut seen = std::collections::HashSet::new();
    while let Some(id) = stack.pop() {
        if !seen.insert(id) {
            continue;
        }
        match arena.node(id) {
            Node::True | Node::False | Node::Atom(_) => {}
            Node::Not(g) => {
                if !matches!(arena.node(g), Node::Atom(_)) {
                    return false;
                }
            }
            Node::Next(g) | Node::Prev(g) => stack.push(g),
            Node::And(a, b)
            | Node::Or(a, b)
            | Node::Until(a, b)
            | Node::Release(a, b)
            | Node::Since(a, b) => {
                stack.push(a);
                stack.push(b);
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pushes_negation_through_until() {
        let mut ar = Arena::new();
        let p = ar.atom("p");
        let q = ar.atom("q");
        let u = ar.until(p, q);
        let nu = ar.not(u);
        let r = nnf(&mut ar, nu).unwrap();
        let np = ar.not(p);
        let nq = ar.not(q);
        let expect = ar.release(np, nq);
        assert_eq!(r, expect);
        assert!(is_nnf(&ar, r));
    }

    #[test]
    fn double_negation_is_identity() {
        let mut ar = Arena::new();
        let p = ar.atom("p");
        let g = ar.always(p);
        let n1 = ar.not(g);
        let n2 = ar.not(n1);
        let r = nnf(&mut ar, n2).unwrap();
        assert_eq!(r, g);
    }

    #[test]
    fn negated_always_becomes_eventually_not() {
        let mut ar = Arena::new();
        let p = ar.atom("p");
        let g = ar.always(p);
        let ng = ar.not(g);
        let r = nnf(&mut ar, ng).unwrap();
        let np = ar.not(p);
        let expect = ar.eventually(np);
        assert_eq!(r, expect);
    }

    #[test]
    fn implication_desugars() {
        let mut ar = Arena::new();
        let p = ar.atom("p");
        let q = ar.atom("q");
        let imp = ar.implies(p, q);
        let r = nnf(&mut ar, imp).unwrap();
        assert!(is_nnf(&ar, r));
        let np = ar.not(p);
        assert_eq!(r, ar.or(np, q));
    }

    #[test]
    fn rejects_past() {
        let mut ar = Arena::new();
        let p = ar.atom("p");
        let o = ar.once(p);
        assert_eq!(nnf(&mut ar, o), Err(NnfError::PastOperator));
    }

    #[test]
    fn next_is_self_dual() {
        let mut ar = Arena::new();
        let p = ar.atom("p");
        let x = ar.next(p);
        let nx = ar.not(x);
        let r = nnf(&mut ar, nx).unwrap();
        let np = ar.not(p);
        assert_eq!(r, ar.next(np));
    }
}
