//! Emptiness of generalized Büchi graphs.
//!
//! Both satisfiability engines reduce to the same question: does a node
//! graph with generalized Büchi acceptance (a family of node sets, each
//! to be visited infinitely often) admit an infinite fair path from an
//! initial node? The classic answer — used here — is to find a reachable
//! non-trivial strongly connected component intersecting every acceptance
//! set, and to extract a lasso (stem + fair cycle) from it.

/// A directed graph with initial nodes and generalized Büchi acceptance.
///
/// `accept[i]` is a bitset (one bit per acceptance set) of the sets node
/// `i` belongs to. A fair cycle must collectively cover all `num_sets`
/// bits.
pub struct FairGraph {
    /// Successor lists, indexed by node.
    pub succ: Vec<Vec<u32>>,
    /// Initial nodes.
    pub initial: Vec<u32>,
    /// Number of acceptance sets.
    pub num_sets: usize,
    /// Per-node membership bitsets, `accept[i].len() == words(num_sets)`.
    pub accept: Vec<Vec<u64>>,
}

/// A fair lasso: a stem from an initial node to `cycle[0]`, and a
/// non-empty cycle returning to `cycle[0]` that intersects every
/// acceptance set. The stem includes the initial node and ends just
/// before `cycle[0]`; the full run is `stem · cycleω`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FairLasso {
    /// Nodes from an initial node up to (excluding) the cycle entry.
    pub stem: Vec<u32>,
    /// The repeated cycle; `cycle[0]` is the entry node.
    pub cycle: Vec<u32>,
}

fn words(bits: usize) -> usize {
    bits.div_ceil(64).max(1)
}

/// Searches for a fair lasso. Returns `None` iff the fair language is
/// empty (no infinite fair run exists).
pub fn find_fair_lasso(g: &FairGraph) -> Option<FairLasso> {
    let n = g.succ.len();
    if n == 0 || g.initial.is_empty() {
        return None;
    }
    let full_mask = full_mask(g.num_sets);

    // Reachability from the initial nodes.
    let mut reach = vec![false; n];
    let mut stack: Vec<u32> = Vec::new();
    for &i in &g.initial {
        if !reach[i as usize] {
            reach[i as usize] = true;
            stack.push(i);
        }
    }
    while let Some(v) = stack.pop() {
        for &w in &g.succ[v as usize] {
            if !reach[w as usize] {
                reach[w as usize] = true;
                stack.push(w);
            }
        }
    }

    // Iterative Tarjan over the reachable subgraph.
    let sccs = tarjan_sccs(&g.succ, &reach);

    for scc in &sccs {
        if !scc_nontrivial(g, scc) {
            continue;
        }
        let mut mask = vec![0u64; words(g.num_sets)];
        for &v in scc {
            for (m, a) in mask.iter_mut().zip(&g.accept[v as usize]) {
                *m |= a;
            }
        }
        if mask == full_mask {
            return Some(build_lasso(g, scc));
        }
    }
    None
}

fn full_mask(num_sets: usize) -> Vec<u64> {
    let mut m = vec![0u64; words(num_sets)];
    for i in 0..num_sets {
        m[i / 64] |= 1u64 << (i % 64);
    }
    m
}

fn scc_nontrivial(g: &FairGraph, scc: &[u32]) -> bool {
    if scc.len() > 1 {
        return true;
    }
    let v = scc[0];
    g.succ[v as usize].contains(&v)
}

/// Iterative Tarjan restricted to `alive` nodes. Returns SCCs in reverse
/// topological order (which we don't rely on).
fn tarjan_sccs(succ: &[Vec<u32>], alive: &[bool]) -> Vec<Vec<u32>> {
    let n = succ.len();
    const UNSEEN: u32 = u32::MAX;
    let mut index = vec![UNSEEN; n];
    let mut low = vec![0u32; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<u32> = Vec::new();
    let mut next_index = 0u32;
    let mut out = Vec::new();

    // Explicit DFS stack of (node, next-child-position).
    let mut dfs: Vec<(u32, usize)> = Vec::new();
    for start in 0..n as u32 {
        if !alive[start as usize] || index[start as usize] != UNSEEN {
            continue;
        }
        dfs.push((start, 0));
        index[start as usize] = next_index;
        low[start as usize] = next_index;
        next_index += 1;
        stack.push(start);
        on_stack[start as usize] = true;

        while let Some(&mut (v, ref mut child)) = dfs.last_mut() {
            let vs = v as usize;
            if *child < succ[vs].len() {
                let w = succ[vs][*child];
                *child += 1;
                let ws = w as usize;
                if !alive[ws] {
                    continue;
                }
                if index[ws] == UNSEEN {
                    index[ws] = next_index;
                    low[ws] = next_index;
                    next_index += 1;
                    stack.push(w);
                    on_stack[ws] = true;
                    dfs.push((w, 0));
                } else if on_stack[ws] {
                    low[vs] = low[vs].min(index[ws]);
                }
            } else {
                dfs.pop();
                if let Some(&(parent, _)) = dfs.last() {
                    let ps = parent as usize;
                    low[ps] = low[ps].min(low[vs]);
                }
                if low[vs] == index[vs] {
                    let mut scc = Vec::new();
                    loop {
                        let w = stack.pop().expect("tarjan stack underflow");
                        on_stack[w as usize] = false;
                        scc.push(w);
                        if w == v {
                            break;
                        }
                    }
                    out.push(scc);
                }
            }
        }
    }
    out
}

/// BFS path from `from` to any node satisfying `goal`, restricted to
/// nodes where `within` is true. The returned path starts at `from` and
/// ends at the goal node. `require_step` forces at least one edge.
fn bfs_path(
    g: &FairGraph,
    from: u32,
    within: impl Fn(u32) -> bool,
    goal: impl Fn(u32) -> bool,
    require_step: bool,
) -> Option<Vec<u32>> {
    if !require_step && goal(from) {
        return Some(vec![from]);
    }
    let n = g.succ.len();
    let mut pred = vec![u32::MAX; n];
    let mut visited = vec![false; n];
    let mut queue = std::collections::VecDeque::new();
    visited[from as usize] = true;
    queue.push_back(from);
    while let Some(v) = queue.pop_front() {
        for &w in &g.succ[v as usize] {
            if !within(w) {
                continue;
            }
            if goal(w) {
                // Reconstruct from..=w.
                let mut path = vec![w, v];
                let mut cur = v;
                while cur != from {
                    cur = pred[cur as usize];
                    path.push(cur);
                }
                path.reverse();
                return Some(path);
            }
            if !visited[w as usize] {
                visited[w as usize] = true;
                pred[w as usize] = v;
                queue.push_back(w);
            }
        }
    }
    None
}

fn build_lasso(g: &FairGraph, scc: &[u32]) -> FairLasso {
    let in_scc = {
        let mut v = vec![false; g.succ.len()];
        for &x in scc {
            v[x as usize] = true;
        }
        v
    };

    // Stem: shortest path from any initial node into the SCC.
    let entry_path = g
        .initial
        .iter()
        .filter_map(|&i| bfs_path(g, i, |_| true, |w| in_scc[w as usize], false))
        .min_by_key(|p| p.len())
        .expect("SCC reported reachable but no path found");
    let entry = *entry_path.last().unwrap();
    let stem = entry_path[..entry_path.len() - 1].to_vec();

    // Cycle: starting at `entry`, greedily visit one representative of
    // every not-yet-covered acceptance set, then return to `entry`.
    let nw = words(g.num_sets);
    let mut covered = vec![0u64; nw];
    let want = full_mask(g.num_sets);
    let mut cycle = vec![entry];
    for (m, a) in covered.iter_mut().zip(&g.accept[entry as usize]) {
        *m |= a;
    }
    let mut cur = entry;
    for set in 0..g.num_sets {
        if covered[set / 64] >> (set % 64) & 1 == 1 {
            continue;
        }
        let path = bfs_path(
            g,
            cur,
            |w| in_scc[w as usize],
            |w| g.accept[w as usize][set / 64] >> (set % 64) & 1 == 1,
            false,
        )
        .expect("fair SCC must contain every acceptance set");
        for &v in &path[1..] {
            cycle.push(v);
            for (m, a) in covered.iter_mut().zip(&g.accept[v as usize]) {
                *m |= a;
            }
        }
        cur = *path.last().unwrap();
    }
    debug_assert_eq!(covered, want);
    // Close the cycle back to `entry`, with at least one edge overall.
    let need_step = cycle.len() == 1;
    let back = bfs_path(g, cur, |w| in_scc[w as usize], |w| w == entry, need_step)
        .expect("SCC is strongly connected");
    cycle.extend_from_slice(&back[1..back.len()]);
    // `back` ends at entry; drop that final repeat of the entry node.
    if *cycle.last().unwrap() == entry && cycle.len() > 1 {
        cycle.pop();
    }
    FairLasso { stem, cycle }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mask(sets: &[usize], num_sets: usize) -> Vec<u64> {
        let mut m = vec![0u64; words(num_sets)];
        for &s in sets {
            m[s / 64] |= 1 << (s % 64);
        }
        m
    }

    #[test]
    fn empty_graph_has_no_lasso() {
        let g = FairGraph {
            succ: vec![],
            initial: vec![],
            num_sets: 0,
            accept: vec![],
        };
        assert!(find_fair_lasso(&g).is_none());
    }

    #[test]
    fn self_loop_no_acceptance() {
        let g = FairGraph {
            succ: vec![vec![0]],
            initial: vec![0],
            num_sets: 0,
            accept: vec![mask(&[], 0)],
        };
        let l = find_fair_lasso(&g).unwrap();
        assert_eq!(l.cycle, vec![0]);
        assert!(l.stem.is_empty());
    }

    #[test]
    fn dead_end_is_empty() {
        // 0 -> 1, no cycle anywhere.
        let g = FairGraph {
            succ: vec![vec![1], vec![]],
            initial: vec![0],
            num_sets: 0,
            accept: vec![mask(&[], 0), mask(&[], 0)],
        };
        assert!(find_fair_lasso(&g).is_none());
    }

    #[test]
    fn acceptance_filters_cycles() {
        // Two disjoint cycles; only node 2's cycle is accepting.
        // 0 -> 0 (not accepting), 0 -> 1 -> 2 -> 1 (2 in set 0).
        let g = FairGraph {
            succ: vec![vec![0, 1], vec![2], vec![1]],
            initial: vec![0],
            num_sets: 1,
            accept: vec![mask(&[], 1), mask(&[], 1), mask(&[0], 1)],
        };
        let l = find_fair_lasso(&g).unwrap();
        assert!(l.cycle.contains(&2));
        // Run must start at node 0.
        let first = l.stem.first().copied().unwrap_or(l.cycle[0]);
        assert_eq!(first, 0);
    }

    #[test]
    fn generalized_acceptance_needs_all_sets() {
        // Cycle 1<->2 where 1 ∈ F0, 2 ∈ F1: fair only jointly.
        let g = FairGraph {
            succ: vec![vec![1], vec![2], vec![1]],
            initial: vec![0],
            num_sets: 2,
            accept: vec![mask(&[], 2), mask(&[0], 2), mask(&[1], 2)],
        };
        let l = find_fair_lasso(&g).unwrap();
        assert!(l.cycle.contains(&1) && l.cycle.contains(&2));

        // Remove node 2 from F1: now empty.
        let g2 = FairGraph {
            accept: vec![mask(&[], 2), mask(&[0], 2), mask(&[], 2)],
            ..g
        };
        assert!(find_fair_lasso(&g2).is_none());
    }

    #[test]
    fn unreachable_fair_scc_does_not_count() {
        // Fair cycle at 1, but initial 0 cannot reach it.
        let g = FairGraph {
            succ: vec![vec![], vec![1]],
            initial: vec![0],
            num_sets: 0,
            accept: vec![mask(&[], 0), mask(&[], 0)],
        };
        assert!(find_fair_lasso(&g).is_none());
    }

    #[test]
    fn lasso_is_a_real_run() {
        // Random-ish graph; validate the returned lasso edge-by-edge.
        let g = FairGraph {
            succ: vec![vec![1, 2], vec![3], vec![3], vec![1, 4], vec![3]],
            initial: vec![0],
            num_sets: 1,
            accept: vec![
                mask(&[], 1),
                mask(&[], 1),
                mask(&[], 1),
                mask(&[], 1),
                mask(&[0], 1),
            ],
        };
        let l = find_fair_lasso(&g).unwrap();
        let mut run: Vec<u32> = l.stem.clone();
        run.extend(&l.cycle);
        run.push(l.cycle[0]);
        for pair in run.windows(2) {
            assert!(
                g.succ[pair[0] as usize].contains(&pair[1]),
                "bad edge {} -> {}",
                pair[0],
                pair[1]
            );
        }
        assert!(l.cycle.contains(&4), "cycle must visit the accepting node");
    }

    #[test]
    fn many_acceptance_sets_over_word_boundary() {
        // 70 acceptance sets on a single big cycle: exercises multi-word
        // masks.
        let n = 70usize;
        let succ: Vec<Vec<u32>> = (0..n).map(|i| vec![((i + 1) % n) as u32]).collect();
        let accept: Vec<Vec<u64>> = (0..n).map(|i| mask(&[i], n)).collect();
        let g = FairGraph {
            succ,
            initial: vec![0],
            num_sets: n,
            accept,
        };
        let l = find_fair_lasso(&g).unwrap();
        assert_eq!(l.cycle.len(), n);
    }
}
