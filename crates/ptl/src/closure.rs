//! Subformula closure of a future NNF formula.
//!
//! The closure-set tableau of Sistla & Clarke works over the set of
//! subformulas of the (NNF) input; this module computes that set with a
//! deterministic order and an index map, and classifies each member for
//! the tableau's local-consistency rules.

use crate::arena::{Arena, FormulaId, Node};
use std::collections::HashMap;

/// The subformula closure of an NNF future formula.
pub struct Closure {
    /// Subformulas in deterministic (post-order) order; children precede
    /// parents.
    pub members: Vec<FormulaId>,
    /// Maps a formula id to its index within `members`.
    pub index: HashMap<FormulaId, usize>,
    /// Indices of the `Until` members (the eventualities that drive the
    /// acceptance condition).
    pub untils: Vec<usize>,
}

impl Closure {
    /// Computes the closure of `f`, which must be in NNF (checked by
    /// debug assertion).
    pub fn of(arena: &Arena, f: FormulaId) -> Self {
        debug_assert!(crate::nnf::is_nnf(arena, f), "closure requires NNF input");
        let mut members = Vec::new();
        let mut index = HashMap::new();
        collect(arena, f, &mut members, &mut index);
        let untils = members
            .iter()
            .enumerate()
            .filter(|(_, &m)| matches!(arena.node(m), Node::Until(_, _)))
            .map(|(i, _)| i)
            .collect();
        Self {
            members,
            index,
            untils,
        }
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// True if the closure is empty (never happens for a real formula).
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// Index of a member formula.
    pub fn idx(&self, f: FormulaId) -> usize {
        self.index[&f]
    }
}

fn collect(
    arena: &Arena,
    f: FormulaId,
    members: &mut Vec<FormulaId>,
    index: &mut HashMap<FormulaId, usize>,
) {
    if index.contains_key(&f) {
        return;
    }
    match arena.node(f) {
        Node::True | Node::False | Node::Atom(_) => {}
        Node::Not(g) | Node::Next(g) => collect(arena, g, members, index),
        Node::And(a, b) | Node::Or(a, b) | Node::Until(a, b) | Node::Release(a, b) => {
            collect(arena, a, members, index);
            collect(arena, b, members, index);
        }
        Node::Prev(_) | Node::Since(_, _) => {
            unreachable!("closure is only computed for future formulas")
        }
    }
    index.insert(f, members.len());
    members.push(f);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn closure_is_postorder_and_deduplicated() {
        let mut ar = Arena::new();
        let p = ar.atom("p");
        let q = ar.atom("q");
        let u = ar.until(p, q);
        let f = ar.and(u, p); // shares p
        let c = Closure::of(&ar, f);
        assert_eq!(c.members.len(), 4); // p, q, pUq, (pUq)∧p
        assert!(c.idx(p) < c.idx(u));
        assert!(c.idx(u) < c.idx(f));
        assert_eq!(c.untils, vec![c.idx(u)]);
    }

    #[test]
    fn closure_of_atom() {
        let mut ar = Arena::new();
        let p = ar.atom("p");
        let c = Closure::of(&ar, p);
        assert_eq!(c.len(), 1);
        assert!(c.untils.is_empty());
    }
}
