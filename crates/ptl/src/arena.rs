//! Hash-consed formula arena.
//!
//! Every distinct formula is stored exactly once and identified by a
//! [`FormulaId`]. Constructors perform constant folding and commutative
//! normalisation so that structurally equal formulas (up to trivial
//! boolean identities) share an id. Sharing is what makes the
//! Sistla–Wolfson prefix rewriting of Lemma 4.2 run in `O(t · |φ|)` time
//! in practice: each progression step is memoised per sub-DAG.

use std::collections::HashMap;
use std::fmt;

/// Identifier of a propositional letter within an [`Arena`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct AtomId(pub u32);

impl AtomId {
    /// The dense index of the atom.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Identifier of a hash-consed formula within an [`Arena`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct FormulaId(pub u32);

impl FormulaId {
    /// The dense index of the formula node.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// The shape of a formula node. Children are arena ids.
///
/// The future connectives `Next`/`Until` and the past connectives
/// `Prev`/`Since` are primitive, mirroring Section 2 of the paper.
/// `Release` is kept primitive as well so that negation normal form stays
/// within the arena (`¬(a U b) ≡ ¬a R ¬b`). Everything else (`◇`, `□`,
/// `◈` "once", `▣` "historically", implication) is derived sugar provided
/// by constructor methods.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Node {
    /// The constant true.
    True,
    /// The constant false.
    False,
    /// A propositional letter.
    Atom(AtomId),
    /// Negation.
    Not(FormulaId),
    /// Conjunction.
    And(FormulaId, FormulaId),
    /// Disjunction.
    Or(FormulaId, FormulaId),
    /// "Next time": `○A` holds at `t` iff `A` holds at `t+1`.
    Next(FormulaId),
    /// `A until B`: some `s ≥ t` has `B`, and `A` holds on `[t, s)`.
    Until(FormulaId, FormulaId),
    /// `A release B`: dual of until; `B` holds up to and including the
    /// first position where `A` holds, or forever if `A` never holds.
    Release(FormulaId, FormulaId),
    /// "Previous time" (strong): `●A` holds at `t` iff `t > 0` and `A`
    /// holds at `t-1`.
    Prev(FormulaId),
    /// `A since B`: some `s ≤ t` has `B`, and `A` holds on `(s, t]`.
    Since(FormulaId, FormulaId),
}

/// A hash-consing arena of PTL formulas over a growable set of
/// propositional letters.
#[derive(Default)]
pub struct Arena {
    nodes: Vec<Node>,
    node_ids: HashMap<Node, FormulaId>,
    atom_names: Vec<String>,
    atom_ids: HashMap<String, AtomId>,
    /// Memoised [`Arena::atoms_of`] results (support sets). Nodes are
    /// immutable once interned, so an entry never goes stale; the memo
    /// grows with the number of *distinct* roots queried, which the
    /// arena already stores as nodes.
    support_memo: HashMap<FormulaId, std::sync::Arc<[AtomId]>>,
    /// How many [`Arena::intern`] calls returned an already-interned
    /// node instead of allocating — the hash-consing hit counter the
    /// grounding layer reads to quantify cross-instantiation structure
    /// sharing in `Ψ_D`.
    dedup_hits: u64,
}

impl Arena {
    /// Creates an empty arena.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the node for an id.
    #[inline]
    pub fn node(&self, id: FormulaId) -> Node {
        self.nodes[id.index()]
    }

    /// Number of distinct (hash-consed) formula nodes allocated.
    pub fn dag_len(&self) -> usize {
        self.nodes.len()
    }

    /// Number of constructor calls answered from the hash-cons table
    /// (an already-interned node was returned instead of allocating).
    /// A coarse gauge of structure sharing across formulas built in
    /// this arena; monotone, never reset.
    pub fn dedup_hits(&self) -> u64 {
        self.dedup_hits
    }

    /// Number of registered propositional letters.
    pub fn atom_count(&self) -> usize {
        self.atom_names.len()
    }

    /// The display name of an atom.
    pub fn atom_name(&self, a: AtomId) -> &str {
        &self.atom_names[a.index()]
    }

    /// Looks up an atom by name without creating it.
    pub fn find_atom(&self, name: &str) -> Option<AtomId> {
        self.atom_ids.get(name).copied()
    }

    /// Interns an atom name, returning its id (existing or fresh).
    pub fn intern_atom(&mut self, name: &str) -> AtomId {
        if let Some(&a) = self.atom_ids.get(name) {
            return a;
        }
        let a = AtomId(u32::try_from(self.atom_names.len()).expect("too many atoms"));
        self.atom_names.push(name.to_owned());
        self.atom_ids.insert(name.to_owned(), a);
        a
    }

    fn intern(&mut self, node: Node) -> FormulaId {
        if let Some(&id) = self.node_ids.get(&node) {
            self.dedup_hits += 1;
            return id;
        }
        let id = FormulaId(u32::try_from(self.nodes.len()).expect("too many formulas"));
        self.nodes.push(node);
        self.node_ids.insert(node, id);
        id
    }

    /// The dense node table, in interning order. Together with
    /// [`Arena::atom_names_in_order`] this is a complete, canonical
    /// dump of the arena: rebuilding via [`Arena::rehydrate`] yields
    /// an arena in which every existing [`FormulaId`]/[`AtomId`] is
    /// bit-identical. (Durable snapshots rely on this to restore
    /// constraint residues without re-running the grounding pipeline.)
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// The atom name table, in id order (dense).
    pub fn atom_names_in_order(&self) -> &[String] {
        &self.atom_names
    }

    /// Rebuilds an arena from a dump taken with [`Arena::nodes`] and
    /// [`Arena::atom_names_in_order`].
    ///
    /// Nodes are inserted *raw*, without re-running the folding
    /// constructors — the dump already reflects whatever folding
    /// produced it, and re-folding would renumber ids. The input is
    /// validated instead of trusted: children must reference earlier
    /// nodes, atom ids must be in range, and both tables must be
    /// duplicate-free (they are, in any genuine dump, because interning
    /// is what built them).
    pub fn rehydrate(nodes: Vec<Node>, atom_names: Vec<String>) -> Result<Arena, &'static str> {
        let mut arena = Arena::new();
        for (i, name) in atom_names.iter().enumerate() {
            let a = AtomId(u32::try_from(i).map_err(|_| "too many atoms")?);
            if arena.atom_ids.insert(name.clone(), a).is_some() {
                return Err("duplicate atom name in dump");
            }
            arena.atom_names.push(name.clone());
        }
        for (i, &node) in nodes.iter().enumerate() {
            let id = FormulaId(u32::try_from(i).map_err(|_| "too many formulas")?);
            let check_child = |c: FormulaId| {
                if c.index() < i {
                    Ok(())
                } else {
                    Err("node references a child at or after itself")
                }
            };
            match node {
                Node::True | Node::False => {}
                Node::Atom(a) => {
                    if a.index() >= arena.atom_names.len() {
                        return Err("atom id out of range");
                    }
                }
                Node::Not(x) | Node::Next(x) | Node::Prev(x) => check_child(x)?,
                Node::And(x, y)
                | Node::Or(x, y)
                | Node::Until(x, y)
                | Node::Release(x, y)
                | Node::Since(x, y) => {
                    check_child(x)?;
                    check_child(y)?;
                }
            }
            if arena.node_ids.insert(node, id).is_some() {
                return Err("duplicate node in dump");
            }
            arena.nodes.push(node);
        }
        Ok(arena)
    }

    /// The constant `true`.
    pub fn tru(&mut self) -> FormulaId {
        self.intern(Node::True)
    }

    /// The constant `false`.
    pub fn fls(&mut self) -> FormulaId {
        self.intern(Node::False)
    }

    /// An atomic formula for a named letter.
    pub fn atom(&mut self, name: &str) -> FormulaId {
        let a = self.intern_atom(name);
        self.intern(Node::Atom(a))
    }

    /// An atomic formula for an already-interned letter.
    pub fn atom_id(&mut self, a: AtomId) -> FormulaId {
        assert!(a.index() < self.atom_names.len(), "unknown atom id");
        self.intern(Node::Atom(a))
    }

    /// Negation, with folding: `¬⊤ = ⊥`, `¬⊥ = ⊤`, `¬¬A = A`.
    pub fn not(&mut self, f: FormulaId) -> FormulaId {
        match self.node(f) {
            Node::True => self.fls(),
            Node::False => self.tru(),
            Node::Not(g) => g,
            _ => self.intern(Node::Not(f)),
        }
    }

    /// Conjunction with unit/absorption folding and commutative
    /// normalisation (`a ∧ b` interned with `min(a,b)` first).
    pub fn and(&mut self, a: FormulaId, b: FormulaId) -> FormulaId {
        let (t, f) = (self.tru(), self.fls());
        if a == f || b == f {
            return f;
        }
        if a == t {
            return b;
        }
        if b == t {
            return a;
        }
        if a == b {
            return a;
        }
        // a ∧ ¬a = ⊥ (cheap complementation check through hash-consing).
        if self.node(a) == Node::Not(b) || self.node(b) == Node::Not(a) {
            return f;
        }
        let (x, y) = if a <= b { (a, b) } else { (b, a) };
        self.intern(Node::And(x, y))
    }

    /// Disjunction with unit/absorption folding and commutative
    /// normalisation.
    pub fn or(&mut self, a: FormulaId, b: FormulaId) -> FormulaId {
        let (t, f) = (self.tru(), self.fls());
        if a == t || b == t {
            return t;
        }
        if a == f {
            return b;
        }
        if b == f {
            return a;
        }
        if a == b {
            return a;
        }
        if self.node(a) == Node::Not(b) || self.node(b) == Node::Not(a) {
            return t;
        }
        let (x, y) = if a <= b { (a, b) } else { (b, a) };
        self.intern(Node::Or(x, y))
    }

    /// Implication `A ⇒ B`, desugared to `¬A ∨ B`.
    pub fn implies(&mut self, a: FormulaId, b: FormulaId) -> FormulaId {
        let na = self.not(a);
        self.or(na, b)
    }

    /// Biconditional `A ⇔ B`.
    pub fn iff(&mut self, a: FormulaId, b: FormulaId) -> FormulaId {
        let ab = self.implies(a, b);
        let ba = self.implies(b, a);
        self.and(ab, ba)
    }

    /// Conjunction of many formulas.
    pub fn and_all<I: IntoIterator<Item = FormulaId>>(&mut self, items: I) -> FormulaId {
        let mut acc = self.tru();
        for f in items {
            acc = self.and(acc, f);
        }
        acc
    }

    /// Disjunction of many formulas.
    pub fn or_all<I: IntoIterator<Item = FormulaId>>(&mut self, items: I) -> FormulaId {
        let mut acc = self.fls();
        for f in items {
            acc = self.or(acc, f);
        }
        acc
    }

    /// "Next time". `○⊤ = ⊤` and `○⊥ = ⊥` (time is infinite).
    pub fn next(&mut self, f: FormulaId) -> FormulaId {
        match self.node(f) {
            Node::True | Node::False => f,
            _ => self.intern(Node::Next(f)),
        }
    }

    /// `A until B`, folding `A U ⊤ = ⊤`, `A U ⊥ = ⊥`, `⊥ U B = B`,
    /// `A U A = A`.
    pub fn until(&mut self, a: FormulaId, b: FormulaId) -> FormulaId {
        match self.node(b) {
            Node::True | Node::False => return b,
            _ => {}
        }
        if a == b {
            return b;
        }
        if self.node(a) == Node::False {
            return b;
        }
        self.intern(Node::Until(a, b))
    }

    /// `A release B`, folding `A R ⊤ = ⊤`, `A R ⊥ = ⊥`, `⊤ R B = B`,
    /// `A R A = A`.
    pub fn release(&mut self, a: FormulaId, b: FormulaId) -> FormulaId {
        match self.node(b) {
            Node::True | Node::False => return b,
            _ => {}
        }
        if a == b {
            return b;
        }
        if self.node(a) == Node::True {
            return b;
        }
        self.intern(Node::Release(a, b))
    }

    /// "Sometime in the future" `◇A ≡ ⊤ U A`.
    pub fn eventually(&mut self, f: FormulaId) -> FormulaId {
        let t = self.tru();
        self.until(t, f)
    }

    /// "Always in the future" `□A ≡ ⊥ R A ≡ ¬◇¬A`.
    pub fn always(&mut self, f: FormulaId) -> FormulaId {
        let b = self.fls();
        self.release(b, f)
    }

    /// "Previous time" (strong). `●⊥ = ⊥`; note `●⊤ ≠ ⊤` (it is false at
    /// instant 0), so it is *not* folded.
    pub fn prev(&mut self, f: FormulaId) -> FormulaId {
        match self.node(f) {
            Node::False => f,
            _ => self.intern(Node::Prev(f)),
        }
    }

    /// `A since B`, folding `A S ⊤ = ⊤`, `A S ⊥ = ⊥`, `⊥ S B = B`,
    /// `A S A = A`.
    pub fn since(&mut self, a: FormulaId, b: FormulaId) -> FormulaId {
        match self.node(b) {
            Node::True | Node::False => return b,
            _ => {}
        }
        if a == b {
            return b;
        }
        if self.node(a) == Node::False {
            return b;
        }
        self.intern(Node::Since(a, b))
    }

    /// "Sometime in the past" `◈A ≡ ⊤ S A`.
    pub fn once(&mut self, f: FormulaId) -> FormulaId {
        let t = self.tru();
        self.since(t, f)
    }

    /// "Always in the past" `▣A ≡ ¬◈¬A`.
    pub fn historically(&mut self, f: FormulaId) -> FormulaId {
        let nf = self.not(f);
        let o = self.once(nf);
        self.not(o)
    }

    /// Bounded eventually `◇≤k A ≡ A ∨ ○A ∨ … ∨ ○^k A` (the metric
    /// operator of real-time extensions, desugared to a `○`-chain; cf.
    /// the Past Metric FOTL pointer in the paper's Section 5).
    pub fn eventually_within(&mut self, f: FormulaId, k: usize) -> FormulaId {
        let mut acc = f;
        let mut step = f;
        for _ in 0..k {
            step = self.next(step);
            acc = self.or(acc, step);
        }
        acc
    }

    /// Bounded always `□≤k A ≡ A ∧ ○A ∧ … ∧ ○^k A`.
    pub fn always_within(&mut self, f: FormulaId, k: usize) -> FormulaId {
        let mut acc = f;
        let mut step = f;
        for _ in 0..k {
            step = self.next(step);
            acc = self.and(acc, step);
        }
        acc
    }

    /// Bounded once `◈≤k A ≡ A ∨ ●A ∨ … ∨ ●^k A`.
    pub fn once_within(&mut self, f: FormulaId, k: usize) -> FormulaId {
        let mut acc = f;
        let mut step = f;
        for _ in 0..k {
            step = self.prev(step);
            acc = self.or(acc, step);
        }
        acc
    }

    /// Number of nodes in the DAG rooted at `f` (shared nodes counted
    /// once). This is the size measure relevant to the memoised
    /// algorithms in this crate.
    pub fn dag_size(&self, f: FormulaId) -> usize {
        let mut seen = vec![false; self.nodes.len()];
        let mut stack = vec![f];
        let mut n = 0usize;
        while let Some(id) = stack.pop() {
            if seen[id.index()] {
                continue;
            }
            seen[id.index()] = true;
            n += 1;
            match self.node(id) {
                Node::True | Node::False | Node::Atom(_) => {}
                Node::Not(g) | Node::Next(g) | Node::Prev(g) => stack.push(g),
                Node::And(a, b)
                | Node::Or(a, b)
                | Node::Until(a, b)
                | Node::Release(a, b)
                | Node::Since(a, b) => {
                    stack.push(a);
                    stack.push(b);
                }
            }
        }
        n
    }

    /// Size of the formula as a tree (the `|φ|` of the paper's bounds),
    /// saturating at `usize::MAX`. Computed with memoisation over the DAG.
    pub fn tree_size(&self, f: FormulaId) -> usize {
        fn go(arena: &Arena, f: FormulaId, memo: &mut HashMap<FormulaId, usize>) -> usize {
            if let Some(&n) = memo.get(&f) {
                return n;
            }
            let n = match arena.node(f) {
                Node::True | Node::False | Node::Atom(_) => 1,
                Node::Not(g) | Node::Next(g) | Node::Prev(g) => {
                    go(arena, g, memo).saturating_add(1)
                }
                Node::And(a, b)
                | Node::Or(a, b)
                | Node::Until(a, b)
                | Node::Release(a, b)
                | Node::Since(a, b) => go(arena, a, memo)
                    .saturating_add(go(arena, b, memo))
                    .saturating_add(1),
            };
            memo.insert(f, n);
            n
        }
        go(self, f, &mut HashMap::new())
    }

    /// True if the DAG rooted at `f` contains a past connective
    /// (`●`/`since`). The satisfiability engines only accept future
    /// formulas, as does the paper's Lemma 4.2.
    pub fn has_past(&self, f: FormulaId) -> bool {
        let mut seen = vec![false; self.nodes.len()];
        let mut stack = vec![f];
        while let Some(id) = stack.pop() {
            if seen[id.index()] {
                continue;
            }
            seen[id.index()] = true;
            match self.node(id) {
                Node::Prev(_) | Node::Since(_, _) => return true,
                Node::True | Node::False | Node::Atom(_) => {}
                Node::Not(g) | Node::Next(g) => stack.push(g),
                Node::And(a, b) | Node::Or(a, b) | Node::Until(a, b) | Node::Release(a, b) => {
                    stack.push(a);
                    stack.push(b);
                }
            }
        }
        false
    }

    /// True if the DAG rooted at `f` contains a future connective
    /// (`○`/`until`/`release`).
    pub fn has_future(&self, f: FormulaId) -> bool {
        let mut seen = vec![false; self.nodes.len()];
        let mut stack = vec![f];
        while let Some(id) = stack.pop() {
            if seen[id.index()] {
                continue;
            }
            seen[id.index()] = true;
            match self.node(id) {
                Node::Next(_) | Node::Until(_, _) | Node::Release(_, _) => return true,
                Node::True | Node::False | Node::Atom(_) => {}
                Node::Not(g) | Node::Prev(g) => stack.push(g),
                Node::And(a, b) | Node::Or(a, b) | Node::Since(a, b) => {
                    stack.push(a);
                    stack.push(b);
                }
            }
        }
        false
    }

    /// The set of atoms occurring in the DAG rooted at `f`, in id order.
    pub fn atoms_of(&self, f: FormulaId) -> Vec<AtomId> {
        let mut seen = vec![false; self.nodes.len()];
        let mut found = vec![false; self.atom_names.len()];
        let mut stack = vec![f];
        while let Some(id) = stack.pop() {
            if seen[id.index()] {
                continue;
            }
            seen[id.index()] = true;
            match self.node(id) {
                Node::Atom(a) => found[a.index()] = true,
                Node::True | Node::False => {}
                Node::Not(g) | Node::Next(g) | Node::Prev(g) => stack.push(g),
                Node::And(a, b)
                | Node::Or(a, b)
                | Node::Until(a, b)
                | Node::Release(a, b)
                | Node::Since(a, b) => {
                    stack.push(a);
                    stack.push(b);
                }
            }
        }
        found
            .iter()
            .enumerate()
            .filter(|(_, &v)| v)
            .map(|(i, _)| AtomId(i as u32))
            .collect()
    }

    /// The support set of `f` ([`Arena::atoms_of`]), memoised on the
    /// arena. Hash-consing makes the result a pure function of the id,
    /// so repeated queries for the same root — the engine fingerprints
    /// every append against its residue's support — cost one hash
    /// lookup instead of a DAG walk.
    pub fn atoms_of_cached(&mut self, f: FormulaId) -> std::sync::Arc<[AtomId]> {
        if let Some(s) = self.support_memo.get(&f) {
            return s.clone();
        }
        let s: std::sync::Arc<[AtomId]> = self.atoms_of(f).into();
        self.support_memo.insert(f, s.clone());
        s
    }

    /// Rebuilds the DAG rooted at `root` of a *source* arena inside
    /// this arena, mapping source atom `AtomId(i)` to `atoms[i]` (which
    /// must already be interned here). Returns the translated root.
    ///
    /// The rebuild goes through this arena's folding constructors, so
    /// the result is in the same canonical form a direct construction
    /// would produce — translation commutes with construction, which is
    /// what lets per-worker arenas merge without perturbing `dag_size`
    /// or `tree_size`. `memo` caches source-id → destination-id across
    /// calls; reuse it when translating many roots from one source.
    ///
    /// Iterative (explicit work stack), so deeply right- or left-leaning
    /// source formulas cannot overflow the call stack.
    pub fn translate_from(
        &mut self,
        src: &Arena,
        root: FormulaId,
        atoms: &[AtomId],
        memo: &mut HashMap<FormulaId, FormulaId>,
    ) -> FormulaId {
        enum Task {
            Visit(FormulaId),
            Build(FormulaId),
        }
        let mut stack = vec![Task::Visit(root)];
        while let Some(task) = stack.pop() {
            match task {
                Task::Visit(f) => {
                    if memo.contains_key(&f) {
                        continue;
                    }
                    match src.node(f) {
                        Node::True => {
                            let id = self.tru();
                            memo.insert(f, id);
                        }
                        Node::False => {
                            let id = self.fls();
                            memo.insert(f, id);
                        }
                        Node::Atom(a) => {
                            let id = self.atom_id(atoms[a.index()]);
                            memo.insert(f, id);
                        }
                        Node::Not(g) | Node::Next(g) | Node::Prev(g) => {
                            stack.push(Task::Build(f));
                            stack.push(Task::Visit(g));
                        }
                        Node::And(a, b)
                        | Node::Or(a, b)
                        | Node::Until(a, b)
                        | Node::Release(a, b)
                        | Node::Since(a, b) => {
                            stack.push(Task::Build(f));
                            stack.push(Task::Visit(a));
                            stack.push(Task::Visit(b));
                        }
                    }
                }
                Task::Build(f) => {
                    let id = match src.node(f) {
                        Node::True | Node::False | Node::Atom(_) => unreachable!(),
                        Node::Not(g) => {
                            let g = memo[&g];
                            self.not(g)
                        }
                        Node::Next(g) => {
                            let g = memo[&g];
                            self.next(g)
                        }
                        Node::Prev(g) => {
                            let g = memo[&g];
                            self.prev(g)
                        }
                        Node::And(a, b) => {
                            let (a, b) = (memo[&a], memo[&b]);
                            self.and(a, b)
                        }
                        Node::Or(a, b) => {
                            let (a, b) = (memo[&a], memo[&b]);
                            self.or(a, b)
                        }
                        Node::Until(a, b) => {
                            let (a, b) = (memo[&a], memo[&b]);
                            self.until(a, b)
                        }
                        Node::Release(a, b) => {
                            let (a, b) = (memo[&a], memo[&b]);
                            self.release(a, b)
                        }
                        Node::Since(a, b) => {
                            let (a, b) = (memo[&a], memo[&b]);
                            self.since(a, b)
                        }
                    };
                    memo.insert(f, id);
                }
            }
        }
        memo[&root]
    }

    /// Renders a formula using the crate's text syntax (parseable back by
    /// [`crate::parser::parse`]).
    pub fn display(&self, f: FormulaId) -> FormulaDisplay<'_> {
        FormulaDisplay { arena: self, f }
    }

    fn fmt_prec(&self, f: FormulaId, prec: u8, out: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Precedence levels: 0 = or, 1 = and, 2 = until/since/release,
        // 3 = unary, 4 = atoms.
        let node = self.node(f);
        let my_prec = match node {
            Node::Or(_, _) => 0,
            Node::And(_, _) => 1,
            Node::Until(_, _) | Node::Release(_, _) | Node::Since(_, _) => 2,
            Node::Not(_) | Node::Next(_) | Node::Prev(_) => 3,
            Node::True | Node::False | Node::Atom(_) => 4,
        };
        let parens = my_prec < prec;
        if parens {
            write!(out, "(")?;
        }
        match node {
            Node::True => write!(out, "true")?,
            Node::False => write!(out, "false")?,
            Node::Atom(a) => write!(out, "{}", self.atom_name(a))?,
            Node::Not(g) => {
                write!(out, "!")?;
                self.fmt_prec(g, 3, out)?;
            }
            Node::Next(g) => {
                write!(out, "X ")?;
                self.fmt_prec(g, 3, out)?;
            }
            Node::Prev(g) => {
                write!(out, "Y ")?;
                self.fmt_prec(g, 3, out)?;
            }
            Node::And(a, b) => {
                self.fmt_prec(a, 2, out)?;
                write!(out, " & ")?;
                self.fmt_prec(b, 2, out)?;
            }
            Node::Or(a, b) => {
                self.fmt_prec(a, 1, out)?;
                write!(out, " | ")?;
                self.fmt_prec(b, 1, out)?;
            }
            Node::Until(a, b) => {
                // Render ◇/□ sugar for readability.
                if self.node(a) == Node::True {
                    write!(out, "F ")?;
                    self.fmt_prec(b, 3, out)?;
                } else {
                    self.fmt_prec(a, 3, out)?;
                    write!(out, " U ")?;
                    self.fmt_prec(b, 3, out)?;
                }
            }
            Node::Release(a, b) => {
                if self.node(a) == Node::False {
                    write!(out, "G ")?;
                    self.fmt_prec(b, 3, out)?;
                } else {
                    self.fmt_prec(a, 3, out)?;
                    write!(out, " R ")?;
                    self.fmt_prec(b, 3, out)?;
                }
            }
            Node::Since(a, b) => {
                if self.node(a) == Node::True {
                    write!(out, "O ")?;
                    self.fmt_prec(b, 3, out)?;
                } else {
                    self.fmt_prec(a, 3, out)?;
                    write!(out, " S ")?;
                    self.fmt_prec(b, 3, out)?;
                }
            }
        }
        if parens {
            write!(out, ")")?;
        }
        Ok(())
    }
}

/// Display adapter returned by [`Arena::display`].
pub struct FormulaDisplay<'a> {
    arena: &'a Arena,
    f: FormulaId,
}

impl fmt::Display for FormulaDisplay<'_> {
    fn fmt(&self, out: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.arena.fmt_prec(self.f, 0, out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hash_consing_shares_nodes() {
        let mut ar = Arena::new();
        let p = ar.atom("p");
        let q = ar.atom("q");
        let a = ar.and(p, q);
        let b = ar.and(q, p);
        assert_eq!(a, b, "commutative normalisation should share ∧ nodes");
        let c = ar.or(p, q);
        let d = ar.or(q, p);
        assert_eq!(c, d);
        assert_ne!(a, c);
    }

    #[test]
    fn constant_folding() {
        let mut ar = Arena::new();
        let p = ar.atom("p");
        let t = ar.tru();
        let f = ar.fls();
        assert_eq!(ar.and(p, t), p);
        assert_eq!(ar.and(p, f), f);
        assert_eq!(ar.or(p, f), p);
        assert_eq!(ar.or(p, t), t);
        let np = ar.not(p);
        assert_eq!(ar.not(np), p);
        assert_eq!(ar.and(p, np), f);
        assert_eq!(ar.or(p, np), t);
        assert_eq!(ar.next(t), t);
        assert_eq!(ar.next(f), f);
        assert_eq!(ar.until(p, t), t);
        assert_eq!(ar.until(p, f), f);
        assert_eq!(ar.until(f, p), p);
        assert_eq!(ar.release(t, p), p);
        assert_eq!(ar.since(f, p), p);
        assert_eq!(ar.since(p, t), t);
    }

    #[test]
    fn prev_true_not_folded() {
        // ●⊤ is false at instant 0, so it must stay a real node.
        let mut ar = Arena::new();
        let t = ar.tru();
        let pt = ar.prev(t);
        assert_ne!(pt, t);
        assert!(matches!(ar.node(pt), Node::Prev(_)));
    }

    #[test]
    fn sizes() {
        let mut ar = Arena::new();
        let p = ar.atom("p");
        let q = ar.atom("q");
        let u = ar.until(p, q);
        let big = ar.and(u, u);
        assert_eq!(big, u, "idempotence folds a ∧ a");
        let np = ar.not(p);
        let g = ar.and(u, np);
        assert_eq!(ar.dag_size(g), 5); // p, q, U, ¬p, ∧
        assert_eq!(ar.tree_size(g), 6); // p appears twice in the tree
    }

    #[test]
    fn atoms_of_collects_in_order() {
        let mut ar = Arena::new();
        let p = ar.atom("p");
        let q = ar.atom("q");
        let _r = ar.atom("r");
        let f = ar.and(q, p);
        let atoms = ar.atoms_of(f);
        assert_eq!(atoms, vec![AtomId(0), AtomId(1)]);
    }

    #[test]
    fn atoms_of_cached_matches_uncached() {
        let mut ar = Arena::new();
        let p = ar.atom("p");
        let q = ar.atom("q");
        let f = ar.until(p, q);
        let direct = ar.atoms_of(f);
        let cached = ar.atoms_of_cached(f);
        assert_eq!(&*cached, &direct[..]);
        // Second query is served from the memo (same allocation).
        let again = ar.atoms_of_cached(f);
        assert!(std::sync::Arc::ptr_eq(&cached, &again));
        // Later-built formulas get their own entry.
        let g = ar.and(f, p);
        assert_eq!(&*ar.atoms_of_cached(g), &ar.atoms_of(g)[..]);
    }

    #[test]
    fn past_future_detection() {
        let mut ar = Arena::new();
        let p = ar.atom("p");
        let fut = ar.eventually(p);
        let past = ar.once(p);
        assert!(ar.has_future(fut));
        assert!(!ar.has_past(fut));
        assert!(ar.has_past(past));
        assert!(!ar.has_future(past));
        let both = ar.and(fut, past);
        assert!(ar.has_future(both) && ar.has_past(both));
    }

    #[test]
    fn display_round_shape() {
        let mut ar = Arena::new();
        let p = ar.atom("p");
        let q = ar.atom("q");
        let f = ar.until(p, q);
        let g = ar.always(f);
        let s = format!("{}", ar.display(g));
        assert_eq!(s, "G (p U q)");
        let ev = ar.eventually(p);
        assert_eq!(format!("{}", ar.display(ev)), "F p");
    }
}

#[cfg(test)]
mod translate_tests {
    use super::*;

    #[test]
    fn translation_commutes_with_construction() {
        // Build in a worker arena with its own atom numbering, then
        // translate into a main arena that interned the same letters in
        // a different order: the result must equal a direct build.
        let mut w = Arena::new();
        let wp = w.atom("p");
        let wq = w.atom("q");
        let wu = w.until(wp, wq);
        let wg = w.always(wu);
        let wnp = w.not(wp);
        let wf = w.and(wg, wnp);

        let mut main = Arena::new();
        let mq = main.intern_atom("q");
        let mp = main.intern_atom("p");
        let remap = vec![mp, mq]; // worker AtomId(0)="p" → mp, …
        let mut memo = HashMap::new();
        let got = main.translate_from(&w, wf, &remap, &mut memo);

        let direct = {
            let p = main.atom_id(mp);
            let q = main.atom_id(mq);
            let u = main.until(p, q);
            let g = main.always(u);
            let np = main.not(p);
            main.and(g, np)
        };
        assert_eq!(got, direct);
        assert_eq!(main.dag_size(got), w.dag_size(wf));
        assert_eq!(main.tree_size(got), w.tree_size(wf));
    }

    #[test]
    fn translation_refolds_against_destination_state() {
        // ¬p exists in the destination before p ∧ ¬p arrives from the
        // worker: complementation folding must still fire.
        let mut w = Arena::new();
        let wp = w.atom("p");
        let wnp = w.not(wp);
        let wf = w.and(wp, wnp);
        assert_eq!(w.node(wf), Node::False, "source folds too");

        let mut main = Arena::new();
        let mp = main.intern_atom("p");
        let mut memo = HashMap::new();
        let got = main.translate_from(&w, wf, &[mp], &mut memo);
        assert_eq!(main.node(got), Node::False);
    }

    #[test]
    fn memo_reuse_across_roots() {
        let mut w = Arena::new();
        let wp = w.atom("p");
        let wx = w.next(wp);
        let wy = w.and(wp, wx);

        let mut main = Arena::new();
        let mp = main.intern_atom("p");
        let mut memo = HashMap::new();
        let a = main.translate_from(&w, wx, &[mp], &mut memo);
        let before = memo.len();
        let b = main.translate_from(&w, wy, &[mp], &mut memo);
        assert!(memo.len() > before);
        let expect = {
            let p = main.atom_id(mp);
            main.and(p, a)
        };
        assert_eq!(b, expect);
    }

    #[test]
    fn deep_chains_do_not_overflow() {
        let mut w = Arena::new();
        let mut f = w.atom("p");
        for _ in 0..200_000 {
            f = w.next(f);
        }
        let mut main = Arena::new();
        let mp = main.intern_atom("p");
        let mut memo = HashMap::new();
        let got = main.translate_from(&w, f, &[mp], &mut memo);
        assert_eq!(main.dag_size(got), w.dag_size(f));
    }
}

#[cfg(test)]
mod bounded_ops_tests {
    use super::*;

    #[test]
    fn bounded_operators_build_next_chains() {
        let mut ar = Arena::new();
        let p = ar.atom("p");
        let f = ar.eventually_within(p, 2);
        let x1 = ar.next(p);
        let x2 = ar.next(x1);
        let expect = {
            let a = ar.or(p, x1);
            ar.or(a, x2)
        };
        assert_eq!(f, expect);
        assert_eq!(ar.eventually_within(p, 0), p);
        let g = ar.always_within(p, 1);
        let expect_g = ar.and(p, x1);
        assert_eq!(g, expect_g);
        let o = ar.once_within(p, 1);
        let y1 = ar.prev(p);
        let expect_o = ar.or(p, y1);
        assert_eq!(o, expect_o);
    }

    #[test]
    fn bounded_eventually_is_until_free_hence_probe_friendly() {
        let mut ar = Arena::new();
        let p = ar.atom("p");
        let q = ar.atom("q");
        let within = ar.eventually_within(q, 3);
        let imp = ar.implies(p, within);
        let g = ar.always(imp);
        let nnf = crate::nnf::nnf(&mut ar, g).unwrap();
        assert!(crate::safety::is_syntactically_safe(&mut ar, nnf).unwrap());
        let r = crate::sat::is_satisfiable(&mut ar, g).unwrap();
        assert!(r.satisfiable);
    }

    #[test]
    fn rehydrate_is_bit_identical() {
        let mut ar = Arena::new();
        let p = ar.atom("p");
        let q = ar.atom("q(7)");
        let u = ar.until(p, q);
        let g = ar.always(u);
        let y = ar.since(q, g);
        let dump_nodes = ar.nodes().to_vec();
        let dump_atoms = ar.atom_names_in_order().to_vec();

        let mut back = Arena::rehydrate(dump_nodes, dump_atoms).unwrap();
        assert_eq!(back.dag_len(), ar.dag_len());
        assert_eq!(back.atom_count(), ar.atom_count());
        for i in 0..ar.dag_len() {
            let id = FormulaId(i as u32);
            assert_eq!(back.node(id), ar.node(id), "node {i}");
        }
        // Interning the same structures lands on the same ids —
        // hash-consing picks up exactly where the original left off.
        let p2 = back.atom("p");
        let q2 = back.atom("q(7)");
        assert_eq!(p2, p);
        let u2 = back.until(p2, q2);
        assert_eq!(u2, u);
        let y2 = {
            let g2 = back.always(u2);
            back.since(q2, g2)
        };
        assert_eq!(y2, y);
        // And fresh letters allocate past the dump, not inside it.
        let fresh = back.intern_atom("r");
        assert_eq!(fresh.index(), ar.atom_count());
    }

    #[test]
    fn rehydrate_rejects_malformed_dumps() {
        // Child after itself.
        assert!(Arena::rehydrate(vec![Node::Not(FormulaId(0))], vec![]).is_err());
        // Atom id out of range.
        assert!(Arena::rehydrate(vec![Node::Atom(AtomId(0))], vec![]).is_err());
        // Duplicate node.
        assert!(Arena::rehydrate(vec![Node::True, Node::True], vec![]).is_err());
        // Duplicate atom name.
        assert!(Arena::rehydrate(vec![], vec!["p".into(), "p".into()]).is_err());
    }
}
