//! The classic closure-set tableau for PTL satisfiability.
//!
//! This is the textbook object behind the Sistla–Clarke upper bound that
//! Lemma 4.2 of the paper cites: tableau states are *subsets of the
//! subformula closure* that are locally consistent, transitions discharge
//! the `○`/`until`/`release` obligations, and satisfiability is
//! nonemptiness under the usual fulfilment (generalized Büchi)
//! condition. It enumerates the full `2^|closure|` powerset up front, so
//! it is kept as a baseline/oracle (ablation E8) and refuses closures
//! larger than a configurable cap; the production engine is
//! [`crate::buchi`].

use crate::arena::{Arena, FormulaId, Node};
use crate::closure::Closure;
use crate::emptiness::FairGraph;
use crate::nnf::{nnf, NnfError};
use crate::trace::PropState;

/// Errors from tableau construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TableauError {
    /// The formula contains past connectives.
    Past,
    /// The closure exceeds the enumeration cap.
    ClosureTooLarge {
        /// Closure size of the NNF input.
        size: usize,
        /// The configured cap.
        cap: usize,
    },
}

impl std::fmt::Display for TableauError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TableauError::Past => write!(f, "past connectives are not supported"),
            TableauError::ClosureTooLarge { size, cap } => write!(
                f,
                "closure has {size} members, beyond the tableau cap of {cap}; \
                 use the Büchi engine"
            ),
        }
    }
}

impl std::error::Error for TableauError {}

impl From<NnfError> for TableauError {
    fn from(_: NnfError) -> Self {
        TableauError::Past
    }
}

/// The explicitly-enumerated tableau.
pub struct Tableau {
    /// The closure of the NNF formula.
    pub closure_size: usize,
    /// Locally consistent subsets, as closure bitmasks.
    states: Vec<u64>,
    /// `required_next[i]`: obligations state `i` imposes on any
    /// successor.
    required_next: Vec<u64>,
    /// Indices of states containing the root formula.
    initial: Vec<u32>,
    /// For each `until` member: `(until bit, b bit)`.
    until_bits: Vec<(u64, u64)>,
    /// Closure member ids, for label extraction.
    members: Vec<FormulaId>,
}

impl Tableau {
    /// Builds the tableau for `f` with the default closure cap (18).
    pub fn build(arena: &mut Arena, f: FormulaId) -> Result<Self, TableauError> {
        Self::build_capped(arena, f, 18)
    }

    /// Builds the tableau enumerating up to `2^cap` candidate states.
    pub fn build_capped(arena: &mut Arena, f: FormulaId, cap: usize) -> Result<Self, TableauError> {
        let root = nnf(arena, f)?;
        let cl = Closure::of(arena, root);
        let n = cl.len();
        if n > cap || n > 63 {
            return Err(TableauError::ClosureTooLarge { size: n, cap });
        }
        let bit = |i: usize| 1u64 << i;

        // Precompute per-member consistency data.
        enum Rule {
            Free,
            FalseForbidden,
            NotPair(u64),         // ¬g: may not co-occur with g
            AndNeeds(u64),        // both children
            OrNeeds(u64, u64),    // one of the children
            UntilNeeds(u64, u64), // b or a now
            ReleaseNeeds(u64),    // b now
        }
        let mut rules = Vec::with_capacity(n);
        let mut next_of: Vec<Option<u64>> = vec![None; n]; // ○g: bit of g
        for (i, &m) in cl.members.iter().enumerate() {
            let r = match arena.node(m) {
                Node::True | Node::Atom(_) => Rule::Free,
                Node::False => Rule::FalseForbidden,
                Node::Not(g) => Rule::NotPair(bit(cl.idx(g))),
                Node::And(a, b) => Rule::AndNeeds(bit(cl.idx(a)) | bit(cl.idx(b))),
                Node::Or(a, b) => Rule::OrNeeds(bit(cl.idx(a)), bit(cl.idx(b))),
                Node::Until(a, b) => Rule::UntilNeeds(bit(cl.idx(a)), bit(cl.idx(b))),
                Node::Release(_, b) => Rule::ReleaseNeeds(bit(cl.idx(b))),
                Node::Next(g) => {
                    next_of[i] = Some(bit(cl.idx(g)));
                    Rule::Free
                }
                Node::Prev(_) | Node::Since(_, _) => return Err(TableauError::Past),
            };
            rules.push(r);
        }

        // Enumerate locally consistent subsets and their successor
        // obligations.
        let mut states = Vec::new();
        let mut required_next = Vec::new();
        'subsets: for mask in 0u64..(1u64 << n) {
            let mut req = 0u64;
            for i in 0..n {
                if mask & bit(i) == 0 {
                    continue;
                }
                match rules[i] {
                    Rule::Free => {}
                    Rule::FalseForbidden => continue 'subsets,
                    Rule::NotPair(g) => {
                        if mask & g != 0 {
                            continue 'subsets;
                        }
                    }
                    Rule::AndNeeds(both) => {
                        if mask & both != both {
                            continue 'subsets;
                        }
                    }
                    Rule::OrNeeds(a, b) => {
                        if mask & (a | b) == 0 {
                            continue 'subsets;
                        }
                    }
                    Rule::UntilNeeds(a, b) => {
                        if mask & b != 0 {
                            // discharged now
                        } else if mask & a != 0 {
                            req |= bit(i); // must persist
                        } else {
                            continue 'subsets;
                        }
                    }
                    Rule::ReleaseNeeds(b) => {
                        if mask & b == 0 {
                            continue 'subsets;
                        }
                        // aRb with a false now must persist. a's bit:
                        // recover from the node.
                        if let Node::Release(a, _) = arena.node(cl.members[i]) {
                            if mask & bit(cl.idx(a)) == 0 {
                                req |= bit(i);
                            }
                        }
                    }
                }
                if let Some(g) = next_of[i] {
                    req |= g;
                }
            }
            states.push(mask);
            required_next.push(req);
        }

        let root_bit = bit(cl.idx(root));
        let initial = states
            .iter()
            .enumerate()
            .filter(|(_, &m)| m & root_bit != 0)
            .map(|(i, _)| i as u32)
            .collect();

        let until_bits = cl
            .untils
            .iter()
            .map(|&u| {
                let b = match arena.node(cl.members[u]) {
                    Node::Until(_, b) => b,
                    _ => unreachable!(),
                };
                (bit(u), bit(cl.idx(b)))
            })
            .collect();

        Ok(Self {
            closure_size: n,
            states,
            required_next,
            initial,
            until_bits,
            members: cl.members,
        })
    }

    /// Number of locally consistent tableau states.
    pub fn len(&self) -> usize {
        self.states.len()
    }

    /// True if no consistent state exists.
    pub fn is_empty(&self) -> bool {
        self.states.is_empty()
    }

    /// Converts to the shared fair-graph representation plus labels.
    pub fn to_fair_graph(&self, arena: &Arena) -> (FairGraph, Vec<PropState>) {
        let s = self.states.len();
        let mut succ: Vec<Vec<u32>> = vec![Vec::new(); s];
        for (out, &req) in succ.iter_mut().zip(&self.required_next) {
            for (j, &m) in self.states.iter().enumerate() {
                if m & req == req {
                    out.push(j as u32);
                }
            }
        }
        let num_sets = self.until_bits.len();
        let wordn = num_sets.div_ceil(64).max(1);
        let mut accept = vec![vec![0u64; wordn]; s];
        for (set, &(ubit, bbit)) in self.until_bits.iter().enumerate() {
            for (i, &m) in self.states.iter().enumerate() {
                if m & ubit == 0 || m & bbit != 0 {
                    accept[i][set / 64] |= 1 << (set % 64);
                }
            }
        }
        let labels = self
            .states
            .iter()
            .map(|&m| {
                let trues = self.members.iter().enumerate().filter_map(|(i, &f)| {
                    if m & (1u64 << i) != 0 {
                        if let Node::Atom(a) = arena.node(f) {
                            return Some(a);
                        }
                    }
                    None
                });
                PropState::from_true_atoms(trues)
            })
            .collect();
        (
            FairGraph {
                succ,
                initial: self.initial.clone(),
                num_sets,
                accept,
            },
            labels,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::emptiness::find_fair_lasso;

    fn sat(arena: &mut Arena, f: FormulaId) -> bool {
        let t = Tableau::build(arena, f).unwrap();
        let (g, _) = t.to_fair_graph(arena);
        find_fair_lasso(&g).is_some()
    }

    #[test]
    fn basic_verdicts() {
        let mut ar = Arena::new();
        let p = ar.atom("p");
        let np = ar.not(p);
        assert!(sat(&mut ar, p));
        let gp = ar.always(p);
        assert!(sat(&mut ar, gp));
        let fnp = ar.eventually(np);
        let conj = ar.and(gp, fnp);
        assert!(!sat(&mut ar, conj));
    }

    #[test]
    fn until_fulfilment_enforced() {
        let mut ar = Arena::new();
        let p = ar.atom("p");
        let q = ar.atom("q");
        let nq = ar.not(q);
        let u = ar.until(p, q);
        let gnq = ar.always(nq);
        let conj = ar.and(u, gnq);
        assert!(!sat(&mut ar, conj));
        assert!(sat(&mut ar, u));
    }

    #[test]
    fn cap_is_enforced() {
        let mut ar = Arena::new();
        // Build a formula with a closure larger than a tiny cap.
        let mut f = ar.atom("a0");
        for i in 1..10 {
            let a = ar.atom(&format!("a{i}"));
            let x = ar.next(a);
            f = ar.and(f, x);
        }
        match Tableau::build_capped(&mut ar, f, 4) {
            Err(TableauError::ClosureTooLarge { size, cap: 4 }) => assert!(size > 4),
            Err(other) => panic!("expected cap error, got {other:?}"),
            Ok(_) => panic!("expected cap error, got a tableau"),
        }
    }

    #[test]
    fn agrees_with_buchi_on_small_formulas() {
        use crate::buchi::Buchi;
        let mut ar = Arena::new();
        let p = ar.atom("p");
        let q = ar.atom("q");
        let np = ar.not(p);
        let nq = ar.not(q);
        let candidates = {
            let u = ar.until(p, q);
            let r = ar.release(np, q);
            let g1 = ar.always(u);
            let f1 = ar.eventually(r);
            let x1 = ar.next(np);
            let c1 = ar.and(g1, x1);
            let c2 = ar.and(f1, nq);
            let gnq = ar.always(nq);
            let c3 = ar.and(u, gnq);
            vec![u, r, g1, f1, c1, c2, c3]
        };
        for f in candidates {
            let t_sat = sat(&mut ar, f);
            let b = Buchi::build(&mut ar, f).unwrap();
            let (g, _) = b.to_fair_graph(&ar);
            let b_sat = find_fair_lasso(&g).is_some();
            assert_eq!(t_sat, b_sat, "engines disagree on {}", ar.display(f));
        }
    }
}
