//! Structured-key atom interning.
//!
//! The [`Arena`] interns atoms by *name*; every
//! consumer that derives its propositional vocabulary from structured
//! data (the grounding's `p(a⃗)` and `(a=b)` letters, the tdb state
//! encoding) used to keep its own ad-hoc `HashMap<(…), AtomId>` next to
//! the arena and render a name string even on lookup hits. An
//! [`AtomInterner`] replaces those: it maps a typed key to the interned
//! [`AtomId`] and renders the display name only on the first sighting
//! of a key, so steady-state lookups never allocate.
//!
//! The interner does not own an arena — it is a key index *over* one —
//! so several interners with different key types can share a single
//! arena, and the arena remains the sole authority on ids.

use crate::arena::{Arena, AtomId};
use std::collections::HashMap;
use std::hash::Hash;

/// A typed key → [`AtomId`] index over an [`Arena`].
///
/// `K` is the structured key (e.g. a `(PredId, Vec<GArg>)` pair); the
/// rendered name is produced by the closure passed to [`intern`]
/// (called only for keys not seen before).
///
/// [`intern`]: AtomInterner::intern
#[derive(Debug, Clone, Default)]
pub struct AtomInterner<K> {
    map: HashMap<K, AtomId>,
}

/// First-sight record of the keys an [`AtomInterner`] created, in
/// creation order.
///
/// Entry `i` holds the key and rendered name of the atom a *local*
/// interner assigned `AtomId(i)` (a fresh interner over a fresh arena
/// hands out dense ids `0, 1, 2, …`). Replaying the log into another
/// interner/arena pair with [`AtomInterner::replay`] therefore yields a
/// local-id → merged-id remap table — the mechanism the sharded
/// grounding path uses to merge per-worker vocabularies while keeping
/// the merged atom order identical to a sequential run.
#[derive(Debug, Clone, Default)]
pub struct InternLog<K> {
    entries: Vec<(K, String)>,
}

impl<K> InternLog<K> {
    /// An empty log.
    pub fn new() -> Self {
        Self {
            entries: Vec::new(),
        }
    }

    /// Number of logged first sightings.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether nothing has been logged.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The `(key, rendered name)` entries in first-sight order.
    pub fn iter(&self) -> impl Iterator<Item = (&K, &str)> {
        self.entries.iter().map(|(k, n)| (k, n.as_str()))
    }
}

impl<K: Eq + Hash + Clone> AtomInterner<K> {
    /// An empty interner.
    pub fn new() -> Self {
        Self {
            map: HashMap::new(),
        }
    }

    /// The id for `key`, interning `render(&key)` into `arena` on first
    /// sight. Stable: the same key always returns the same id.
    pub fn intern(
        &mut self,
        arena: &mut Arena,
        key: K,
        render: impl FnOnce(&K) -> String,
    ) -> AtomId {
        if let Some(&id) = self.map.get(&key) {
            return id;
        }
        let name = render(&key);
        let id = arena.intern_atom(&name);
        self.map.insert(key, id);
        id
    }

    /// Like [`intern`](Self::intern), but records every first sighting
    /// in `log` so the interning session can later be replayed into a
    /// different arena with [`replay`](Self::replay).
    pub fn intern_logged(
        &mut self,
        arena: &mut Arena,
        log: &mut InternLog<K>,
        key: K,
        render: impl FnOnce(&K) -> String,
    ) -> AtomId {
        if let Some(&id) = self.map.get(&key) {
            return id;
        }
        let name = render(&key);
        let id = arena.intern_atom(&name);
        log.entries.push((key.clone(), name));
        self.map.insert(key, id);
        id
    }

    /// Replays a first-sight `log` (from a worker's local interner)
    /// into this interner/arena, in log order. Keys already present are
    /// skipped without re-rendering; fresh keys are interned under
    /// their recorded names. Returns the remap table: entry `i` is the
    /// id *this* interner holds for the key a local interner assigned
    /// `AtomId(i)`.
    ///
    /// Because a fresh key first seen in log `j` of a chunk-ordered
    /// sequence of logs is interned here after every key of logs `< j`
    /// and before later first sightings of log `j`, replaying the
    /// workers' logs in canonical chunk order reproduces exactly the
    /// atom order a sequential first-sight pass would have produced.
    pub fn replay(&mut self, arena: &mut Arena, log: &InternLog<K>) -> Vec<AtomId> {
        log.entries
            .iter()
            .map(|(key, name)| {
                if let Some(&id) = self.map.get(key) {
                    return id;
                }
                let id = arena.intern_atom(name);
                self.map.insert(key.clone(), id);
                id
            })
            .collect()
    }

    /// Rebuilds an interner from explicit `(key, id)` pairs — the
    /// restore half of a durable snapshot, where the pairs come from
    /// [`iter`](Self::iter) (serialised in id order) and the ids
    /// reference an arena rebuilt with `Arena::rehydrate`. Duplicate
    /// keys are rejected; id validity is the caller's contract with
    /// the arena dump.
    pub fn from_pairs(pairs: impl IntoIterator<Item = (K, AtomId)>) -> Result<Self, &'static str> {
        let mut map = HashMap::new();
        for (key, id) in pairs {
            if map.insert(key, id).is_some() {
                return Err("duplicate key in interner dump");
            }
        }
        Ok(Self { map })
    }

    /// The id for `key`, if it has been interned.
    pub fn get(&self, key: &K) -> Option<AtomId> {
        self.map.get(key).copied()
    }

    /// Number of interned keys.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether no key has been interned yet.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// All `(key, id)` pairs, in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (&K, AtomId)> {
        self.map.iter().map(|(k, &v)| (k, v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interns_once_per_key() {
        let mut arena = Arena::new();
        let mut it: AtomInterner<(u32, Vec<u64>)> = AtomInterner::new();
        let mut renders = 0;
        let a = it.intern(&mut arena, (0, vec![1, 2]), |_| {
            renders += 1;
            "P(1,2)".into()
        });
        let b = it.intern(&mut arena, (0, vec![1, 2]), |_| {
            renders += 1;
            "P(1,2)".into()
        });
        assert_eq!(a, b);
        assert_eq!(renders, 1, "render runs only on first sight");
        assert_eq!(it.len(), 1);
        assert_eq!(arena.atom_count(), 1);
    }

    #[test]
    fn distinct_keys_distinct_ids() {
        let mut arena = Arena::new();
        let mut it: AtomInterner<u32> = AtomInterner::new();
        let a = it.intern(&mut arena, 1, |k| format!("p{k}"));
        let b = it.intern(&mut arena, 2, |k| format!("p{k}"));
        assert_ne!(a, b);
        assert_eq!(it.get(&1), Some(a));
        assert_eq!(it.get(&3), None);
    }

    #[test]
    fn shares_an_arena_with_other_interners() {
        // Two interners with different key types over one arena: ids
        // stay globally unique because the arena assigns them.
        let mut arena = Arena::new();
        let mut preds: AtomInterner<(u32, Vec<u64>)> = AtomInterner::new();
        let mut eqs: AtomInterner<(u64, u64)> = AtomInterner::new();
        let p = preds.intern(&mut arena, (0, vec![7]), |_| "P(7)".into());
        let e = eqs.intern(&mut arena, (7, 7), |_| "(7=7)".into());
        assert_ne!(p, e);
        assert_eq!(arena.atom_count(), 2);
    }

    #[test]
    fn iter_exposes_all_pairs() {
        let mut arena = Arena::new();
        let mut it: AtomInterner<u8> = AtomInterner::new();
        for k in 0..5u8 {
            it.intern(&mut arena, k, |k| format!("a{k}"));
        }
        let mut keys: Vec<u8> = it.iter().map(|(k, _)| *k).collect();
        keys.sort_unstable();
        assert_eq!(keys, vec![0, 1, 2, 3, 4]);
        assert!(!it.is_empty());
    }

    #[test]
    fn replayed_logs_reproduce_sequential_first_sight_order() {
        // Sequential pass over a key stream vs. two workers splitting
        // the stream: replaying the workers' logs in chunk order must
        // give the sequential arena's atom table verbatim.
        let stream: Vec<u32> = vec![3, 1, 3, 2, 2, 5, 1, 4];
        let (left, right) = stream.split_at(4);

        let mut seq_arena = Arena::new();
        let mut seq: AtomInterner<u32> = AtomInterner::new();
        for &k in &stream {
            seq.intern(&mut seq_arena, k, |k| format!("a{k}"));
        }

        let mut main_arena = Arena::new();
        let mut main: AtomInterner<u32> = AtomInterner::new();
        let mut remaps = Vec::new();
        for chunk in [left, right] {
            let mut warena = Arena::new();
            let mut w: AtomInterner<u32> = AtomInterner::new();
            let mut log = InternLog::new();
            for &k in chunk {
                w.intern_logged(&mut warena, &mut log, k, |k| format!("a{k}"));
            }
            // Local ids are dense in first-sight order.
            for (i, (k, _)) in log.iter().enumerate() {
                assert_eq!(w.get(k), Some(AtomId(i as u32)));
            }
            remaps.push(main.replay(&mut main_arena, &log));
        }

        assert_eq!(main_arena.atom_count(), seq_arena.atom_count());
        for i in 0..main_arena.atom_count() {
            assert_eq!(
                main_arena.atom_name(AtomId(i as u32)),
                seq_arena.atom_name(AtomId(i as u32))
            );
        }
        // The remap agrees with the merged interner on every chunk key.
        for (chunk, remap) in [left, right].iter().zip(&remaps) {
            for &k in *chunk {
                let main_id = main.get(&k).unwrap();
                assert!(remap.contains(&main_id));
            }
        }
    }

    #[test]
    fn intern_logged_skips_log_on_repeat_sight() {
        let mut arena = Arena::new();
        let mut it: AtomInterner<u8> = AtomInterner::new();
        let mut log = InternLog::new();
        let a = it.intern_logged(&mut arena, &mut log, 7, |_| "p7".into());
        let b = it.intern_logged(&mut arena, &mut log, 7, |_| "p7".into());
        assert_eq!(a, b);
        assert_eq!(log.len(), 1);
        assert!(!log.is_empty());
    }

    #[test]
    fn agrees_with_arena_name_lookup() {
        let mut arena = Arena::new();
        let mut it: AtomInterner<u32> = AtomInterner::new();
        let id = it.intern(&mut arena, 9, |_| "Sub(9)".into());
        assert_eq!(arena.find_atom("Sub(9)"), Some(id));
        assert_eq!(arena.atom_name(id), "Sub(9)");
    }
}
