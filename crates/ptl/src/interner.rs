//! Structured-key atom interning.
//!
//! The [`Arena`] interns atoms by *name*; every
//! consumer that derives its propositional vocabulary from structured
//! data (the grounding's `p(a⃗)` and `(a=b)` letters, the tdb state
//! encoding) used to keep its own ad-hoc `HashMap<(…), AtomId>` next to
//! the arena and render a name string even on lookup hits. An
//! [`AtomInterner`] replaces those: it maps a typed key to the interned
//! [`AtomId`] and renders the display name only on the first sighting
//! of a key, so steady-state lookups never allocate.
//!
//! The interner does not own an arena — it is a key index *over* one —
//! so several interners with different key types can share a single
//! arena, and the arena remains the sole authority on ids.
//!
//! For concurrent vocabulary discovery there is the
//! [`ShardedInterner`]: worker threads `note` keys into hash-selected
//! shards (one mutex per shard, a fixed power-of-two shard count), and
//! a single-threaded [`seal`](ShardedInterner::seal) then assigns ids
//! in canonical *sorted-key* order. The assigned ids are a pure
//! function of the collected key **set** — independent of thread
//! count, interleaving, and shard assignment — which is what lets the
//! parallel grounding pipeline intern letters concurrently and still
//! produce an arena bit-identical to a sequential run.

use crate::arena::{Arena, AtomId};
use std::collections::hash_map::{DefaultHasher, Entry};
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::Mutex;

/// A typed key → [`AtomId`] index over an [`Arena`].
///
/// `K` is the structured key (e.g. a `(PredId, Vec<GArg>)` pair); the
/// rendered name is produced by the closure passed to [`intern`]
/// (called only for keys not seen before).
///
/// [`intern`]: AtomInterner::intern
#[derive(Debug, Clone, Default)]
pub struct AtomInterner<K> {
    map: HashMap<K, AtomId>,
}

impl<K: Eq + Hash + Clone> AtomInterner<K> {
    /// An empty interner.
    pub fn new() -> Self {
        Self {
            map: HashMap::new(),
        }
    }

    /// The id for `key`, interning `render(&key)` into `arena` on first
    /// sight. Stable: the same key always returns the same id.
    pub fn intern(
        &mut self,
        arena: &mut Arena,
        key: K,
        render: impl FnOnce(&K) -> String,
    ) -> AtomId {
        if let Some(&id) = self.map.get(&key) {
            return id;
        }
        let name = render(&key);
        let id = arena.intern_atom(&name);
        self.map.insert(key, id);
        id
    }

    /// Rebuilds an interner from explicit `(key, id)` pairs — the
    /// restore half of a durable snapshot, where the pairs come from
    /// [`iter`](Self::iter) (serialised in id order) and the ids
    /// reference an arena rebuilt with `Arena::rehydrate`. Duplicate
    /// keys are rejected; id validity is the caller's contract with
    /// the arena dump.
    pub fn from_pairs(pairs: impl IntoIterator<Item = (K, AtomId)>) -> Result<Self, &'static str> {
        let mut map = HashMap::new();
        for (key, id) in pairs {
            if map.insert(key, id).is_some() {
                return Err("duplicate key in interner dump");
            }
        }
        Ok(Self { map })
    }

    /// The id for `key`, if it has been interned.
    pub fn get(&self, key: &K) -> Option<AtomId> {
        self.map.get(key).copied()
    }

    /// Number of interned keys.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether no key has been interned yet.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// All `(key, id)` pairs, in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (&K, AtomId)> {
        self.map.iter().map(|(k, &v)| (k, v))
    }
}

/// Number of shards of a [`ShardedInterner`]. Fixed and a power of two
/// so shard selection is a mask of the key hash; 64 keeps per-shard
/// contention negligible for the worker counts the engine ever runs
/// (≤ 8) while staying cheap to drain at seal time.
const SHARD_COUNT: usize = 64;

/// A concurrent two-phase key collector feeding an [`AtomInterner`].
///
/// **Phase 1 (concurrent):** any number of threads call
/// [`note`](Self::note) through a shared reference. The key lands in
/// the shard its hash selects (per-shard [`Mutex`]); the display name
/// is rendered once, on the shard-local first sight. No ids are
/// assigned yet.
///
/// **Phase 2 (exclusive):** [`seal`](Self::seal) drains every shard,
/// sorts the collected keys by their `Ord`, and interns them in sorted
/// order into the target arena/interner. Ids are therefore a pure
/// function of the key *set*: however many threads noted keys, in
/// whatever order, the sealed vocabulary is bit-identical.
///
/// This replaces the former `InternLog` replay: workers no longer keep
/// private first-sight logs that the merge replays in chunk order —
/// they intern (note) directly into shared state, and determinism
/// comes from the canonical sort instead of from replay ordering.
#[derive(Debug)]
pub struct ShardedInterner<K> {
    shards: Vec<Mutex<HashMap<K, String>>>,
}

impl<K: Eq + Hash + Ord> ShardedInterner<K> {
    /// An empty collector with the fixed power-of-two shard count.
    pub fn new() -> Self {
        Self {
            shards: (0..SHARD_COUNT)
                .map(|_| Mutex::new(HashMap::new()))
                .collect(),
        }
    }

    /// Records `key` as part of the vocabulary, rendering its display
    /// name on the shard-local first sight. Callable from many threads
    /// at once; only the owning shard is locked.
    pub fn note(&self, key: K, render: impl FnOnce(&K) -> String) {
        let mut h = DefaultHasher::new();
        key.hash(&mut h);
        let shard = (h.finish() as usize) & (SHARD_COUNT - 1);
        let mut map = self.shards[shard]
            .lock()
            .expect("interner shard poisoned by a panicking worker");
        if let Entry::Vacant(e) = map.entry(key) {
            let name = render(e.key());
            e.insert(name);
        }
    }

    /// Number of distinct keys noted so far (locks every shard; meant
    /// for tests and post-phase accounting, not hot paths).
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("interner shard poisoned").len())
            .sum()
    }

    /// Whether nothing has been noted.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drains the shards and interns every collected key into
    /// `arena`/`interner` in canonical sorted-key order, skipping keys
    /// the interner already holds. Returns how many fresh atoms were
    /// interned. After `seal`, looking any noted key up through the
    /// interner is a guaranteed hit.
    pub fn seal(self, arena: &mut Arena, interner: &mut AtomInterner<K>) -> usize {
        let mut all: Vec<(K, String)> = self
            .shards
            .into_iter()
            .flat_map(|s| s.into_inner().expect("interner shard poisoned"))
            .collect();
        all.sort_unstable_by(|a, b| a.0.cmp(&b.0));
        let mut fresh = 0;
        for (key, name) in all {
            if interner.map.contains_key(&key) {
                continue;
            }
            let id = arena.intern_atom(&name);
            interner.map.insert(key, id);
            fresh += 1;
        }
        fresh
    }
}

impl<K: Eq + Hash + Ord> Default for ShardedInterner<K> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interns_once_per_key() {
        let mut arena = Arena::new();
        let mut it: AtomInterner<(u32, Vec<u64>)> = AtomInterner::new();
        let mut renders = 0;
        let a = it.intern(&mut arena, (0, vec![1, 2]), |_| {
            renders += 1;
            "P(1,2)".into()
        });
        let b = it.intern(&mut arena, (0, vec![1, 2]), |_| {
            renders += 1;
            "P(1,2)".into()
        });
        assert_eq!(a, b);
        assert_eq!(renders, 1, "render runs only on first sight");
        assert_eq!(it.len(), 1);
        assert_eq!(arena.atom_count(), 1);
    }

    #[test]
    fn distinct_keys_distinct_ids() {
        let mut arena = Arena::new();
        let mut it: AtomInterner<u32> = AtomInterner::new();
        let a = it.intern(&mut arena, 1, |k| format!("p{k}"));
        let b = it.intern(&mut arena, 2, |k| format!("p{k}"));
        assert_ne!(a, b);
        assert_eq!(it.get(&1), Some(a));
        assert_eq!(it.get(&3), None);
    }

    #[test]
    fn shares_an_arena_with_other_interners() {
        // Two interners with different key types over one arena: ids
        // stay globally unique because the arena assigns them.
        let mut arena = Arena::new();
        let mut preds: AtomInterner<(u32, Vec<u64>)> = AtomInterner::new();
        let mut eqs: AtomInterner<(u64, u64)> = AtomInterner::new();
        let p = preds.intern(&mut arena, (0, vec![7]), |_| "P(7)".into());
        let e = eqs.intern(&mut arena, (7, 7), |_| "(7=7)".into());
        assert_ne!(p, e);
        assert_eq!(arena.atom_count(), 2);
    }

    #[test]
    fn iter_exposes_all_pairs() {
        let mut arena = Arena::new();
        let mut it: AtomInterner<u8> = AtomInterner::new();
        for k in 0..5u8 {
            it.intern(&mut arena, k, |k| format!("a{k}"));
        }
        let mut keys: Vec<u8> = it.iter().map(|(k, _)| *k).collect();
        keys.sort_unstable();
        assert_eq!(keys, vec![0, 1, 2, 3, 4]);
        assert!(!it.is_empty());
    }

    #[test]
    fn sealed_ids_are_sorted_key_order() {
        let mut arena = Arena::new();
        let mut it: AtomInterner<u32> = AtomInterner::new();
        let sink: ShardedInterner<u32> = ShardedInterner::new();
        for k in [9u32, 3, 7, 3, 1, 9] {
            sink.note(k, |k| format!("a{k}"));
        }
        assert_eq!(sink.len(), 4);
        let fresh = sink.seal(&mut arena, &mut it);
        assert_eq!(fresh, 4);
        // Ids follow the sorted key order, not the note order.
        assert_eq!(it.get(&1), Some(AtomId(0)));
        assert_eq!(it.get(&3), Some(AtomId(1)));
        assert_eq!(it.get(&7), Some(AtomId(2)));
        assert_eq!(it.get(&9), Some(AtomId(3)));
        assert_eq!(arena.atom_name(AtomId(0)), "a1");
        assert_eq!(arena.atom_name(AtomId(3)), "a9");
    }

    #[test]
    fn seal_skips_keys_already_interned() {
        let mut arena = Arena::new();
        let mut it: AtomInterner<u32> = AtomInterner::new();
        let pre = it.intern(&mut arena, 5, |_| "a5".into());
        let sink: ShardedInterner<u32> = ShardedInterner::new();
        sink.note(5, |k| format!("a{k}"));
        sink.note(2, |k| format!("a{k}"));
        let fresh = sink.seal(&mut arena, &mut it);
        assert_eq!(fresh, 1);
        assert_eq!(it.get(&5), Some(pre), "pre-existing id is kept");
        assert_eq!(arena.atom_count(), 2);
    }

    /// The determinism contract of the tentpole: N threads noting
    /// overlapping key sets in racing order must seal to the identical
    /// canonical arena a sequential pass produces.
    #[test]
    fn concurrent_notes_seal_identically_to_sequential() {
        // Overlapping per-thread key streams (every thread shares the
        // 0..32 block, plus a private tail).
        let streams: Vec<Vec<u32>> = (0..4u32)
            .map(|t| {
                let mut s: Vec<u32> = (0..32).collect();
                s.extend((0..16).map(|i| 100 + t * 16 + i));
                // Per-thread order differs: rotate by the thread index.
                s.rotate_left(5 * t as usize + 1);
                s
            })
            .collect();

        let mut seq_arena = Arena::new();
        let mut seq: AtomInterner<u32> = AtomInterner::new();
        {
            let sink: ShardedInterner<u32> = ShardedInterner::new();
            for s in &streams {
                for &k in s {
                    sink.note(k, |k| format!("a{k}"));
                }
            }
            sink.seal(&mut seq_arena, &mut seq);
        }

        let mut par_arena = Arena::new();
        let mut par: AtomInterner<u32> = AtomInterner::new();
        {
            let sink: ShardedInterner<u32> = ShardedInterner::new();
            std::thread::scope(|scope| {
                for s in &streams {
                    let sink = &sink;
                    scope.spawn(move || {
                        for &k in s {
                            sink.note(k, |k| format!("a{k}"));
                        }
                    });
                }
            });
            sink.seal(&mut par_arena, &mut par);
        }

        assert_eq!(par_arena.atom_count(), seq_arena.atom_count());
        for i in 0..par_arena.atom_count() {
            assert_eq!(
                par_arena.atom_name(AtomId(i as u32)),
                seq_arena.atom_name(AtomId(i as u32))
            );
        }
        for s in &streams {
            for &k in s {
                assert_eq!(par.get(&k), seq.get(&k), "key {k}");
            }
        }
    }

    #[test]
    fn agrees_with_arena_name_lookup() {
        let mut arena = Arena::new();
        let mut it: AtomInterner<u32> = AtomInterner::new();
        let id = it.intern(&mut arena, 9, |_| "Sub(9)".into());
        assert_eq!(arena.find_atom("Sub(9)"), Some(id));
        assert_eq!(arena.atom_name(id), "Sub(9)");
    }
}
