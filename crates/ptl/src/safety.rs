//! Safety properties, propositionally.
//!
//! Section 2 of the paper restricts integrity constraints to formulas
//! defining *safety properties*: if every prefix of a database extends to
//! a model, the database itself is a model. Recognising safety is
//! decidable propositionally (Sistla 1985, cited in §6); here we provide
//!
//! * the standard *syntactically safe* fragment (sufficient condition):
//!   negation normal form without `until` — `□`, `release`, `○`, `∧`,
//!   `∨` over literals;
//! * a sound-and-complete semantic safety check for (small) formulas via
//!   the automaton route: `f` is a safety formula iff every finite word
//!   that is not a bad prefix... — we implement the dual *co-safety of
//!   ¬f* test: `f` is safety iff `¬f` is a guarantee property, checked by
//!   comparing `f` with the formula that holds exactly when no bad
//!   prefix occurs. We expose the practical part: **bad-prefix
//!   detection** by progression ([`find_bad_prefix`]) and a bounded
//!   semantic safety test used in tests ([`is_safety_bounded`]).

use crate::arena::{Arena, FormulaId, Node};
use crate::nnf::{nnf, NnfError};
use crate::progression::progress;
use crate::sat::{extends, SatError};
use crate::trace::PropState;

/// True if the formula falls in the syntactically safe fragment: its NNF
/// contains no `until` (hence no `◇`). This is a *sufficient* condition
/// for defining a safety property.
pub fn is_syntactically_safe(arena: &mut Arena, f: FormulaId) -> Result<bool, NnfError> {
    let g = nnf(arena, f)?;
    let mut stack = vec![g];
    let mut seen = std::collections::HashSet::new();
    while let Some(id) = stack.pop() {
        if !seen.insert(id) {
            continue;
        }
        match arena.node(id) {
            Node::Until(_, _) => return Ok(false),
            Node::True | Node::False | Node::Atom(_) => {}
            Node::Not(g) | Node::Next(g) => stack.push(g),
            Node::And(a, b) | Node::Or(a, b) | Node::Release(a, b) => {
                stack.push(a);
                stack.push(b);
            }
            Node::Prev(_) | Node::Since(_, _) => unreachable!("nnf rejects past"),
        }
    }
    Ok(true)
}

/// Scans a trace with progression and returns the index of the first
/// state after which the obligation collapses to `⊥` — i.e. the shortest
/// *bad prefix* of `f` within the trace — or `None` if the whole trace
/// leaves the obligation satisfiable-or-open.
///
/// Note: progression reaching `⊥` is a sound bad-prefix detector for all
/// formulas, and for safety formulas checked via [`extends`] it is also
/// the earliest possible detection point.
pub fn find_bad_prefix(
    arena: &mut Arena,
    f: FormulaId,
    trace: &[PropState],
) -> Result<Option<usize>, NnfError> {
    let fls = arena.fls();
    let mut cur = f;
    for (i, w) in trace.iter().enumerate() {
        cur = progress(arena, cur, w)?;
        if cur == fls {
            return Ok(Some(i));
        }
    }
    Ok(None)
}

/// Bounded semantic safety test (testing oracle): checks the safety
/// condition of Section 2 over all propositional traces of length up to
/// `horizon` built from the atoms of `f`:
///
/// > if a finite trace is extensible to a model of `f`, then all its
/// > one-state extensions that remain extensible stay consistent — and
/// > conversely any non-extensible trace must have a non-extensible
/// > prefix chain.
///
/// Concretely we search for a witness that `f` is *not* safety: an
/// infinite word violating `f` all of whose prefixes are extensible.
/// Over a finite horizon we approximate: a trace `w` of length `horizon`
/// all of whose prefixes are extensible but where `w` cannot be extended
/// *while still satisfying f from position 0* is impossible by
/// definition, so instead we look for a trace extensible at every prefix
/// yet extendible to a violating ultimately-periodic word. The test is
/// exact for formulas whose automaton stabilises within the horizon and
/// is used on the crate's small test formulas only.
pub fn is_safety_bounded(
    arena: &mut Arena,
    f: FormulaId,
    horizon: usize,
) -> Result<bool, SatError> {
    // f is NOT safety iff ¬f ∧ "all prefixes of the word extend to
    // models of f" is satisfiable. "All prefixes extensible" is not
    // directly expressible, so we enumerate: search for a lasso model of
    // ¬f (bounded by the automaton) each of whose unrolled prefixes up to
    // `horizon` is extensible w.r.t. f. This is sound for rejection and
    // exact when the lasso's period divides the horizon.
    let nf = arena.not(f);
    let r = crate::sat::is_satisfiable(arena, nf)?;
    let Some(lasso) = r.witness else {
        // ¬f unsatisfiable: f is valid, trivially safety.
        return Ok(true);
    };
    for cut in 0..=horizon {
        let pfx = lasso.unroll(cut);
        if !extends(arena, &pfx, f)?.satisfiable {
            // Some prefix of the violating word is already a bad prefix:
            // the violation is finitely detectable, consistent with
            // safety. This particular witness does not refute safety;
            // try to refute with a different violating word by checking
            // all single-bad-prefix-free words — approximated by
            // accepting safety here.
            return Ok(true);
        }
    }
    // Every prefix (up to the horizon) of a violating word remains
    // extensible: the violation is not finitely detectable ⇒ not safety.
    Ok(false)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arena::AtomId;

    fn st(atoms: &[AtomId]) -> PropState {
        PropState::from_true_atoms(atoms.iter().copied())
    }

    #[test]
    fn syntactic_fragment() {
        let mut ar = Arena::new();
        let p = ar.atom("p");
        let g = ar.always(p);
        assert!(is_syntactically_safe(&mut ar, g).unwrap());
        let ev = ar.eventually(p);
        assert!(!is_syntactically_safe(&mut ar, ev).unwrap());
        // ¬◇p ≡ □¬p is safe after NNF.
        let nev = ar.not(ev);
        assert!(is_syntactically_safe(&mut ar, nev).unwrap());
        let x = ar.next(p);
        assert!(is_syntactically_safe(&mut ar, x).unwrap());
    }

    #[test]
    fn bad_prefix_detection() {
        let mut ar = Arena::new();
        let p = ar.atom("p");
        let pa = ar.find_atom("p").unwrap();
        let g = ar.always(p);
        let trace = vec![st(&[pa]), st(&[pa]), st(&[]), st(&[pa])];
        assert_eq!(find_bad_prefix(&mut ar, g, &trace).unwrap(), Some(2));
        assert_eq!(find_bad_prefix(&mut ar, g, &trace[..2]).unwrap(), None);
    }

    #[test]
    fn liveness_has_no_bad_prefix() {
        let mut ar = Arena::new();
        let p = ar.atom("p");
        let ev = ar.eventually(p);
        let trace = vec![st(&[]); 10];
        assert_eq!(find_bad_prefix(&mut ar, ev, &trace).unwrap(), None);
    }

    #[test]
    fn semantic_safety_bounded() {
        let mut ar = Arena::new();
        let p = ar.atom("p");
        let g = ar.always(p);
        assert!(is_safety_bounded(&mut ar, g, 6).unwrap());
        let ev = ar.eventually(p);
        assert!(
            !is_safety_bounded(&mut ar, ev, 6).unwrap(),
            "◇p is a liveness formula, not safety"
        );
    }
}
