//! Prefix rewriting (formula progression) — phase 1 of Lemma 4.2.
//!
//! Given a future formula `ψ` and a propositional state `w`, `progress`
//! computes the formula `ψ'` such that for every infinite sequence `σ`:
//!
//! > `w · σ ⊨ ψ`  iff  `σ ⊨ ψ'`.
//!
//! This is exactly the rewriting described in the proof of Lemma 4.2 of
//! the paper (after Sistla & Wolfson): the state subscript is pushed
//! through the connectives, `a until b` is unfolded to
//! `[b]₀ ∨ ([a]₀ ∧ (a until b))₁`, atoms with subscript 0 are replaced by
//! their truth value in `w`, and the result is simplified. With the
//! hash-consed arena the simplification happens in the constructors, and
//! per-step memoisation makes each step linear in the formula DAG.

use crate::arena::{Arena, FormulaId, Node};
use crate::nnf::NnfError;
use crate::trace::PropState;
use std::collections::HashMap;

/// Progresses `f` through one propositional state.
///
/// Returns the obligation that the remaining (infinite) suffix must
/// satisfy. Returns an error for past connectives.
pub fn progress(arena: &mut Arena, f: FormulaId, state: &PropState) -> Result<FormulaId, NnfError> {
    let mut memo = HashMap::new();
    go(arena, f, state, &mut memo)
}

/// Progresses `f` through every state of a finite trace, left to right.
///
/// Stops early (returning the constant) once the obligation collapses to
/// `⊤` or `⊥`: the former means every extension of the consumed prefix
/// satisfies the original formula, the latter that none does — i.e. a
/// *bad prefix* has been found.
pub fn progress_trace(
    arena: &mut Arena,
    f: FormulaId,
    trace: &[PropState],
) -> Result<FormulaId, NnfError> {
    let mut cur = f;
    let (t, fls) = (arena.tru(), arena.fls());
    for w in trace {
        if cur == t || cur == fls {
            break;
        }
        cur = progress(arena, cur, w)?;
    }
    Ok(cur)
}

fn go(
    arena: &mut Arena,
    f: FormulaId,
    state: &PropState,
    memo: &mut HashMap<FormulaId, FormulaId>,
) -> Result<FormulaId, NnfError> {
    if let Some(&r) = memo.get(&f) {
        return Ok(r);
    }
    let r = match arena.node(f) {
        Node::True => arena.tru(),
        Node::False => arena.fls(),
        Node::Atom(a) => {
            if state.get(a) {
                arena.tru()
            } else {
                arena.fls()
            }
        }
        Node::Not(g) => {
            let x = go(arena, g, state, memo)?;
            arena.not(x)
        }
        Node::And(a, b) => {
            let x = go(arena, a, state, memo)?;
            let y = go(arena, b, state, memo)?;
            arena.and(x, y)
        }
        Node::Or(a, b) => {
            let x = go(arena, a, state, memo)?;
            let y = go(arena, b, state, memo)?;
            arena.or(x, y)
        }
        Node::Next(g) => g,
        Node::Until(a, b) => {
            // a U b  ≡  b ∨ (a ∧ ○(a U b))
            let pb = go(arena, b, state, memo)?;
            let pa = go(arena, a, state, memo)?;
            let cont = arena.and(pa, f);
            arena.or(pb, cont)
        }
        Node::Release(a, b) => {
            // a R b  ≡  b ∧ (a ∨ ○(a R b))
            let pb = go(arena, b, state, memo)?;
            let pa = go(arena, a, state, memo)?;
            let cont = arena.or(pa, f);
            arena.and(pb, cont)
        }
        Node::Prev(_) | Node::Since(_, _) => return Err(NnfError::PastOperator),
    };
    memo.insert(f, r);
    Ok(r)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arena::AtomId;

    fn st(atoms: &[AtomId]) -> PropState {
        PropState::from_true_atoms(atoms.iter().copied())
    }

    #[test]
    fn atom_progression_substitutes_truth_value() {
        let mut ar = Arena::new();
        let p = ar.atom("p");
        let pa = ar.find_atom("p").unwrap();
        let t = ar.tru();
        let f = ar.fls();
        assert_eq!(progress(&mut ar, p, &st(&[pa])).unwrap(), t);
        assert_eq!(progress(&mut ar, p, &st(&[])).unwrap(), f);
    }

    #[test]
    fn next_unwraps() {
        let mut ar = Arena::new();
        let p = ar.atom("p");
        let x = ar.next(p);
        assert_eq!(progress(&mut ar, x, &st(&[])).unwrap(), p);
    }

    #[test]
    fn until_unfolds_per_paper() {
        let mut ar = Arena::new();
        let p = ar.atom("p");
        let q = ar.atom("q");
        let (pa, qa) = (ar.find_atom("p").unwrap(), ar.find_atom("q").unwrap());
        let u = ar.until(p, q);
        // q true: until discharged.
        assert_eq!(progress(&mut ar, u, &st(&[qa])).unwrap(), ar.tru());
        // p true, q false: obligation persists unchanged.
        assert_eq!(progress(&mut ar, u, &st(&[pa])).unwrap(), u);
        // both false: bad prefix.
        assert_eq!(progress(&mut ar, u, &st(&[])).unwrap(), ar.fls());
    }

    #[test]
    fn always_persists_or_fails() {
        let mut ar = Arena::new();
        let p = ar.atom("p");
        let pa = ar.find_atom("p").unwrap();
        let g = ar.always(p);
        assert_eq!(progress(&mut ar, g, &st(&[pa])).unwrap(), g);
        assert_eq!(progress(&mut ar, g, &st(&[])).unwrap(), ar.fls());
    }

    #[test]
    fn negation_commutes_with_progression() {
        let mut ar = Arena::new();
        let p = ar.atom("p");
        let q = ar.atom("q");
        let pa = ar.find_atom("p").unwrap();
        let u = ar.until(p, q);
        let nu = ar.not(u);
        let s = st(&[pa]);
        let a = progress(&mut ar, nu, &s).unwrap();
        let pu = progress(&mut ar, u, &s).unwrap();
        let b = ar.not(pu);
        assert_eq!(a, b);
    }

    #[test]
    fn progress_trace_early_exit_on_violation() {
        let mut ar = Arena::new();
        let p = ar.atom("p");
        let pa = ar.find_atom("p").unwrap();
        let g = ar.always(p);
        let trace = vec![st(&[pa]), st(&[]), st(&[pa])];
        let r = progress_trace(&mut ar, g, &trace).unwrap();
        assert_eq!(r, ar.fls());
    }

    #[test]
    fn eventually_discharges_once_seen() {
        let mut ar = Arena::new();
        let p = ar.atom("p");
        let pa = ar.find_atom("p").unwrap();
        let ev = ar.eventually(p);
        let trace = vec![st(&[]), st(&[]), st(&[pa])];
        let r = progress_trace(&mut ar, ev, &trace).unwrap();
        assert_eq!(r, ar.tru());
        // Without the witness the obligation persists.
        let r2 = progress_trace(&mut ar, ev, &trace[..2]).unwrap();
        assert_eq!(r2, ev);
    }

    #[test]
    fn release_unfolds() {
        let mut ar = Arena::new();
        let p = ar.atom("p");
        let q = ar.atom("q");
        let (pa, qa) = (ar.find_atom("p").unwrap(), ar.find_atom("q").unwrap());
        let r = ar.release(p, q);
        // q ∧ p: released now.
        assert_eq!(progress(&mut ar, r, &st(&[pa, qa])).unwrap(), ar.tru());
        // q only: obligation persists.
        assert_eq!(progress(&mut ar, r, &st(&[qa])).unwrap(), r);
        // ¬q: violated.
        assert_eq!(progress(&mut ar, r, &st(&[pa])).unwrap(), ar.fls());
    }

    #[test]
    fn rejects_past() {
        let mut ar = Arena::new();
        let p = ar.atom("p");
        let o = ar.once(p);
        assert!(progress(&mut ar, o, &st(&[])).is_err());
    }
}
