//! Rewriting-based simplification.
//!
//! The arena constructors already fold constants; this module applies
//! the standard LTL equivalences bottom-up on top of that, which keeps
//! progression residues compact (they otherwise accumulate `□□`, `◇◇`
//! and duplicated boxes):
//!
//! * idempotence: `□□f = □f`, `◇◇f = ◇f`, `f U (f U g) = f U g`;
//! * `○` distribution: `○f ∧ ○g = ○(f ∧ g)`, `○f ∨ ○g = ○(f ∨ g)`;
//! * `□`/`◇` aggregation: `□f ∧ □g = □(f ∧ g)`, `◇f ∨ ◇g = ◇(f ∨ g)`;
//! * temporal absorption: `f ∧ □f = □f`, `f ∨ ◇f = ◇f`,
//!   `◇□◇f = □◇f`, `□◇□f = ◇□f`;
//! * boolean absorption: `a ∧ (a ∨ b) = a`, `a ∨ (a ∧ b) = a`.
//!
//! All rules are language-preserving over infinite words
//! (property-tested against the lasso evaluator). Past connectives are
//! traversed but only the boolean rules apply under them.

use crate::arena::{Arena, FormulaId, Node};
use std::collections::HashMap;

/// Simplifies `f` bottom-up; the result is equivalent over infinite
/// words and never larger than the input (DAG-wise, up to sharing).
pub fn simplify(arena: &mut Arena, f: FormulaId) -> FormulaId {
    let mut memo = HashMap::new();
    go(arena, f, &mut memo)
}

fn is_always(arena: &Arena, f: FormulaId) -> Option<FormulaId> {
    match arena.node(f) {
        Node::Release(a, b) if arena.node(a) == Node::False => Some(b),
        _ => None,
    }
}

fn is_eventually(arena: &Arena, f: FormulaId) -> Option<FormulaId> {
    match arena.node(f) {
        Node::Until(a, b) if arena.node(a) == Node::True => Some(b),
        _ => None,
    }
}

fn go(arena: &mut Arena, f: FormulaId, memo: &mut HashMap<FormulaId, FormulaId>) -> FormulaId {
    if let Some(&r) = memo.get(&f) {
        return r;
    }
    let r = match arena.node(f) {
        Node::True | Node::False | Node::Atom(_) => f,
        Node::Not(g) => {
            let x = go(arena, g, memo);
            arena.not(x)
        }
        Node::And(a, b) => {
            let (x, y) = (go(arena, a, memo), go(arena, b, memo));
            rebuild_and(arena, x, y)
        }
        Node::Or(a, b) => {
            let (x, y) = (go(arena, a, memo), go(arena, b, memo));
            rebuild_or(arena, x, y)
        }
        Node::Next(g) => {
            let x = go(arena, g, memo);
            arena.next(x)
        }
        Node::Until(a, b) => {
            let (x, y) = (go(arena, a, memo), go(arena, b, memo));
            rebuild_until(arena, x, y)
        }
        Node::Release(a, b) => {
            let (x, y) = (go(arena, a, memo), go(arena, b, memo));
            rebuild_release(arena, x, y)
        }
        Node::Prev(g) => {
            let x = go(arena, g, memo);
            arena.prev(x)
        }
        Node::Since(a, b) => {
            let (x, y) = (go(arena, a, memo), go(arena, b, memo));
            arena.since(x, y)
        }
    };
    memo.insert(f, r);
    r
}

fn rebuild_and(arena: &mut Arena, x: FormulaId, y: FormulaId) -> FormulaId {
    // □f ∧ □g = □(f ∧ g)
    if let (Some(fx), Some(fy)) = (is_always(arena, x), is_always(arena, y)) {
        let inner = rebuild_and(arena, fx, fy);
        return arena.always(inner);
    }
    // ○f ∧ ○g = ○(f ∧ g)
    if let (Node::Next(fx), Node::Next(fy)) = (arena.node(x), arena.node(y)) {
        let inner = rebuild_and(arena, fx, fy);
        return arena.next(inner);
    }
    // f ∧ □f = □f (either order)
    if is_always(arena, y) == Some(x) {
        return y;
    }
    if is_always(arena, x) == Some(y) {
        return x;
    }
    // a ∧ (a ∨ b) = a (boolean absorption, both orders)
    if absorbed_by_or(arena, x, y) {
        return x;
    }
    if absorbed_by_or(arena, y, x) {
        return y;
    }
    arena.and(x, y)
}

fn rebuild_or(arena: &mut Arena, x: FormulaId, y: FormulaId) -> FormulaId {
    // ◇f ∨ ◇g = ◇(f ∨ g)
    if let (Some(fx), Some(fy)) = (is_eventually(arena, x), is_eventually(arena, y)) {
        let inner = rebuild_or(arena, fx, fy);
        return arena.eventually(inner);
    }
    // ○f ∨ ○g = ○(f ∨ g)
    if let (Node::Next(fx), Node::Next(fy)) = (arena.node(x), arena.node(y)) {
        let inner = rebuild_or(arena, fx, fy);
        return arena.next(inner);
    }
    // f ∨ ◇f = ◇f
    if is_eventually(arena, y) == Some(x) {
        return y;
    }
    if is_eventually(arena, x) == Some(y) {
        return x;
    }
    // a ∨ (a ∧ b) = a
    if absorbed_by_and(arena, x, y) {
        return x;
    }
    if absorbed_by_and(arena, y, x) {
        return y;
    }
    arena.or(x, y)
}

/// True if `big` is `a ∨ …` containing `small` as a disjunct (one level).
fn absorbed_by_or(arena: &Arena, small: FormulaId, big: FormulaId) -> bool {
    matches!(arena.node(big), Node::Or(a, b) if a == small || b == small)
}

/// True if `big` is `a ∧ …` containing `small` as a conjunct (one level).
fn absorbed_by_and(arena: &Arena, small: FormulaId, big: FormulaId) -> bool {
    matches!(arena.node(big), Node::And(a, b) if a == small || b == small)
}

fn rebuild_until(arena: &mut Arena, x: FormulaId, y: FormulaId) -> FormulaId {
    // ◇◇f = ◇f and generally f U (f U g) = f U g.
    if let Node::Until(a2, _) = arena.node(y) {
        if a2 == x {
            return y;
        }
    }
    // ◇□◇f = □◇f (via ⊤ U (⊥ R (⊤ U f))).
    if arena.node(x) == Node::True {
        if let Some(inner) = is_always(arena, y) {
            if is_eventually(arena, inner).is_some() {
                return y;
            }
        }
    }
    arena.until(x, y)
}

fn rebuild_release(arena: &mut Arena, x: FormulaId, y: FormulaId) -> FormulaId {
    // □□f = □f and generally f R (f R g) = f R g.
    if let Node::Release(a2, _) = arena.node(y) {
        if a2 == x {
            return y;
        }
    }
    // □◇□f = ◇□f.
    if arena.node(x) == Node::False {
        if let Some(inner) = is_eventually(arena, y) {
            if is_always(arena, inner).is_some() {
                return y;
            }
        }
    }
    arena.release(x, y)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idempotent_boxes_collapse() {
        let mut ar = Arena::new();
        let p = ar.atom("p");
        let g1 = ar.always(p);
        let g2 = ar.always(g1);
        let g3 = ar.always(g2);
        assert_eq!(simplify(&mut ar, g3), g1);
        let f1 = ar.eventually(p);
        let f2 = ar.eventually(f1);
        assert_eq!(simplify(&mut ar, f2), f1);
    }

    #[test]
    fn boxes_aggregate_over_and() {
        let mut ar = Arena::new();
        let p = ar.atom("p");
        let q = ar.atom("q");
        let gp = ar.always(p);
        let gq = ar.always(q);
        let conj = ar.and(gp, gq);
        let pq = ar.and(p, q);
        let expect = ar.always(pq);
        assert_eq!(simplify(&mut ar, conj), expect);
    }

    #[test]
    fn diamonds_aggregate_over_or() {
        let mut ar = Arena::new();
        let p = ar.atom("p");
        let q = ar.atom("q");
        let fp = ar.eventually(p);
        let fq = ar.eventually(q);
        let disj = ar.or(fp, fq);
        let pq = ar.or(p, q);
        let expect = ar.eventually(pq);
        assert_eq!(simplify(&mut ar, disj), expect);
    }

    #[test]
    fn next_distributes() {
        let mut ar = Arena::new();
        let p = ar.atom("p");
        let q = ar.atom("q");
        let xp = ar.next(p);
        let xq = ar.next(q);
        let conj = ar.and(xp, xq);
        let pq = ar.and(p, q);
        let expect = ar.next(pq);
        assert_eq!(simplify(&mut ar, conj), expect);
    }

    #[test]
    fn temporal_absorption() {
        let mut ar = Arena::new();
        let p = ar.atom("p");
        let gp = ar.always(p);
        let both = ar.and(p, gp);
        assert_eq!(simplify(&mut ar, both), gp);
        let fp = ar.eventually(p);
        let either = ar.or(p, fp);
        assert_eq!(simplify(&mut ar, either), fp);
    }

    #[test]
    fn gfg_and_fgf_collapse() {
        let mut ar = Arena::new();
        let p = ar.atom("p");
        let fp = ar.eventually(p);
        let gfp = ar.always(fp);
        let fgfp = ar.eventually(gfp);
        assert_eq!(simplify(&mut ar, fgfp), gfp, "◇□◇p = □◇p");
        let gp = ar.always(p);
        let fgp = ar.eventually(gp);
        let gfgp = ar.always(fgp);
        assert_eq!(simplify(&mut ar, gfgp), fgp, "□◇□p = ◇□p");
    }

    #[test]
    fn boolean_absorption() {
        let mut ar = Arena::new();
        let p = ar.atom("p");
        let q = ar.atom("q");
        let pq = ar.or(p, q);
        let f = ar.and(p, pq);
        assert_eq!(simplify(&mut ar, f), p);
        let pq2 = ar.and(p, q);
        let g = ar.or(p, pq2);
        assert_eq!(simplify(&mut ar, g), p);
    }

    #[test]
    fn past_traversed_untouched() {
        let mut ar = Arena::new();
        let p = ar.atom("p");
        let gp = ar.always(p);
        let ggp = ar.always(gp);
        let s = ar.since(ggp, p);
        let gp2 = ar.always(p);
        let expect = ar.since(gp2, p);
        assert_eq!(simplify(&mut ar, s), expect, "□□ collapses under since");
    }
}
