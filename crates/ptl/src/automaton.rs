//! Explicit safety automata compiled from progression residues.
//!
//! The transition cache in the engine layer materialises the residue's
//! safety automaton *lazily*, one `(residue, letter)` edge at a time,
//! and still pays a symbolic progression on every miss. This module
//! precomputes the whole machine once per *template*: the residue's
//! progression graph is subset-constructed over all valuations of its
//! support letters (the only letters progression can read), each state
//! is labelled with its phase-2 satisfiability verdict up front, and
//! the result is a dense `u32` transition table — an append becomes one
//! array lookup, with no formula construction and no satisfiability
//! run at all.
//!
//! Two residues that differ only by a renaming of their support letters
//! progress in lockstep, so the machine is compiled from a *canonical*
//! key ([`TemplateKey`]) in which atoms are renumbered by first
//! occurrence: all isomorphic instantiations of one constraint share a
//! single compiled automaton, each carrying only a `u32` state.
//!
//! Soundness leans on two facts. Determinization commutes with
//! progression on support-restricted valuations: `progress` only reads
//! the letters in the residue's support, so quotienting the alphabet to
//! `2^support` loses nothing ([`compile`] enumerates exactly those
//! columns). And satisfiability distributes over conjunctions with
//! pairwise-disjoint supports — models over disjoint alphabets combine
//! pointwise — which is what lets [`split_units`] decompose a
//! constraint's residue into independently steppable units and decide
//! the conjunction as the AND of per-state verdicts.

use crate::arena::{Arena, AtomId, FormulaId, Node};
use crate::closure::Closure;
use crate::progression::progress;
use crate::sat::{is_satisfiable_with, SatError, SatSolver};
use crate::simplify::simplify;
use crate::trace::PropState;
use std::collections::HashMap;

/// A node of a canonical (alpha-renamed) formula template. Child
/// references are indices into [`TemplateKey::nodes`] (strictly
/// decreasing, so the list is topologically sorted); atoms are
/// canonical indices `0..arity` in order of first occurrence. Past
/// connectives are excluded — progression rejects them anyway.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum CanonNode {
    /// The constant true.
    True,
    /// The constant false.
    False,
    /// The `i`-th support letter (first-occurrence order).
    Atom(u32),
    /// Negation.
    Not(u32),
    /// Conjunction.
    And(u32, u32),
    /// Disjunction.
    Or(u32, u32),
    /// Next time.
    Next(u32),
    /// Until.
    Until(u32, u32),
    /// Release.
    Release(u32, u32),
}

/// The shape of a residue modulo letter renaming: a hash-consed node
/// list with atoms renumbered by first occurrence in a deterministic
/// traversal. Two residues are isomorphic (equal up to a support
/// bijection) iff they canonicalize to the same key, and the bijection
/// is recovered by pairing their support vectors position-wise.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct TemplateKey {
    /// Canonical nodes, children before parents.
    pub nodes: Vec<CanonNode>,
    /// Index of the root node.
    pub root: u32,
    /// Number of distinct support letters.
    pub arity: u32,
}

impl TemplateKey {
    /// Structural validity: the root and every child reference stay in
    /// range, children strictly precede parents (acyclic by
    /// construction), and atom indices stay below `arity`. Snapshot
    /// restore runs this before trusting decoded bytes.
    pub fn validate(&self) -> bool {
        if self.nodes.is_empty() || self.root as usize >= self.nodes.len() || self.arity > 32 {
            return false;
        }
        for (i, n) in self.nodes.iter().enumerate() {
            let ok = match *n {
                CanonNode::True | CanonNode::False => true,
                CanonNode::Atom(a) => a < self.arity,
                CanonNode::Not(g) | CanonNode::Next(g) => (g as usize) < i,
                CanonNode::And(a, b)
                | CanonNode::Or(a, b)
                | CanonNode::Until(a, b)
                | CanonNode::Release(a, b) => (a as usize) < i && (b as usize) < i,
            };
            if !ok {
                return false;
            }
        }
        true
    }
}

/// Canonicalizes `f`: returns its [`TemplateKey`] plus the concrete
/// support letters in first-occurrence order (`support[i]` is what
/// canonical atom `i` stands for). Returns `None` when `f` contains a
/// past connective.
pub fn canonicalize(arena: &Arena, f: FormulaId) -> Option<(TemplateKey, Vec<AtomId>)> {
    enum Task {
        Visit(FormulaId),
        Build(FormulaId),
    }
    let mut nodes: Vec<CanonNode> = Vec::new();
    let mut memo: HashMap<FormulaId, u32> = HashMap::new();
    let mut atom_ix: HashMap<AtomId, u32> = HashMap::new();
    let mut support: Vec<AtomId> = Vec::new();
    let push = |nodes: &mut Vec<CanonNode>, n: CanonNode| -> u32 {
        nodes.push(n);
        (nodes.len() - 1) as u32
    };
    let mut stack = vec![Task::Visit(f)];
    while let Some(task) = stack.pop() {
        match task {
            Task::Visit(g) => {
                if memo.contains_key(&g) {
                    continue;
                }
                match arena.node(g) {
                    Node::True => {
                        let i = push(&mut nodes, CanonNode::True);
                        memo.insert(g, i);
                    }
                    Node::False => {
                        let i = push(&mut nodes, CanonNode::False);
                        memo.insert(g, i);
                    }
                    Node::Atom(a) => {
                        let ca = *atom_ix.entry(a).or_insert_with(|| {
                            support.push(a);
                            (support.len() - 1) as u32
                        });
                        let i = push(&mut nodes, CanonNode::Atom(ca));
                        memo.insert(g, i);
                    }
                    Node::Not(h) | Node::Next(h) => {
                        stack.push(Task::Build(g));
                        stack.push(Task::Visit(h));
                    }
                    Node::And(a, b) | Node::Or(a, b) | Node::Until(a, b) | Node::Release(a, b) => {
                        stack.push(Task::Build(g));
                        stack.push(Task::Visit(b));
                        stack.push(Task::Visit(a));
                    }
                    Node::Prev(_) | Node::Since(_, _) => return None,
                }
            }
            Task::Build(g) => {
                if memo.contains_key(&g) {
                    // A shared DAG node reached from two parents before
                    // its first Build ran; the first one won.
                    continue;
                }
                let cn = match arena.node(g) {
                    Node::Not(h) => CanonNode::Not(memo[&h]),
                    Node::Next(h) => CanonNode::Next(memo[&h]),
                    Node::And(a, b) => CanonNode::And(memo[&a], memo[&b]),
                    Node::Or(a, b) => CanonNode::Or(memo[&a], memo[&b]),
                    Node::Until(a, b) => CanonNode::Until(memo[&a], memo[&b]),
                    Node::Release(a, b) => CanonNode::Release(memo[&a], memo[&b]),
                    _ => unreachable!("leaves are built at visit time"),
                };
                let i = push(&mut nodes, cn);
                memo.insert(g, i);
            }
        }
    }
    let root = memo[&f];
    let arity = support.len() as u32;
    Some((TemplateKey { nodes, root, arity }, support))
}

/// Budgets for [`compile`]: exceeding either makes compilation bail
/// (returning `Ok(None)`) so the caller falls back to the symbolic
/// path.
#[derive(Debug, Clone, Copy)]
pub struct CompileLimits {
    /// Maximum support size — the table has `2^support` columns per
    /// state, so this is capped hard.
    pub max_support: u32,
    /// Maximum number of reachable residue states.
    pub max_states: usize,
}

impl Default for CompileLimits {
    fn default() -> Self {
        CompileLimits {
            max_support: 8,
            max_states: 64,
        }
    }
}

/// A closure-size prior: the progression graph lives inside the
/// residue's closure-set powerset, and a closure this large never fits
/// a per-template state budget worth having.
const MAX_CLOSURE: usize = 64;

struct TState {
    residue: FormulaId,
    sat: bool,
}

/// An explicit safety automaton for one residue template: every
/// reachable progression state over the support-restricted valuations,
/// a dense `state × column → state` table, and the phase-2
/// satisfiability verdict per state. States are numbered in BFS
/// discovery order (columns ascending), so compilation is a pure
/// function of the key — recompiling after a snapshot restore yields
/// bit-identical state numbering.
pub struct SafetyAutomaton {
    key: TemplateKey,
    /// Private arena holding the template's residues; atoms `0..arity`
    /// are interned first, so canonical atom `i` *is* `AtomId(i)`.
    arena: Arena,
    states: Vec<TState>,
    /// `table[state * 2^arity + column]`, column bit `i` = truth of
    /// support letter `i`.
    table: Vec<u32>,
}

impl SafetyAutomaton {
    /// The canonical key this machine was compiled from.
    pub fn key(&self) -> &TemplateKey {
        &self.key
    }

    /// Number of support letters.
    pub fn support_len(&self) -> usize {
        self.key.arity as usize
    }

    /// Number of reachable states.
    pub fn state_count(&self) -> usize {
        self.states.len()
    }

    /// The successor of `state` under valuation `column`.
    #[inline]
    pub fn step(&self, state: u32, column: u32) -> u32 {
        self.table[(state as usize) << self.key.arity | column as usize]
    }

    /// Whether `state`'s residue is satisfiable (precomputed at
    /// compile time; monotone — once false it stays false along every
    /// run, since an unsatisfiable formula progresses to an
    /// unsatisfiable one).
    #[inline]
    pub fn sat(&self, state: u32) -> bool {
        self.states[state as usize].sat
    }

    /// Rebuilds the concrete residue of `state` inside `dst`, mapping
    /// canonical atom `i` to `support[i]`. `memo` must not be shared
    /// across different supports.
    pub fn reconstruct(
        &self,
        dst: &mut Arena,
        state: u32,
        support: &[AtomId],
        memo: &mut HashMap<FormulaId, FormulaId>,
    ) -> FormulaId {
        dst.translate_from(
            &self.arena,
            self.states[state as usize].residue,
            support,
            memo,
        )
    }
}

/// Compiles a template key into an explicit safety automaton. State 0
/// is the key's root residue. Returns `Ok(None)` when the key is
/// malformed or any budget is exceeded; propagates solver errors.
pub fn compile(
    key: &TemplateKey,
    solver: SatSolver,
    limits: CompileLimits,
) -> Result<Option<SafetyAutomaton>, SatError> {
    if !key.validate() || key.arity > limits.max_support.min(20) {
        return Ok(None);
    }
    let mut arena = Arena::new();
    let atoms: Vec<AtomId> = (0..key.arity)
        .map(|i| arena.intern_atom(&format!("t{i}")))
        .collect();
    // Rebuild the canonical nodes through the folding constructors;
    // children precede parents, so one left-to-right pass suffices.
    let mut ids: Vec<FormulaId> = Vec::with_capacity(key.nodes.len());
    for n in &key.nodes {
        let id = match *n {
            CanonNode::True => arena.tru(),
            CanonNode::False => arena.fls(),
            CanonNode::Atom(a) => arena.atom_id(atoms[a as usize]),
            CanonNode::Not(g) => {
                let g = ids[g as usize];
                arena.not(g)
            }
            CanonNode::Next(g) => {
                let g = ids[g as usize];
                arena.next(g)
            }
            CanonNode::And(a, b) => {
                let (a, b) = (ids[a as usize], ids[b as usize]);
                arena.and(a, b)
            }
            CanonNode::Or(a, b) => {
                let (a, b) = (ids[a as usize], ids[b as usize]);
                arena.or(a, b)
            }
            CanonNode::Until(a, b) => {
                let (a, b) = (ids[a as usize], ids[b as usize]);
                arena.until(a, b)
            }
            CanonNode::Release(a, b) => {
                let (a, b) = (ids[a as usize], ids[b as usize]);
                arena.release(a, b)
            }
        };
        ids.push(id);
    }
    let root = ids[key.root as usize];
    // Engine residues may carry negation over non-atoms (the symbolic
    // path tolerates them); the closure and the Büchi solver require
    // NNF, so normalise here. `nnf` is equivalence-preserving, so the
    // reconstructed residue stays semantically equal to the source.
    let root = crate::nnf::nnf(&mut arena, root).map_err(|_| SatError::Past)?;
    if Closure::of(&arena, root).len() > MAX_CLOSURE {
        return Ok(None);
    }
    let n_cols = 1usize << key.arity;
    let mut state_ix: HashMap<FormulaId, u32> = HashMap::new();
    let mut states: Vec<TState> = Vec::new();
    let mut table: Vec<u32> = Vec::new();
    let root_sat = is_satisfiable_with(&mut arena, root, solver)?.satisfiable;
    state_ix.insert(root, 0);
    states.push(TState {
        residue: root,
        sat: root_sat,
    });
    let mut i = 0usize;
    while i < states.len() {
        let residue = states[i].residue;
        for col in 0..n_cols {
            let w = PropState::from_true_atoms(
                atoms
                    .iter()
                    .enumerate()
                    .filter(|(bit, _)| col >> bit & 1 == 1)
                    .map(|(_, &a)| a),
            );
            let stepped = progress(&mut arena, residue, &w).map_err(|_| SatError::Past)?;
            let next = simplify(&mut arena, stepped);
            let j = match state_ix.get(&next) {
                Some(&j) => j,
                None => {
                    if states.len() >= limits.max_states {
                        return Ok(None);
                    }
                    let sat = is_satisfiable_with(&mut arena, next, solver)?.satisfiable;
                    let j = states.len() as u32;
                    state_ix.insert(next, j);
                    states.push(TState { residue: next, sat });
                    j
                }
            };
            table.push(j);
        }
        i += 1;
    }
    Ok(Some(SafetyAutomaton {
        key: key.clone(),
        arena,
        states,
        table,
    }))
}

/// Splits a residue into independently steppable *units*: conjuncts
/// grouped into connected components of shared support letters, so
/// distinct units are pairwise atom-disjoint. Progression never grows
/// a support, so disjointness is invariant along every run, and the
/// residue is satisfiable iff every unit is.
///
/// The split walks the `∧`-spine and additionally distributes `□` and
/// `○` back over `∧` (`□(x∧y) ≡ □x∧□y`, `○(x∧y) ≡ ○x∧○y`) — undoing
/// the box aggregation [`simplify`] applies across instantiations —
/// before merging components. Returns the units in deterministic
/// first-occurrence order; `⊤` yields no units.
pub fn split_units(arena: &mut Arena, f: FormulaId) -> Vec<FormulaId> {
    let mut parts = Vec::new();
    collect_parts(arena, f, &mut parts);
    if parts.len() <= 1 {
        return parts;
    }
    // Union-find over parts, merging any two that share a letter.
    let mut parent: Vec<usize> = (0..parts.len()).collect();
    fn find(parent: &mut [usize], mut i: usize) -> usize {
        while parent[i] != i {
            parent[i] = parent[parent[i]];
            i = parent[i];
        }
        i
    }
    let mut owner: HashMap<AtomId, usize> = HashMap::new();
    for (i, &p) in parts.iter().enumerate() {
        for a in arena.atoms_of(p) {
            match owner.get(&a) {
                Some(&j) => {
                    let (ri, rj) = (find(&mut parent, i), find(&mut parent, j));
                    if ri != rj {
                        // Union toward the earlier part: groups keep
                        // first-occurrence identity.
                        parent[ri.max(rj)] = ri.min(rj);
                    }
                }
                None => {
                    owner.insert(a, i);
                }
            }
        }
    }
    let mut group_of: HashMap<usize, usize> = HashMap::new();
    let mut groups: Vec<Vec<FormulaId>> = Vec::new();
    for (i, &p) in parts.iter().enumerate() {
        let r = find(&mut parent, i);
        let g = *group_of.entry(r).or_insert_with(|| {
            groups.push(Vec::new());
            groups.len() - 1
        });
        groups[g].push(p);
    }
    groups
        .into_iter()
        .map(|g| if g.len() == 1 { g[0] } else { arena.and_all(g) })
        .collect()
}

/// Collects the atomic parts of `f`'s conjunctive spine, distributing
/// `□`/`○` over inner conjunctions. Iterative over the spine (which
/// grows with the instantiation count); recursion depth is bounded by
/// the constraint's modal nesting only.
fn collect_parts(arena: &mut Arena, f: FormulaId, out: &mut Vec<FormulaId>) {
    let tru = arena.tru();
    let fls = arena.fls();
    let mut stack = vec![f];
    while let Some(g) = stack.pop() {
        if g == tru {
            continue;
        }
        match arena.node(g) {
            Node::And(a, b) => {
                stack.push(b);
                stack.push(a);
            }
            Node::Release(a, b) if a == fls => {
                let mut inner = Vec::new();
                collect_parts(arena, b, &mut inner);
                if inner.len() > 1 {
                    for p in inner {
                        // □□x ≡ □x: don't re-wrap an inner box.
                        let wrapped = match arena.node(p) {
                            Node::Release(a2, _) if a2 == fls => p,
                            _ => arena.always(p),
                        };
                        out.push(wrapped);
                    }
                } else {
                    out.push(g);
                }
            }
            Node::Next(b) => {
                let mut inner = Vec::new();
                collect_parts(arena, b, &mut inner);
                if inner.len() > 1 {
                    for p in inner {
                        let wrapped = arena.next(p);
                        out.push(wrapped);
                    }
                } else {
                    out.push(g);
                }
            }
            _ => out.push(g),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// `□(a → ○□¬a)` — the once-only template over one letter.
    fn once_only(ar: &mut Arena, name: &str) -> FormulaId {
        let a = ar.atom(name);
        let na = ar.not(a);
        let always_na = ar.always(na);
        let nxt = ar.next(always_na);
        let imp = ar.implies(a, nxt);
        ar.always(imp)
    }

    #[test]
    fn isomorphic_residues_share_a_key() {
        let mut ar = Arena::new();
        let f = once_only(&mut ar, "p");
        let g = once_only(&mut ar, "q");
        let (kf, sf) = canonicalize(&ar, f).unwrap();
        let (kg, sg) = canonicalize(&ar, g).unwrap();
        assert_eq!(kf, kg);
        assert_eq!(kf.arity, 1);
        assert_ne!(sf, sg, "supports name the distinct concrete letters");
        assert!(kf.validate());
    }

    #[test]
    fn distinct_shapes_get_distinct_keys() {
        let mut ar = Arena::new();
        let f = once_only(&mut ar, "p");
        let q = ar.atom("q");
        let g = ar.always(q);
        let (kf, _) = canonicalize(&ar, f).unwrap();
        let (kg, _) = canonicalize(&ar, g).unwrap();
        assert_ne!(kf, kg);
    }

    #[test]
    fn past_operators_are_rejected() {
        let mut ar = Arena::new();
        let p = ar.atom("p");
        let o = ar.once(p);
        assert!(canonicalize(&ar, o).is_none());
    }

    #[test]
    fn compiled_once_only_steps_to_violation() {
        let mut ar = Arena::new();
        let f = once_only(&mut ar, "p");
        let (key, support) = canonicalize(&ar, f).unwrap();
        assert_eq!(support.len(), 1);
        let auto = compile(&key, SatSolver::default(), CompileLimits::default())
            .unwrap()
            .expect("once-only compiles within default budgets");
        assert!(auto.state_count() >= 2 && auto.state_count() <= 8);
        // Never seen: self-loop under ¬p, satisfiable.
        assert_eq!(auto.step(0, 0), 0);
        assert!(auto.sat(0));
        // Seen once: a new satisfiable state...
        let seen = auto.step(0, 1);
        assert_ne!(seen, 0);
        assert!(auto.sat(seen));
        // ...that self-loops under ¬p and dies under a re-submission.
        assert_eq!(auto.step(seen, 0), seen);
        let dead = auto.step(seen, 1);
        assert!(!auto.sat(dead));
        // Dead states are absorbing under every column.
        assert_eq!(auto.step(dead, 0), dead);
        assert_eq!(auto.step(dead, 1), dead);
    }

    #[test]
    fn compile_mirrors_symbolic_progression() {
        // Every compiled edge must land on the state whose residue the
        // symbolic pipeline (progress + simplify) computes.
        let mut ar = Arena::new();
        let f = once_only(&mut ar, "p");
        let (key, support) = canonicalize(&ar, f).unwrap();
        let auto = compile(&key, SatSolver::default(), CompileLimits::default())
            .unwrap()
            .unwrap();
        let mut state = 0u32;
        let mut residue = f;
        for col in [0u32, 1, 0, 1] {
            state = auto.step(state, col);
            let w = if col == 1 {
                PropState::from_true_atoms([support[0]])
            } else {
                PropState::new()
            };
            let p = progress(&mut ar, residue, &w).unwrap();
            residue = simplify(&mut ar, p);
            let mut memo = HashMap::new();
            let back = auto.reconstruct(&mut ar, state, &support, &mut memo);
            assert_eq!(back, residue, "edge under column {col} diverges");
        }
    }

    #[test]
    fn state_budget_bails() {
        let mut ar = Arena::new();
        let f = once_only(&mut ar, "p");
        let (key, _) = canonicalize(&ar, f).unwrap();
        let tight = CompileLimits {
            max_support: 8,
            max_states: 1,
        };
        assert!(compile(&key, SatSolver::default(), tight)
            .unwrap()
            .is_none());
        let narrow = CompileLimits {
            max_support: 0,
            max_states: 64,
        };
        assert!(compile(&key, SatSolver::default(), narrow)
            .unwrap()
            .is_none());
    }

    #[test]
    fn malformed_keys_are_refused() {
        let bad = TemplateKey {
            nodes: vec![CanonNode::Not(0)],
            root: 0,
            arity: 0,
        };
        assert!(!bad.validate());
        assert!(
            compile(&bad, SatSolver::default(), CompileLimits::default())
                .unwrap()
                .is_none()
        );
    }

    #[test]
    fn split_undoes_box_aggregation_into_disjoint_units() {
        // simplify folds □c₁ ∧ □c₂ into □(c₁ ∧ c₂); the split must
        // recover one unit per letter.
        let mut ar = Arena::new();
        let f = once_only(&mut ar, "p");
        let g = once_only(&mut ar, "q");
        let and = ar.and(f, g);
        let folded = simplify(&mut ar, and);
        let units = split_units(&mut ar, folded);
        assert_eq!(units.len(), 2, "{units:?}");
        let (pa, qa) = (ar.find_atom("p").unwrap(), ar.find_atom("q").unwrap());
        assert_eq!(ar.atoms_of(units[0]), vec![pa]);
        assert_eq!(ar.atoms_of(units[1]), vec![qa]);
    }

    #[test]
    fn shared_letters_merge_into_one_unit() {
        // □¬p ∧ □(p → ○□¬p) ∧ □¬q: the p-parts merge, q stays apart.
        let mut ar = Arena::new();
        let f = once_only(&mut ar, "p");
        let p = ar.atom("p");
        let np = ar.not(p);
        let bnp = ar.always(np);
        let q = ar.atom("q");
        let nq = ar.not(q);
        let bnq = ar.always(nq);
        let all = ar.and_all([bnp, f, bnq]);
        let folded = simplify(&mut ar, all);
        let units = split_units(&mut ar, folded);
        assert_eq!(units.len(), 2, "{units:?}");
        let pa = ar.find_atom("p").unwrap();
        let qa = ar.find_atom("q").unwrap();
        let supports: Vec<Vec<AtomId>> = units.iter().map(|&u| ar.atoms_of(u)).collect();
        assert!(supports.contains(&vec![pa]));
        assert!(supports.contains(&vec![qa]));
    }

    #[test]
    fn split_of_constants_and_single_parts() {
        let mut ar = Arena::new();
        let t = ar.tru();
        assert!(split_units(&mut ar, t).is_empty());
        let fls = ar.fls();
        assert_eq!(split_units(&mut ar, fls), vec![fls]);
        let f = once_only(&mut ar, "p");
        assert_eq!(split_units(&mut ar, f), vec![f]);
    }

    #[test]
    fn next_distributes_over_units() {
        // ○(a ∧ b) (as simplify aggregates ○a ∧ ○b) splits back apart.
        let mut ar = Arena::new();
        let a = ar.atom("a");
        let b = ar.atom("b");
        let na = ar.next(a);
        let nb = ar.next(b);
        let and = ar.and(na, nb);
        let folded = simplify(&mut ar, and);
        let units = split_units(&mut ar, folded);
        assert_eq!(units.len(), 2, "{units:?}");
    }
}
