//! Ultimately-periodic words ("lassos") and model checking over them.
//!
//! A satisfiable future formula always has an ultimately-periodic model
//! `prefix · cycleω`; the Büchi engine produces one as a witness. This
//! module represents such words and evaluates future formulas over them
//! *exactly* (fixpoint iteration for `until`/`release` over the loop),
//! which gives the crate an independent soundness oracle: every witness
//! reported satisfiable is re-checked by evaluation.

use crate::arena::{Arena, FormulaId, Node};
use crate::nnf::NnfError;
use crate::trace::PropState;
use std::collections::HashMap;

/// An ultimately periodic propositional word `prefix · cycleω`.
///
/// The cycle must be non-empty.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Lasso {
    /// The finite transient.
    pub prefix: Vec<PropState>,
    /// The repeated suffix (non-empty).
    pub cycle: Vec<PropState>,
}

impl Lasso {
    /// Creates a lasso, panicking on an empty cycle.
    pub fn new(prefix: Vec<PropState>, cycle: Vec<PropState>) -> Self {
        assert!(!cycle.is_empty(), "lasso cycle must be non-empty");
        Self { prefix, cycle }
    }

    /// The state at absolute position `i` of the infinite word.
    pub fn state(&self, i: usize) -> &PropState {
        if i < self.prefix.len() {
            &self.prefix[i]
        } else {
            &self.cycle[(i - self.prefix.len()) % self.cycle.len()]
        }
    }

    /// Number of representative positions (`prefix.len() + cycle.len()`).
    pub fn period_end(&self) -> usize {
        self.prefix.len() + self.cycle.len()
    }

    /// The first `n` states, unrolled into a finite trace.
    pub fn unroll(&self, n: usize) -> Vec<PropState> {
        (0..n).map(|i| self.state(i).clone()).collect()
    }

    /// Evaluates the future formula `f` at position 0 of the infinite
    /// word. Errors on past connectives.
    pub fn eval(&self, arena: &Arena, f: FormulaId) -> Result<bool, NnfError> {
        Ok(self.eval_all(arena, f)?[0])
    }

    /// Evaluates `f` at every representative position
    /// (`0 .. period_end()`); positions `≥ prefix.len()` repeat with the
    /// cycle period.
    pub fn eval_all(&self, arena: &Arena, f: FormulaId) -> Result<Vec<bool>, NnfError> {
        let n = self.period_end();
        assert!(n > 0);
        let mut memo: HashMap<FormulaId, Vec<bool>> = HashMap::new();
        self.values(arena, f, &mut memo)?;
        Ok(memo[&f].clone())
    }

    /// Successor of representative position `i`.
    fn succ(&self, i: usize) -> usize {
        if i + 1 < self.period_end() {
            i + 1
        } else {
            self.prefix.len()
        }
    }

    fn values(
        &self,
        arena: &Arena,
        f: FormulaId,
        memo: &mut HashMap<FormulaId, Vec<bool>>,
    ) -> Result<(), NnfError> {
        if memo.contains_key(&f) {
            return Ok(());
        }
        let n = self.period_end();
        let vals = match arena.node(f) {
            Node::True => vec![true; n],
            Node::False => vec![false; n],
            Node::Atom(a) => (0..n).map(|i| self.state(i).get(a)).collect(),
            Node::Not(g) => {
                self.values(arena, g, memo)?;
                memo[&g].iter().map(|v| !v).collect()
            }
            Node::And(a, b) => {
                self.values(arena, a, memo)?;
                self.values(arena, b, memo)?;
                memo[&a]
                    .iter()
                    .zip(&memo[&b])
                    .map(|(x, y)| *x && *y)
                    .collect()
            }
            Node::Or(a, b) => {
                self.values(arena, a, memo)?;
                self.values(arena, b, memo)?;
                memo[&a]
                    .iter()
                    .zip(&memo[&b])
                    .map(|(x, y)| *x || *y)
                    .collect()
            }
            Node::Next(g) => {
                self.values(arena, g, memo)?;
                let gv = &memo[&g];
                (0..n).map(|i| gv[self.succ(i)]).collect()
            }
            Node::Until(a, b) => {
                self.values(arena, a, memo)?;
                self.values(arena, b, memo)?;
                let (av, bv) = (memo[&a].clone(), memo[&b].clone());
                // Least fixpoint of v[i] = b[i] ∨ (a[i] ∧ v[succ(i)]).
                let mut v = vec![false; n];
                loop {
                    let mut changed = false;
                    for i in (0..n).rev() {
                        let nv = bv[i] || (av[i] && v[self.succ(i)]);
                        if nv != v[i] {
                            v[i] = nv;
                            changed = true;
                        }
                    }
                    if !changed {
                        break;
                    }
                }
                v
            }
            Node::Release(a, b) => {
                self.values(arena, a, memo)?;
                self.values(arena, b, memo)?;
                let (av, bv) = (memo[&a].clone(), memo[&b].clone());
                // Greatest fixpoint of v[i] = b[i] ∧ (a[i] ∨ v[succ(i)]).
                let mut v = vec![true; n];
                loop {
                    let mut changed = false;
                    for i in (0..n).rev() {
                        let nv = bv[i] && (av[i] || v[self.succ(i)]);
                        if nv != v[i] {
                            v[i] = nv;
                            changed = true;
                        }
                    }
                    if !changed {
                        break;
                    }
                }
                v
            }
            Node::Prev(_) | Node::Since(_, _) => return Err(NnfError::PastOperator),
        };
        memo.insert(f, vals);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arena::AtomId;

    fn st(atoms: &[AtomId]) -> PropState {
        PropState::from_true_atoms(atoms.iter().copied())
    }

    #[test]
    fn indexing_wraps_into_cycle() {
        let mut ar = Arena::new();
        let pa = ar.intern_atom("p");
        let l = Lasso::new(vec![st(&[])], vec![st(&[pa]), st(&[])]);
        assert!(!l.state(0).get(pa));
        assert!(l.state(1).get(pa));
        assert!(!l.state(2).get(pa));
        assert!(l.state(3).get(pa)); // wraps
        assert_eq!(l.unroll(4).len(), 4);
    }

    #[test]
    fn always_on_all_true_cycle() {
        let mut ar = Arena::new();
        let p = ar.atom("p");
        let pa = ar.find_atom("p").unwrap();
        let g = ar.always(p);
        let l = Lasso::new(vec![], vec![st(&[pa])]);
        assert!(l.eval(&ar, g).unwrap());
        let l2 = Lasso::new(vec![st(&[pa])], vec![st(&[])]);
        assert!(!l2.eval(&ar, g).unwrap());
    }

    #[test]
    fn eventually_in_cycle_only() {
        let mut ar = Arena::new();
        let p = ar.atom("p");
        let pa = ar.find_atom("p").unwrap();
        let ev = ar.eventually(p);
        let l = Lasso::new(vec![st(&[]), st(&[])], vec![st(&[]), st(&[pa])]);
        assert!(l.eval(&ar, ev).unwrap());
        let never = Lasso::new(vec![st(&[pa])], vec![st(&[])]);
        // p only in the prefix: ◇p true at 0 but □◇p false.
        assert!(never.eval(&ar, ev).unwrap());
        let gf = ar.always(ev);
        assert!(!never.eval(&ar, gf).unwrap());
    }

    #[test]
    fn infinitely_often_alternation() {
        let mut ar = Arena::new();
        let p = ar.atom("p");
        let np = ar.not(p);
        let pa = ar.find_atom("p").unwrap();
        let fp = ar.eventually(p);
        let fnp = ar.eventually(np);
        let gfp = ar.always(fp);
        let gfnp = ar.always(fnp);
        let both = ar.and(gfp, gfnp);
        let l = Lasso::new(vec![], vec![st(&[pa]), st(&[])]);
        assert!(l.eval(&ar, both).unwrap());
        let lp = Lasso::new(vec![], vec![st(&[pa])]);
        assert!(!lp.eval(&ar, both).unwrap());
    }

    #[test]
    fn until_needs_contiguity() {
        let mut ar = Arena::new();
        let p = ar.atom("p");
        let q = ar.atom("q");
        let (pa, qa) = (ar.find_atom("p").unwrap(), ar.find_atom("q").unwrap());
        let u = ar.until(p, q);
        // p p q ... satisfies; p _ q ... does not.
        let good = Lasso::new(vec![st(&[pa]), st(&[pa])], vec![st(&[qa])]);
        assert!(good.eval(&ar, u).unwrap());
        let bad = Lasso::new(vec![st(&[pa]), st(&[])], vec![st(&[qa])]);
        assert!(!bad.eval(&ar, u).unwrap());
    }

    #[test]
    fn release_holds_forever_without_release_point() {
        let mut ar = Arena::new();
        let p = ar.atom("p");
        let q = ar.atom("q");
        let qa = ar.find_atom("q").unwrap();
        let r = ar.release(p, q);
        let l = Lasso::new(vec![], vec![st(&[qa])]);
        assert!(l.eval(&ar, r).unwrap());
    }

    #[test]
    fn rejects_past() {
        let mut ar = Arena::new();
        let p = ar.atom("p");
        let o = ar.once(p);
        let l = Lasso::new(vec![], vec![PropState::new()]);
        assert!(l.eval(&ar, o).is_err());
    }
}
