//! Property tests for the shared transaction codec: 120 random
//! schema/transaction pairs per property, each round-tripped through
//! both the WAL's binary form (`tx_to_bytes`/`tx_from_bytes`) and the
//! shell's fact text syntax (`render_fact`/`parse_fact`).

use ticc_store::codec::{
    parse_fact, render_fact, schema_decode, schema_encode, tx_from_bytes, tx_to_bytes,
};
use ticc_store::{Dec, Enc};
use ticc_tdb::rng::Rng;
use ticc_tdb::{Schema, Transaction, Update};

const SEEDS: u64 = 120;

/// A random schema: 1–4 predicates of arity 1–3, 0–2 constants.
fn random_schema(rng: &mut Rng) -> std::sync::Arc<Schema> {
    let np = rng.gen_range_usize(1..5);
    let mut b = Schema::builder();
    for i in 0..np {
        b = b.pred(&format!("P{i}"), rng.gen_range_usize(1..4));
    }
    for i in 0..rng.gen_range_usize(0..3) {
        b = b.constant(&format!("k{i}"));
    }
    b.build()
}

/// A random transaction over `sc`: 0–8 inserts/deletes with values
/// spanning small ints and the u64 extremes.
fn random_tx(rng: &mut Rng, sc: &Schema) -> Transaction {
    let mut tx = Transaction::new();
    for _ in 0..rng.gen_range_usize(0..9) {
        let p = ticc_tdb::PredId(rng.gen_range(0..sc.pred_count() as u64) as u32);
        let tuple: Vec<u64> = (0..sc.arity(p))
            .map(|_| match rng.gen_range(0..4) {
                0 => rng.gen_range(0..10),
                1 => rng.gen_range(0..1_000_000),
                2 => u64::MAX - rng.gen_range(0..3),
                _ => rng.next_u64(),
            })
            .collect();
        if rng.gen_bool(0.5) {
            tx = tx.insert(p, tuple);
        } else {
            tx = tx.delete(p, tuple);
        }
    }
    tx
}

#[test]
fn binary_round_trip_is_identity_over_120_seeds() {
    for seed in 0..SEEDS {
        let mut rng = Rng::seed_from_u64(0xc0dec ^ seed);
        let sc = random_schema(&mut rng);
        for case in 0..8 {
            let tx = random_tx(&mut rng, &sc);
            let bytes = tx_to_bytes(&tx);
            let back = tx_from_bytes(&bytes, &sc)
                .unwrap_or_else(|e| panic!("seed {seed} case {case}: {e}"));
            assert_eq!(back.updates(), tx.updates(), "seed {seed} case {case}");
            // Canonical form: re-encoding the decoded value is stable.
            assert_eq!(tx_to_bytes(&back), bytes, "seed {seed} case {case}");
        }
    }
}

#[test]
fn schema_round_trip_preserves_vocabulary_over_120_seeds() {
    for seed in 0..SEEDS {
        let mut rng = Rng::seed_from_u64(0x5c4e3a ^ seed);
        let sc = random_schema(&mut rng);
        let mut e = Enc::new();
        schema_encode(&mut e, &sc);
        let bytes = e.into_bytes();
        let mut d = Dec::new(&bytes);
        let back = schema_decode(&mut d).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        assert_eq!(back.pred_count(), sc.pred_count(), "seed {seed}");
        assert_eq!(back.const_count(), sc.const_count(), "seed {seed}");
        for p in sc.preds() {
            assert_eq!(back.pred_name(p), sc.pred_name(p), "seed {seed}");
            assert_eq!(back.arity(p), sc.arity(p), "seed {seed}");
        }
        for c in sc.consts() {
            assert_eq!(back.const_name(c), sc.const_name(c), "seed {seed}");
        }
    }
}

#[test]
fn fact_text_round_trip_is_identity_over_120_seeds() {
    for seed in 0..SEEDS {
        let mut rng = Rng::seed_from_u64(0xfac7 ^ seed);
        let sc = random_schema(&mut rng);
        for case in 0..8 {
            let tx = random_tx(&mut rng, &sc);
            for u in tx.updates() {
                let (p, tuple) = match u {
                    Update::Insert(p, t) | Update::Delete(p, t) => (*p, t),
                };
                let text = render_fact(&sc, p, tuple);
                let (bp, bt) = parse_fact(&sc, &text)
                    .unwrap_or_else(|e| panic!("seed {seed} case {case} '{text}': {e}"));
                assert_eq!(bp, p, "seed {seed} case {case} '{text}'");
                assert_eq!(&bt, tuple, "seed {seed} case {case} '{text}'");
            }
        }
    }
}

#[test]
fn decoding_under_the_wrong_schema_fails_cleanly() {
    let big = Schema::builder().pred("P", 1).pred("Q", 3).build();
    let small = Schema::builder().pred("P", 1).build();
    let q = big.pred("Q").unwrap();
    let tx = Transaction::new().insert(q, vec![1, 2, 3]);
    let bytes = tx_to_bytes(&tx);
    // Out-of-range predicate id under the smaller schema: clean error.
    assert!(tx_from_bytes(&bytes, &small).is_err());
    // Arity mismatch: Q's tuple read with arity 1 leaves trailing bytes.
    let skew = Schema::builder().pred("P", 1).pred("Q", 1).build();
    assert!(tx_from_bytes(&bytes, &skew).is_err());
}
