//! WAL fault injection against real files: truncate and corrupt the
//! log at every frame boundary (and every byte of a small log) and
//! assert recovery always yields an intact prefix — never a panic,
//! never a half-applied frame.

use ticc_store::codec::{tx_from_bytes, tx_to_bytes};
use ticc_store::{Store, StoreError, MAGIC};
use ticc_tdb::{Schema, Transaction};

fn schema() -> std::sync::Arc<Schema> {
    Schema::builder().pred("Sub", 1).pred("Rep", 2).build()
}

fn temp_path(tag: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("ticc-store-fault-{tag}-{}.wal", std::process::id()))
}

/// Writes a store with one snapshot frame and `txs` transaction
/// frames; returns the raw file bytes and the frame boundaries
/// (byte offsets where each frame *ends*, starting with the header).
fn build_log(tag: &str, txs: &[Transaction]) -> (std::path::PathBuf, Vec<u8>, Vec<usize>) {
    let path = temp_path(tag);
    let _ = std::fs::remove_file(&path);
    let mut store = Store::create(&path).unwrap();
    let mut boundaries = vec![MAGIC.len()];
    store.append_snapshot(b"pretend-snapshot-payload").unwrap();
    boundaries.push(std::fs::metadata(&path).unwrap().len() as usize);
    for tx in txs {
        store.append_tx(tx, false).unwrap();
        store.sync().unwrap();
        boundaries.push(std::fs::metadata(&path).unwrap().len() as usize);
    }
    drop(store);
    let bytes = std::fs::read(&path).unwrap();
    (path, bytes, boundaries)
}

fn sample_txs(sc: &Schema) -> Vec<Transaction> {
    let sub = sc.pred("Sub").unwrap();
    let rep = sc.pred("Rep").unwrap();
    vec![
        Transaction::new().insert(sub, vec![1]),
        Transaction::new()
            .insert(rep, vec![1, 2])
            .delete(sub, vec![1]),
        Transaction::new().insert(sub, vec![3]),
        Transaction::new()
            .delete(rep, vec![1, 2])
            .insert(sub, vec![4]),
    ]
}

#[test]
fn truncation_at_and_between_every_frame_boundary_recovers_prefix() {
    let sc = schema();
    let txs = sample_txs(&sc);
    let (path, bytes, boundaries) = build_log("trunc", &txs);

    for cut in 0..=bytes.len() {
        std::fs::write(&path, &bytes[..cut]).unwrap();
        if cut == 0 {
            // Empty file: opens as a fresh store, header rewritten.
            let (_store, recovered) = Store::open(&path).unwrap();
            assert!(recovered.snapshot.is_none());
            assert!(recovered.suffix.is_empty());
            assert_eq!(
                std::fs::metadata(&path).unwrap().len() as usize,
                MAGIC.len()
            );
            continue;
        }
        if cut < MAGIC.len() {
            // Short header: not a store.
            assert!(
                matches!(Store::open(&path), Err(StoreError::NotAStore(_))),
                "cut {cut}"
            );
            continue;
        }
        let (store, recovered) = Store::open(&path).unwrap();
        // The valid prefix is the largest boundary ≤ cut.
        let frames_intact = boundaries.iter().filter(|&&b| b <= cut).count() - 1;
        let expected_end = *boundaries
            .iter()
            .filter(|&&b| b <= cut)
            .max()
            .unwrap_or(&MAGIC.len());
        assert_eq!(
            recovered.truncated_bytes,
            (cut - expected_end) as u64,
            "cut {cut}"
        );
        if frames_intact == 0 {
            assert!(recovered.snapshot.is_none(), "cut {cut}");
            assert!(recovered.suffix.is_empty(), "cut {cut}");
        } else {
            assert!(recovered.snapshot.is_some(), "cut {cut}");
            assert_eq!(recovered.suffix.len(), frames_intact - 1, "cut {cut}");
            for (tx, payload) in txs.iter().zip(&recovered.suffix) {
                assert_eq!(tx_to_bytes(tx), *payload, "cut {cut}");
                let back = tx_from_bytes(payload, &sc).unwrap();
                assert_eq!(back.updates(), tx.updates(), "cut {cut}");
            }
        }
        // The file was truncated to the valid prefix on disk.
        assert_eq!(
            std::fs::metadata(&path).unwrap().len() as usize,
            expected_end,
            "cut {cut}"
        );
        drop(store);
    }
    let _ = std::fs::remove_file(&path);
}

#[test]
fn corrupting_any_byte_recovers_a_strict_prefix() {
    let sc = schema();
    let txs = sample_txs(&sc);
    let (path, bytes, boundaries) = build_log("corrupt", &txs);

    for i in 0..bytes.len() {
        let mut mutated = bytes.clone();
        mutated[i] ^= 0x41;
        std::fs::write(&path, &mutated).unwrap();
        if i < MAGIC.len() {
            assert!(
                matches!(Store::open(&path), Err(StoreError::NotAStore(_))),
                "byte {i}"
            );
            continue;
        }
        let (_store, recovered) = Store::open(&path).unwrap();
        // The corrupted byte lives in some frame; every frame before it
        // survives, that frame and everything after is discarded.
        let intact = boundaries.iter().filter(|&&b| b <= i).count() - 1;
        let expected_frames = recovered.suffix.len() + usize::from(recovered.snapshot.is_some());
        assert_eq!(expected_frames, intact, "byte {i}: wrong surviving prefix");
        for (tx, payload) in txs.iter().zip(&recovered.suffix) {
            assert_eq!(tx_to_bytes(tx), *payload, "byte {i}");
        }
    }
    let _ = std::fs::remove_file(&path);
}

#[test]
fn recovered_store_accepts_further_appends() {
    let sc = schema();
    let txs = sample_txs(&sc);
    let (path, bytes, boundaries) = build_log("resume", &txs);

    // Tear mid-way through the last frame, reopen, append a fresh
    // transaction: the log must contain the intact prefix plus the new
    // frame, nothing else.
    let cut = (boundaries[boundaries.len() - 2] + boundaries[boundaries.len() - 1]) / 2;
    std::fs::write(&path, &bytes[..cut]).unwrap();
    let (mut store, recovered) = Store::open(&path).unwrap();
    assert_eq!(recovered.suffix.len(), txs.len() - 1);
    let sub = sc.pred("Sub").unwrap();
    let fresh = Transaction::new().insert(sub, vec![99]);
    store.append_tx(&fresh, true).unwrap();
    drop(store);

    let (_store, after) = Store::open(&path).unwrap();
    assert_eq!(after.truncated_bytes, 0, "clean log after recovery+append");
    assert_eq!(after.suffix.len(), txs.len());
    assert_eq!(after.suffix.last().unwrap(), &tx_to_bytes(&fresh));
    let _ = std::fs::remove_file(&path);
}
