//! Group-commit fault injection: crash the shared log at every byte
//! offset and assert the acknowledgement contract — a synced
//! (acknowledged) append is never lost, an unacknowledged one may be.
//!
//! The protocol argument (see `group.rs` docs): frames hit the file in
//! sequence order and an ack means some `sync_data` covered the
//! frame's sequence number and everything before it. So if we record
//! the file length `L_i` observed right after ack `i`, any crash image
//! of length ≥ `L_i` must recover every append acked by point `i`.
//! Truncating the real file at *every* byte position exercises both
//! sides: prefixes past an ack point keep its appends, prefixes inside
//! the torn tail lose only unacked ones.

use std::collections::BTreeSet;

use ticc_store::codec::tx_from_bytes;
use ticc_store::{GroupWal, StoreError};
use ticc_tdb::{Schema, Transaction, Value};

fn schema() -> std::sync::Arc<Schema> {
    Schema::builder().pred("P", 1).build()
}

fn tx(sc: &Schema, v: Value) -> Transaction {
    Transaction::new().insert(sc.pred("P").unwrap(), vec![v])
}

fn temp_path(tag: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("ticc-group-fault-{tag}-{}.wal", std::process::id()))
}

/// Recovers the set of `(session name, inserted value)` pairs from a
/// crash image written at `path`.
fn recovered_set(path: &std::path::Path, sc: &Schema) -> BTreeSet<(String, Value)> {
    let (_, rec) = GroupWal::open(path).unwrap();
    let mut out = BTreeSet::new();
    for s in &rec.sessions {
        for raw in &s.suffix {
            let tx = tx_from_bytes(raw, sc).unwrap();
            for up in tx.updates() {
                if let ticc_tdb::Update::Insert(_, tuple) = up {
                    out.insert((s.name.clone(), tuple[0]));
                }
            }
        }
    }
    out
}

#[test]
fn no_acked_append_is_lost_at_any_crash_point() {
    let sc = schema();
    let path = temp_path("acked");
    let _ = std::fs::remove_file(&path);

    // Interleave two sessions; sync (= acknowledge) every append and
    // record the file length at each ack together with everything
    // acked so far.
    let mut acked_at: Vec<(u64, BTreeSet<(String, Value)>)> = Vec::new();
    {
        let wal = GroupWal::create(&path).unwrap();
        let a = wal.register("alice").unwrap();
        let b = wal.register("bob").unwrap();
        let mut acked = BTreeSet::new();
        for v in 0..6u64 {
            let (id, name) = if v % 2 == 0 { (a, "alice") } else { (b, "bob") };
            wal.append_tx(id, &tx(&sc, v), true).unwrap();
            acked.insert((name.to_owned(), v));
            let len = std::fs::metadata(&path).unwrap().len();
            acked_at.push((len, acked.clone()));
        }
        // One final *unacked* append: enqueue without sync, then
        // flush the bytes but treat them as never acknowledged.
        wal.append_tx(a, &tx(&sc, 99), false).unwrap();
        wal.flush().unwrap();
    }
    let bytes = std::fs::read(&path).unwrap();
    let all_acked = &acked_at.last().unwrap().1;

    // Below the 9-byte magic there is no log to speak of: an empty
    // image reopens fresh, a partial header is rejected outright.
    std::fs::write(&path, b"").unwrap();
    assert!(GroupWal::open(&path).is_ok());
    for cut in 1..9 {
        std::fs::write(&path, &bytes[..cut]).unwrap();
        assert!(matches!(
            GroupWal::open(&path),
            Err(StoreError::NotAStore(_))
        ));
    }

    for cut in 9..=bytes.len() {
        std::fs::write(&path, &bytes[..cut]).unwrap();
        let got = recovered_set(&path, &sc);
        // Ack contract: every append acked while the file was ≤ cut
        // bytes long must be recovered.
        for (len, acked) in &acked_at {
            if *len <= cut as u64 {
                assert!(
                    acked.is_subset(&got),
                    "cut {cut}: acked appends (file len {len}) lost: {:?}",
                    acked.difference(&got).collect::<Vec<_>>()
                );
            }
        }
        // And nothing is invented: recovery only ever surfaces appends
        // we actually made.
        for (name, v) in &got {
            assert!(
                all_acked.contains(&(name.clone(), *v)) || *v == 99,
                "cut {cut}: recovered unknown append {name}/{v}"
            );
        }
    }
    let _ = std::fs::remove_file(&path);
}

#[test]
fn corruption_inside_an_unacked_window_never_touches_acked_frames() {
    let sc = schema();
    let path = temp_path("corrupt");
    let _ = std::fs::remove_file(&path);

    let acked_len;
    {
        let wal = GroupWal::create(&path).unwrap();
        let a = wal.register("alice").unwrap();
        for v in 0..3u64 {
            wal.append_tx(a, &tx(&sc, v), true).unwrap();
        }
        acked_len = std::fs::metadata(&path).unwrap().len() as usize;
        // An unacked tail window.
        wal.append_tx(a, &tx(&sc, 50), false).unwrap();
        wal.append_tx(a, &tx(&sc, 51), false).unwrap();
        wal.flush().unwrap();
    }
    let bytes = std::fs::read(&path).unwrap();
    let acked: BTreeSet<(String, Value)> = (0..3u64).map(|v| ("alice".to_owned(), v)).collect();

    // Flip every byte of the unacked tail in turn: the acked prefix
    // must survive every variant.
    for pos in acked_len..bytes.len() {
        let mut broken = bytes.clone();
        broken[pos] ^= 0xff;
        std::fs::write(&path, &broken).unwrap();
        let got = recovered_set(&path, &sc);
        assert!(
            acked.is_subset(&got),
            "corrupt byte {pos}: acked appends lost"
        );
    }
    let _ = std::fs::remove_file(&path);
}

#[test]
fn reopen_after_crash_appends_cleanly() {
    let sc = schema();
    let path = temp_path("reopen");
    let _ = std::fs::remove_file(&path);
    {
        let wal = GroupWal::create(&path).unwrap();
        let a = wal.register("alice").unwrap();
        wal.append_tx(a, &tx(&sc, 1), true).unwrap();
    }
    // Torn tail: half a frame of garbage, as a crash mid-write leaves.
    {
        use std::io::Write;
        let mut f = std::fs::OpenOptions::new()
            .append(true)
            .open(&path)
            .unwrap();
        f.write_all(&[0x55; 9]).unwrap();
    }
    let (wal, rec) = GroupWal::open(&path).unwrap();
    assert_eq!(rec.truncated_bytes, 9);
    assert_eq!(rec.sessions.len(), 1);
    let a = wal.register("alice").unwrap();
    wal.append_tx(a, &tx(&sc, 2), true).unwrap();
    drop(wal);
    let (_, rec2) = GroupWal::open(&path).unwrap();
    assert_eq!(rec2.truncated_bytes, 0);
    assert_eq!(rec2.sessions[0].suffix.len(), 2);
    let _ = std::fs::remove_file(&path);
}

#[test]
fn leader_follower_stress_preserves_per_session_order() {
    // The leader/follower contract under real contention: whoever wins
    // the io lock writes *everyone's* pending frames, and followers
    // return without touching the file. Twelve writers (well past the
    // window size a single leader drains in one go) hammer the log
    // with a mix of synced and unsynced appends; afterwards the file
    // must hold every session's appends in that session's issue order
    // — batches are strict prefix-extensions in sequence order, so a
    // session's frames can never be reordered by losing the leader
    // election.
    const WRITERS: usize = 12;
    const EACH: u64 = 50;
    let sc = schema();
    let path = temp_path("stress");
    let _ = std::fs::remove_file(&path);

    let wal = std::sync::Arc::new(GroupWal::create(&path).unwrap());
    let ids: Vec<u32> = (0..WRITERS)
        .map(|i| wal.register(&format!("w{i}")).unwrap())
        .collect();
    let barrier = std::sync::Arc::new(std::sync::Barrier::new(WRITERS));
    std::thread::scope(|scope| {
        for (i, &id) in ids.iter().enumerate() {
            let wal = std::sync::Arc::clone(&wal);
            let sc = std::sync::Arc::clone(&sc);
            let barrier = std::sync::Arc::clone(&barrier);
            scope.spawn(move || {
                barrier.wait();
                for v in 0..EACH {
                    // Writer + step packed into the value, so recovery
                    // can replay each session's order from one file.
                    let value = (i as u64) * 1000 + v;
                    // Every 5th append is unsynced: it must still ride
                    // a later window and land in order.
                    let sync = v % 5 != 4;
                    wal.append_tx(id, &tx(&sc, value), sync).unwrap();
                }
            });
        }
    });
    wal.flush().unwrap();
    assert_eq!(wal.pending_bytes(), 0, "flush drains the queue");

    let stats = wal.stats();
    let synced = WRITERS as u64 * EACH * 4 / 5;
    assert_eq!(stats.frames, WRITERS as u64 * (EACH + 1));
    assert_eq!(stats.windows, stats.fsyncs);
    // Group commit must have amortized: with 12 writers contending,
    // followers pile onto the leader's window, so the fsync count
    // stays below one-per-synced-append.
    assert!(
        stats.fsyncs < synced,
        "no batching: {} fsyncs for {synced} synced appends",
        stats.fsyncs
    );
    assert!(stats.max_batch >= 2);
    assert!(stats.batched_frames >= 2);

    drop(wal);
    let (_, rec) = GroupWal::open(&path).unwrap();
    assert_eq!(rec.sessions.len(), WRITERS);
    for s in &rec.sessions {
        let i: u64 = s.name.strip_prefix('w').unwrap().parse().unwrap();
        let values: Vec<Value> = s
            .suffix
            .iter()
            .map(|raw| {
                let tx = tx_from_bytes(raw, &sc).unwrap();
                match tx.updates().first().unwrap() {
                    ticc_tdb::Update::Insert(_, tuple) => tuple[0],
                    other => panic!("unexpected update {other:?}"),
                }
            })
            .collect();
        let expect: Vec<Value> = (0..EACH).map(|v| (i * 1000 + v) as Value).collect();
        assert_eq!(values, expect, "session {} out of order or lossy", s.name);
    }
    let _ = std::fs::remove_file(&path);
}

#[test]
fn non_group_file_is_rejected_not_truncated() {
    let path = temp_path("reject");
    std::fs::write(&path, b"TICCSTOR1 definitely a per-session store").unwrap();
    match GroupWal::open(&path) {
        Err(StoreError::NotAStore(msg)) => assert!(msg.contains("TICCGRP01")),
        other => panic!("expected NotAStore, got {other:?}"),
    }
    // The reject must not have modified the file.
    assert_eq!(
        std::fs::read(&path).unwrap(),
        b"TICCSTOR1 definitely a per-session store"
    );
    let _ = std::fs::remove_file(&path);
}
