//! The cold-state spill segment: an append-only page file for
//! history instants evicted from memory by a bounded
//! `HistoryBudget`.
//!
//! ## On-disk layout
//!
//! ```text
//! TICCSEG1                                        8-byte magic + version
//! [u32 LE len][u32 LE id][payload][u64 LE checksum]   page 0
//! [u32 LE len][u32 LE id][payload][u64 LE checksum]   page 1
//! …
//! ```
//!
//! Pages carry opaque payloads (the engine stores its deduped
//! `state_encode` bytes) and sequential ids assigned at append time.
//! The checksum folds length, id, and payload through splitmix64 —
//! the same discipline as the WAL's [`frame_checksum`] — so a torn
//! write is detected on open and the file is truncated back to the
//! longest intact prefix, and a flipped bit inside a page surfaces as
//! a [`StoreError::Corrupt`] on [`SegmentFile::read`] instead of a
//! silently wrong state.
//!
//! Unlike the WAL, a segment is *not* a durability artifact: the
//! engine only spills instants already covered by a checkpoint, so a
//! lost or truncated segment costs a rebuild from the snapshot, never
//! correctness. That is why appends do not fsync and the engine keeps
//! segments in temp storage.
//!
//! [`frame_checksum`]: crate::wal::frame_checksum

use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use crate::encode::StoreError;
use crate::wal::MAX_PAYLOAD;
use ticc_tdb::rng::splitmix64;

/// Magic + format version: the first 8 bytes of every segment file.
pub const SEG_MAGIC: &[u8; 8] = b"TICCSEG1";

/// Folds a page's length, id, and payload through splitmix64.
pub fn page_checksum(id: u32, payload: &[u8]) -> u64 {
    let mut acc: u64 = 0x5449_4343_5345_4721; // "TICCSEG!"
    let mut mix = |word: u64| {
        acc ^= word;
        acc = splitmix64(&mut acc);
    };
    mix(payload.len() as u64);
    mix(u64::from(id));
    let mut chunks = payload.chunks_exact(8);
    for c in &mut chunks {
        mix(u64::from_le_bytes(c.try_into().expect("chunk of 8")));
    }
    let rest = chunks.remainder();
    if !rest.is_empty() {
        let mut last = [0u8; 8];
        last[..rest.len()].copy_from_slice(rest);
        mix(u64::from_le_bytes(last));
    }
    acc
}

/// An open spill segment: sequential-id page appends, random-access
/// checksummed reads.
///
/// Reads take `&self` (they go through a positioned read on unix), so
/// a segment shared behind an `Arc` can serve concurrent page loads
/// from pool workers while the owner keeps appending through `&mut`.
#[derive(Debug)]
pub struct SegmentFile {
    file: File,
    path: PathBuf,
    /// Byte offset of each page header, indexed by page id.
    offsets: Vec<u64>,
    /// Append position (end of the valid prefix).
    end: u64,
    /// Bytes of torn/corrupt tail discarded when the file was opened.
    truncated_bytes: u64,
}

impl SegmentFile {
    /// Creates a fresh segment at `path`, truncating any existing
    /// file.
    pub fn create(path: impl AsRef<Path>) -> Result<SegmentFile, StoreError> {
        let path = path.as_ref().to_path_buf();
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(&path)?;
        file.write_all(SEG_MAGIC)?;
        Ok(SegmentFile {
            file,
            path,
            offsets: Vec::new(),
            end: SEG_MAGIC.len() as u64,
            truncated_bytes: 0,
        })
    }

    /// Opens an existing segment: scans every page, truncates any
    /// torn/corrupt tail, and positions for appending. Page ids must
    /// be sequential from zero — anything else is treated as the
    /// start of a torn tail.
    pub fn open(path: impl AsRef<Path>) -> Result<SegmentFile, StoreError> {
        let path = path.as_ref().to_path_buf();
        let mut file = OpenOptions::new().read(true).write(true).open(&path)?;
        let mut bytes = Vec::new();
        file.read_to_end(&mut bytes)?;
        if bytes.is_empty() {
            file.write_all(SEG_MAGIC)?;
            return Ok(SegmentFile {
                file,
                path,
                offsets: Vec::new(),
                end: SEG_MAGIC.len() as u64,
                truncated_bytes: 0,
            });
        }
        if bytes.len() < SEG_MAGIC.len() || &bytes[..SEG_MAGIC.len()] != SEG_MAGIC {
            return Err(StoreError::NotAStore(format!(
                "'{}' is not a ticc segment file",
                path.display()
            )));
        }
        let mut offsets = Vec::new();
        let mut pos = SEG_MAGIC.len();
        while let Some(total) = page_len_at(&bytes, pos, offsets.len() as u32) {
            offsets.push(pos as u64);
            pos += total;
        }
        let truncated = (bytes.len() - pos) as u64;
        if truncated > 0 {
            file.set_len(pos as u64)?;
        }
        file.seek(SeekFrom::Start(pos as u64))?;
        Ok(SegmentFile {
            file,
            path,
            offsets,
            end: pos as u64,
            truncated_bytes: truncated,
        })
    }

    /// The file this segment pages to.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Number of pages in the valid prefix.
    pub fn pages(&self) -> usize {
        self.offsets.len()
    }

    /// Total file size of the valid prefix, in bytes.
    pub fn bytes(&self) -> u64 {
        self.end
    }

    /// Bytes of torn/corrupt tail discarded when this segment was
    /// opened.
    pub fn truncated_bytes(&self) -> u64 {
        self.truncated_bytes
    }

    /// Appends one page and returns its id (sequential from zero). No
    /// fsync: segments are a memory-relief tier, not a durability one.
    pub fn append(&mut self, payload: &[u8]) -> Result<u32, StoreError> {
        let len = u32::try_from(payload.len())
            .ok()
            .filter(|&l| l <= MAX_PAYLOAD)
            .ok_or_else(|| {
                StoreError::Corrupt(format!("segment page of {} bytes too large", payload.len()))
            })?;
        let id = u32::try_from(self.offsets.len())
            .map_err(|_| StoreError::Corrupt("segment page id space exhausted".into()))?;
        let mut page = Vec::with_capacity(4 + 4 + payload.len() + 8);
        page.extend_from_slice(&len.to_le_bytes());
        page.extend_from_slice(&id.to_le_bytes());
        page.extend_from_slice(payload);
        page.extend_from_slice(&page_checksum(id, payload).to_le_bytes());
        self.file.write_all(&page)?;
        self.offsets.push(self.end);
        self.end += page.len() as u64;
        Ok(id)
    }

    /// Reads page `id` back, verifying its checksum. Takes `&self`:
    /// the read is positioned (`pread`) and never disturbs the append
    /// cursor.
    pub fn read(&self, id: u32) -> Result<Vec<u8>, StoreError> {
        let off = *self
            .offsets
            .get(id as usize)
            .ok_or_else(|| StoreError::Corrupt(format!("segment page {id} out of range")))?;
        let mut header = [0u8; 8];
        read_exact_at(&self.file, &mut header, off)?;
        let len = u32::from_le_bytes(header[0..4].try_into().expect("4 bytes")) as usize;
        let stored_id = u32::from_le_bytes(header[4..8].try_into().expect("4 bytes"));
        if stored_id != id || len > MAX_PAYLOAD as usize {
            return Err(StoreError::Corrupt(format!(
                "segment page {id} has a corrupt header"
            )));
        }
        let mut body = vec![0u8; len + 8];
        read_exact_at(&self.file, &mut body, off + 8)?;
        let payload = &body[..len];
        let stored_sum = u64::from_le_bytes(body[len..].try_into().expect("8 bytes"));
        if stored_sum != page_checksum(id, payload) {
            return Err(StoreError::Corrupt(format!(
                "segment page {id} failed its checksum"
            )));
        }
        Ok(payload.to_vec())
    }
}

/// Validates the page at `pos` (length bounds, sequential id,
/// checksum) and returns its total on-disk length, or `None` where
/// the valid prefix ends.
fn page_len_at(bytes: &[u8], pos: usize, expect_id: u32) -> Option<usize> {
    let header = bytes.get(pos..pos + 8)?;
    let len = u32::from_le_bytes(header[0..4].try_into().expect("4 bytes"));
    let id = u32::from_le_bytes(header[4..8].try_into().expect("4 bytes"));
    if len > MAX_PAYLOAD || id != expect_id {
        return None;
    }
    let len = len as usize;
    let payload = bytes.get(pos + 8..pos + 8 + len)?;
    let sum_bytes = bytes.get(pos + 8 + len..pos + 8 + len + 8)?;
    let stored = u64::from_le_bytes(sum_bytes.try_into().expect("8 bytes"));
    if stored != page_checksum(id, payload) {
        return None;
    }
    Some(8 + len + 8)
}

#[cfg(target_family = "unix")]
fn read_exact_at(file: &File, buf: &mut [u8], off: u64) -> Result<(), StoreError> {
    use std::os::unix::fs::FileExt;
    file.read_exact_at(buf, off).map_err(StoreError::Io)
}

#[cfg(not(target_family = "unix"))]
fn read_exact_at(file: &File, buf: &mut [u8], off: u64) -> Result<(), StoreError> {
    // Portable fallback: clone the handle so the append cursor of the
    // original file stays put.
    let mut f = file.try_clone().map_err(StoreError::Io)?;
    f.seek(SeekFrom::Start(off)).map_err(StoreError::Io)?;
    f.read_exact(buf).map_err(StoreError::Io)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("ticc-seg-{}-{}", std::process::id(), name));
        let _ = std::fs::remove_file(&p);
        p
    }

    #[test]
    fn pages_round_trip_with_sequential_ids() {
        let path = tmp("roundtrip");
        let mut seg = SegmentFile::create(&path).unwrap();
        let payloads: Vec<Vec<u8>> = (0..17u8).map(|i| vec![i; (i as usize) * 3 + 1]).collect();
        for (i, p) in payloads.iter().enumerate() {
            assert_eq!(seg.append(p).unwrap(), i as u32);
        }
        assert_eq!(seg.pages(), 17);
        // Interleave reads with an append: &self reads must not move
        // the append cursor.
        assert_eq!(seg.read(3).unwrap(), payloads[3]);
        assert_eq!(seg.append(b"tail").unwrap(), 17);
        for (i, p) in payloads.iter().enumerate() {
            assert_eq!(&seg.read(i as u32).unwrap(), p);
        }
        assert_eq!(seg.read(17).unwrap(), b"tail");
        assert!(seg.read(18).is_err(), "past-the-end reads error");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn reopen_recovers_and_truncates_a_torn_tail() {
        let path = tmp("torn");
        let mut seg = SegmentFile::create(&path).unwrap();
        for i in 0..5u8 {
            seg.append(&[i; 40]).unwrap();
        }
        let full = seg.bytes();
        drop(seg);
        // Tear the last page at every possible byte boundary: the
        // first four pages must always survive.
        let bytes = std::fs::read(&path).unwrap();
        let fourth_end = {
            let seg = SegmentFile::open(&path).unwrap();
            let _ = seg;
            // Recompute: magic + 4 pages of (8 + 40 + 8).
            (SEG_MAGIC.len() + 4 * 56) as u64
        };
        for cut in fourth_end..full {
            std::fs::write(&path, &bytes[..cut as usize]).unwrap();
            let seg = SegmentFile::open(&path).unwrap();
            assert_eq!(seg.pages(), 4, "cut at {cut}");
            assert_eq!(seg.truncated_bytes(), cut - fourth_end);
            assert_eq!(seg.bytes(), fourth_end);
            for i in 0..4u8 {
                assert_eq!(seg.read(i as u32).unwrap(), vec![i; 40]);
            }
        }
        // Appends continue after recovery with the right next id.
        std::fs::write(&path, &bytes[..(fourth_end + 13) as usize]).unwrap();
        let mut seg = SegmentFile::open(&path).unwrap();
        assert_eq!(seg.append(b"after-recovery").unwrap(), 4);
        assert_eq!(seg.read(4).unwrap(), b"after-recovery");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn corrupt_page_reads_error_instead_of_lying() {
        let path = tmp("corrupt");
        let mut seg = SegmentFile::create(&path).unwrap();
        seg.append(&[1u8; 64]).unwrap();
        seg.append(&[2u8; 64]).unwrap();
        drop(seg);
        // Flip one payload byte of page 0 on disk.
        let mut bytes = std::fs::read(&path).unwrap();
        let victim = SEG_MAGIC.len() + 8 + 10;
        bytes[victim] ^= 0xff;
        std::fs::write(&path, &bytes).unwrap();
        // Scan-on-open stops at the corrupt page (it guards the whole
        // suffix), so the file recovers to zero pages…
        let seg = SegmentFile::open(&path).unwrap();
        assert_eq!(seg.pages(), 0);
        drop(seg);
        // …and a page corrupted *after* open (bit rot under a live
        // handle) fails its checksum at read time.
        std::fs::write(&path, &bytes).unwrap();
        let reopened = {
            // Rebuild the index against the intact image, then rot it.
            let intact: Vec<u8> = {
                let mut b = std::fs::read(&path).unwrap();
                b[victim] ^= 0xff;
                b
            };
            std::fs::write(&path, &intact).unwrap();
            let seg = SegmentFile::open(&path).unwrap();
            let mut rotted = intact;
            rotted[victim] ^= 0xff;
            std::fs::write(&path, &rotted).unwrap();
            seg
        };
        assert_eq!(reopened.pages(), 2);
        let err = reopened.read(0).unwrap_err();
        assert!(
            err.to_string().contains("checksum"),
            "want a checksum error, got: {err}"
        );
        assert_eq!(reopened.read(1).unwrap(), [2u8; 64]);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn open_rejects_non_segment_files() {
        let path = tmp("notaseg");
        std::fs::write(&path, b"definitely not a segment").unwrap();
        let err = SegmentFile::open(&path).unwrap_err();
        assert!(matches!(err, StoreError::NotAStore(_)));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn empty_file_is_a_fresh_segment() {
        let path = tmp("empty");
        std::fs::write(&path, b"").unwrap();
        let mut seg = SegmentFile::open(&path).unwrap();
        assert_eq!(seg.pages(), 0);
        assert_eq!(seg.append(b"first").unwrap(), 0);
        std::fs::remove_file(&path).unwrap();
    }
}
