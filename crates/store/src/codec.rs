//! Canonical codecs for the database vocabulary: schemas,
//! transactions (binary *and* the shell's fact text syntax), and
//! first-order temporal formulas.
//!
//! These are the shared serialisation points for the whole stack. The
//! WAL frames transactions with [`tx_encode`]/[`tx_decode`]; the shell
//! stages updates through [`parse_fact`]/[`render_fact`] (the same
//! grammar `insert Pred(v, …)` scripts use); snapshots embed schemas
//! and constraint formulas through the remaining pairs. Each decoder
//! validates against the schema it is given — predicate ids in range,
//! tuple arities exact — so corrupt or mismatched bytes surface as
//! [`StoreError::Corrupt`], never as a panic deeper in the stack.

use crate::encode::{Dec, Enc, StoreError};
use ticc_fotl::term::{Atom, Term};
use ticc_fotl::Formula;
use ticc_tdb::{PredId, Schema, Transaction, Update, Value};

fn corrupt(what: impl Into<String>) -> StoreError {
    StoreError::Corrupt(what.into())
}

// ---------------------------------------------------------------------
// Schema
// ---------------------------------------------------------------------

/// Encodes a schema as `(name, arity)*` then `const-name*`.
pub fn schema_encode(e: &mut Enc, sc: &Schema) {
    e.usize(sc.pred_count());
    for p in sc.preds() {
        e.str(sc.pred_name(p));
        e.usize(sc.arity(p));
    }
    e.usize(sc.const_count());
    for c in sc.consts() {
        e.str(sc.const_name(c));
    }
}

/// Decodes a schema; rebuilds it through [`Schema::builder`] after
/// validating what the builder would otherwise panic on.
pub fn schema_decode(d: &mut Dec<'_>) -> Result<std::sync::Arc<Schema>, StoreError> {
    let np = d.usize()?;
    let mut decls: Vec<(String, usize)> = Vec::with_capacity(np.min(1024));
    for _ in 0..np {
        let name = d.str()?.to_owned();
        let arity = d.usize()?;
        if arity == 0 {
            return Err(corrupt(format!("predicate '{name}' with arity 0")));
        }
        if decls.iter().any(|(n, _)| *n == name) {
            return Err(corrupt(format!("duplicate predicate '{name}'")));
        }
        decls.push((name, arity));
    }
    let nc = d.usize()?;
    let mut consts: Vec<String> = Vec::with_capacity(nc.min(1024));
    for _ in 0..nc {
        let name = d.str()?.to_owned();
        if consts.contains(&name) || decls.iter().any(|(n, _)| *n == name) {
            return Err(corrupt(format!("duplicate symbol '{name}'")));
        }
        consts.push(name);
    }
    let mut b = Schema::builder();
    for (name, arity) in &decls {
        b = b.pred(name, *arity);
    }
    for name in &consts {
        b = b.constant(name);
    }
    Ok(b.build())
}

// ---------------------------------------------------------------------
// Transactions (binary)
// ---------------------------------------------------------------------

const UPD_INSERT: u8 = 0;
const UPD_DELETE: u8 = 1;

/// Encodes a transaction as `count ++ (tag, pred, tuple)*`.
pub fn tx_encode(e: &mut Enc, tx: &Transaction) {
    e.usize(tx.updates().len());
    for u in tx.updates() {
        let (tag, p, tuple) = match u {
            Update::Insert(p, t) => (UPD_INSERT, p, t),
            Update::Delete(p, t) => (UPD_DELETE, p, t),
        };
        e.u8(tag);
        e.u32(p.0);
        for &v in tuple {
            e.u64(v);
        }
    }
}

/// Decodes a transaction, validating predicate ids and arities
/// against `schema` (tuple lengths are implied by the schema, so the
/// wire format never has to trust a length field for them).
pub fn tx_decode(d: &mut Dec<'_>, schema: &Schema) -> Result<Transaction, StoreError> {
    let n = d.usize()?;
    let mut updates = Vec::with_capacity(n.min(4096));
    for _ in 0..n {
        let tag = d.u8()?;
        let pid = d.u32()?;
        if pid as usize >= schema.pred_count() {
            return Err(corrupt(format!("predicate id {pid} out of range")));
        }
        let p = PredId(pid);
        let arity = schema.arity(p);
        let mut tuple = Vec::with_capacity(arity);
        for _ in 0..arity {
            tuple.push(d.u64()?);
        }
        updates.push(match tag {
            UPD_INSERT => Update::Insert(p, tuple),
            UPD_DELETE => Update::Delete(p, tuple),
            other => return Err(corrupt(format!("unknown update tag {other}"))),
        });
    }
    Ok(updates.into_iter().collect())
}

/// Convenience: a transaction as a standalone byte string.
pub fn tx_to_bytes(tx: &Transaction) -> Vec<u8> {
    let mut e = Enc::new();
    tx_encode(&mut e, tx);
    e.into_bytes()
}

/// Convenience: decodes a standalone transaction byte string exactly.
pub fn tx_from_bytes(bytes: &[u8], schema: &Schema) -> Result<Transaction, StoreError> {
    let mut d = Dec::new(bytes);
    let tx = tx_decode(&mut d, schema)?;
    d.finish()?;
    Ok(tx)
}

// ---------------------------------------------------------------------
// Transactions (text — the shell's fact grammar)
// ---------------------------------------------------------------------

/// Parses the shell's fact syntax `Pred(v1, v2, …)` against a schema.
///
/// This is the *canonical* text codec: the interactive shell, script
/// files, and [`render_fact`] all share it, so a fact rendered from a
/// WAL transaction parses back to the identical `(PredId, tuple)`.
pub fn parse_fact(schema: &Schema, src: &str) -> Result<(PredId, Vec<Value>), String> {
    let src = src.trim();
    let Some(open) = src.find('(') else {
        return Err("usage: <Pred>(<v1>, <v2>, …)".to_owned());
    };
    if !src.ends_with(')') {
        return Err("missing ')'".to_owned());
    }
    let name = src[..open].trim();
    let pred = schema
        .pred(name)
        .ok_or_else(|| format!("unknown predicate '{name}'"))?;
    let args: Result<Vec<Value>, String> = src[open + 1..src.len() - 1]
        .split(',')
        .map(|a| {
            a.trim()
                .parse::<Value>()
                .map_err(|_| format!("bad value '{}' (facts take numeric elements)", a.trim()))
        })
        .collect();
    let args = args?;
    if args.len() != schema.arity(pred) {
        return Err(format!(
            "{name} expects {} argument(s), got {}",
            schema.arity(pred),
            args.len()
        ));
    }
    Ok((pred, args))
}

/// Renders a fact in the canonical text syntax [`parse_fact`] reads.
pub fn render_fact(schema: &Schema, pred: PredId, tuple: &[Value]) -> String {
    let args: Vec<String> = tuple.iter().map(|v| v.to_string()).collect();
    format!("{}({})", schema.pred_name(pred), args.join(", "))
}

// ---------------------------------------------------------------------
// Formulas
// ---------------------------------------------------------------------

const TERM_VAR: u8 = 0;
const TERM_CONST: u8 = 1;
const TERM_VALUE: u8 = 2;

fn term_encode(e: &mut Enc, t: &Term) {
    match t {
        Term::Var(name) => {
            e.u8(TERM_VAR);
            e.str(name);
        }
        Term::Const(c) => {
            e.u8(TERM_CONST);
            e.u32(c.0);
        }
        Term::Value(v) => {
            e.u8(TERM_VALUE);
            e.u64(*v);
        }
    }
}

fn term_decode(d: &mut Dec<'_>, schema: &Schema) -> Result<Term, StoreError> {
    Ok(match d.u8()? {
        TERM_VAR => Term::Var(d.str()?.to_owned()),
        TERM_CONST => {
            let c = d.u32()?;
            if c as usize >= schema.const_count() {
                return Err(corrupt(format!("constant id {c} out of range")));
            }
            Term::Const(ticc_tdb::ConstId(c))
        }
        TERM_VALUE => Term::Value(d.u64()?),
        other => return Err(corrupt(format!("unknown term tag {other}"))),
    })
}

const ATOM_EQ: u8 = 0;
const ATOM_PRED: u8 = 1;
const ATOM_LEQ: u8 = 2;
const ATOM_SUCC: u8 = 3;
const ATOM_ZERO: u8 = 4;

fn atom_encode(e: &mut Enc, a: &Atom) {
    match a {
        Atom::Eq(x, y) => {
            e.u8(ATOM_EQ);
            term_encode(e, x);
            term_encode(e, y);
        }
        Atom::Pred(p, terms) => {
            e.u8(ATOM_PRED);
            e.u32(p.0);
            e.usize(terms.len());
            for t in terms {
                term_encode(e, t);
            }
        }
        Atom::Leq(x, y) => {
            e.u8(ATOM_LEQ);
            term_encode(e, x);
            term_encode(e, y);
        }
        Atom::Succ(x, y) => {
            e.u8(ATOM_SUCC);
            term_encode(e, x);
            term_encode(e, y);
        }
        Atom::Zero(x) => {
            e.u8(ATOM_ZERO);
            term_encode(e, x);
        }
    }
}

fn atom_decode(d: &mut Dec<'_>, schema: &Schema) -> Result<Atom, StoreError> {
    Ok(match d.u8()? {
        ATOM_EQ => Atom::Eq(term_decode(d, schema)?, term_decode(d, schema)?),
        ATOM_PRED => {
            let pid = d.u32()?;
            if pid as usize >= schema.pred_count() {
                return Err(corrupt(format!("predicate id {pid} out of range")));
            }
            let n = d.usize()?;
            let mut terms = Vec::with_capacity(n.min(64));
            for _ in 0..n {
                terms.push(term_decode(d, schema)?);
            }
            Atom::Pred(PredId(pid), terms)
        }
        ATOM_LEQ => Atom::Leq(term_decode(d, schema)?, term_decode(d, schema)?),
        ATOM_SUCC => Atom::Succ(term_decode(d, schema)?, term_decode(d, schema)?),
        ATOM_ZERO => Atom::Zero(term_decode(d, schema)?),
        other => return Err(corrupt(format!("unknown atom tag {other}"))),
    })
}

const F_TRUE: u8 = 0;
const F_FALSE: u8 = 1;
const F_ATOM: u8 = 2;
const F_NOT: u8 = 3;
const F_AND: u8 = 4;
const F_OR: u8 = 5;
const F_IMPLIES: u8 = 6;
const F_FORALL: u8 = 7;
const F_EXISTS: u8 = 8;
const F_NEXT: u8 = 9;
const F_UNTIL: u8 = 10;
const F_PREV: u8 = 11;
const F_SINCE: u8 = 12;

/// Depth limit for formula decoding: deeper nesting than this is
/// treated as corruption. The decoder is iterative, so the limit
/// bounds heap growth on garbage input rather than guarding the call
/// stack; real constraints nest a few dozen levels at most.
const MAX_FORMULA_DEPTH: usize = 4096;

/// Encodes a formula as a pre-order tagged tree.
pub fn formula_encode(e: &mut Enc, phi: &Formula) {
    match phi {
        Formula::True => e.u8(F_TRUE),
        Formula::False => e.u8(F_FALSE),
        Formula::Atom(a) => {
            e.u8(F_ATOM);
            atom_encode(e, a);
        }
        Formula::Not(p) => {
            e.u8(F_NOT);
            formula_encode(e, p);
        }
        Formula::And(p, q) => {
            e.u8(F_AND);
            formula_encode(e, p);
            formula_encode(e, q);
        }
        Formula::Or(p, q) => {
            e.u8(F_OR);
            formula_encode(e, p);
            formula_encode(e, q);
        }
        Formula::Implies(p, q) => {
            e.u8(F_IMPLIES);
            formula_encode(e, p);
            formula_encode(e, q);
        }
        Formula::Forall(x, p) => {
            e.u8(F_FORALL);
            e.str(x);
            formula_encode(e, p);
        }
        Formula::Exists(x, p) => {
            e.u8(F_EXISTS);
            e.str(x);
            formula_encode(e, p);
        }
        Formula::Next(p) => {
            e.u8(F_NEXT);
            formula_encode(e, p);
        }
        Formula::Until(p, q) => {
            e.u8(F_UNTIL);
            formula_encode(e, p);
            formula_encode(e, q);
        }
        Formula::Prev(p) => {
            e.u8(F_PREV);
            formula_encode(e, p);
        }
        Formula::Since(p, q) => {
            e.u8(F_SINCE);
            formula_encode(e, p);
            formula_encode(e, q);
        }
    }
}

/// A connective awaiting its children during iterative decoding.
enum Pending {
    Not,
    And,
    Or,
    Implies,
    Forall(String),
    Exists(String),
    Next,
    Until,
    Prev,
    Since,
}

impl Pending {
    fn need(&self) -> usize {
        match self {
            Pending::Not
            | Pending::Forall(_)
            | Pending::Exists(_)
            | Pending::Next
            | Pending::Prev => 1,
            _ => 2,
        }
    }

    fn complete(self, mut kids: Vec<Formula>) -> Formula {
        let b = kids.pop().expect("arity checked");
        match self {
            Pending::Not => Formula::Not(Box::new(b)),
            Pending::Forall(x) => Formula::Forall(x, Box::new(b)),
            Pending::Exists(x) => Formula::Exists(x, Box::new(b)),
            Pending::Next => Formula::Next(Box::new(b)),
            Pending::Prev => Formula::Prev(Box::new(b)),
            binary => {
                let a = kids.pop().expect("arity checked");
                match binary {
                    Pending::And => Formula::And(Box::new(a), Box::new(b)),
                    Pending::Or => Formula::Or(Box::new(a), Box::new(b)),
                    Pending::Implies => Formula::Implies(Box::new(a), Box::new(b)),
                    Pending::Until => Formula::Until(Box::new(a), Box::new(b)),
                    Pending::Since => Formula::Since(Box::new(a), Box::new(b)),
                    _ => unreachable!("unary handled above"),
                }
            }
        }
    }
}

/// Decodes a formula, validating ids against `schema`.
///
/// The encoding is pre-order, so decoding runs a work stack instead
/// of the call stack: leaves complete immediately, internal nodes
/// wait on the stack until their children are built. Deeply nested
/// garbage is rejected at `MAX_FORMULA_DEPTH` instead of exhausting
/// memory.
pub fn formula_decode(d: &mut Dec<'_>, schema: &Schema) -> Result<Formula, StoreError> {
    let mut stack: Vec<(Pending, Vec<Formula>)> = Vec::new();
    loop {
        if stack.len() > MAX_FORMULA_DEPTH {
            return Err(corrupt("formula nesting exceeds depth limit"));
        }
        let leaf: Option<Formula> = match d.u8()? {
            F_TRUE => Some(Formula::True),
            F_FALSE => Some(Formula::False),
            F_ATOM => Some(Formula::Atom(atom_decode(d, schema)?)),
            F_NOT => {
                stack.push((Pending::Not, Vec::new()));
                None
            }
            F_AND => {
                stack.push((Pending::And, Vec::new()));
                None
            }
            F_OR => {
                stack.push((Pending::Or, Vec::new()));
                None
            }
            F_IMPLIES => {
                stack.push((Pending::Implies, Vec::new()));
                None
            }
            F_FORALL => {
                stack.push((Pending::Forall(d.str()?.to_owned()), Vec::new()));
                None
            }
            F_EXISTS => {
                stack.push((Pending::Exists(d.str()?.to_owned()), Vec::new()));
                None
            }
            F_NEXT => {
                stack.push((Pending::Next, Vec::new()));
                None
            }
            F_UNTIL => {
                stack.push((Pending::Until, Vec::new()));
                None
            }
            F_PREV => {
                stack.push((Pending::Prev, Vec::new()));
                None
            }
            F_SINCE => {
                stack.push((Pending::Since, Vec::new()));
                None
            }
            other => return Err(corrupt(format!("unknown formula tag {other}"))),
        };
        let Some(mut phi) = leaf else { continue };
        // Feed the completed subformula upward, closing every parent
        // that just received its last child.
        loop {
            match stack.last_mut() {
                None => return Ok(phi),
                Some((pending, kids)) => {
                    kids.push(phi);
                    if kids.len() < pending.need() {
                        break;
                    }
                    let (pending, kids) = stack.pop().expect("non-empty");
                    phi = pending.complete(kids);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn schema() -> Arc<Schema> {
        Schema::builder()
            .pred("Sub", 1)
            .pred("Rep", 2)
            .constant("vip")
            .build()
    }

    #[test]
    fn schema_round_trip() {
        let sc = schema();
        let mut e = Enc::new();
        schema_encode(&mut e, &sc);
        let b = e.into_bytes();
        let mut d = Dec::new(&b);
        let back = schema_decode(&mut d).unwrap();
        d.finish().unwrap();
        assert_eq!(back.pred_count(), sc.pred_count());
        assert_eq!(back.const_count(), sc.const_count());
        for p in sc.preds() {
            assert_eq!(back.pred_name(p), sc.pred_name(p));
            assert_eq!(back.arity(p), sc.arity(p));
        }
    }

    #[test]
    fn schema_decode_rejects_duplicates_without_panicking() {
        let mut e = Enc::new();
        e.usize(2);
        e.str("P");
        e.usize(1);
        e.str("P");
        e.usize(2);
        e.usize(0);
        let b = e.into_bytes();
        assert!(schema_decode(&mut Dec::new(&b)).is_err());
    }

    #[test]
    fn tx_round_trip() {
        let sc = schema();
        let sub = sc.pred("Sub").unwrap();
        let rep = sc.pred("Rep").unwrap();
        let tx = Transaction::new()
            .insert(sub, vec![7])
            .delete(rep, vec![1, 2])
            .insert(rep, vec![u64::MAX, 0]);
        let bytes = tx_to_bytes(&tx);
        assert_eq!(tx_from_bytes(&bytes, &sc).unwrap(), tx);
    }

    #[test]
    fn tx_decode_rejects_bad_pred_id() {
        let sc = schema();
        let mut e = Enc::new();
        e.usize(1);
        e.u8(UPD_INSERT);
        e.u32(99);
        e.u64(1);
        let b = e.into_bytes();
        assert!(tx_from_bytes(&b, &sc).is_err());
    }

    #[test]
    fn fact_text_round_trip() {
        let sc = schema();
        let rep = sc.pred("Rep").unwrap();
        let text = render_fact(&sc, rep, &[3, 9]);
        assert_eq!(text, "Rep(3, 9)");
        assert_eq!(parse_fact(&sc, &text).unwrap(), (rep, vec![3, 9]));
        assert!(parse_fact(&sc, "Rep(1)").is_err(), "arity checked");
        assert!(parse_fact(&sc, "Nope(1)").is_err(), "unknown predicate");
        assert!(parse_fact(&sc, "Rep(1, x)").is_err(), "non-numeric");
    }

    #[test]
    fn formula_round_trip() {
        let sc = schema();
        let srcs = [
            "forall x. G (Sub(x) -> X G !Sub(x))",
            "forall x y. G (Rep(x, y) -> X G !Rep(x, y))",
            "G !Sub(999)",
            "F (Sub(x) & X F Sub(x))",
            "G !Sub(vip)",
        ];
        for src in srcs {
            let phi = ticc_fotl::parser::parse(&sc, src).unwrap();
            let mut e = Enc::new();
            formula_encode(&mut e, &phi);
            let b = e.into_bytes();
            let mut d = Dec::new(&b);
            let back = formula_decode(&mut d, &sc).unwrap();
            d.finish().unwrap();
            assert_eq!(back, phi, "{src}");
        }
    }

    #[test]
    fn formula_decode_depth_limited() {
        // A run of Not tags with no leaf: must fail cleanly, not
        // overflow the stack.
        let bytes = vec![F_NOT; 100_000];
        assert!(formula_decode(&mut Dec::new(&bytes), &schema()).is_err());
    }
}
