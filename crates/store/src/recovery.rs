//! Crash recovery: the frame scanner.
//!
//! `scan` walks the byte image of a store file frame by frame,
//! verifying each checksum, and stops at the first frame that does not
//! check out — a torn tail from a crash mid-write, flipped bits, or a
//! length field pointing past the end of the file all look the same
//! from here. Everything before that point is the *valid prefix*; the
//! store truncates the file back to it, so the log's invariant
//! ("every byte on disk is part of an intact frame") is restored
//! before any new append.
//!
//! The scanner also folds the recovery semantics the engine needs: the
//! payload of the **newest intact snapshot** frame, and the raw
//! transaction payloads that follow it (the *suffix* the engine
//! replays through its append hot path). Transactions before the last
//! snapshot are already covered by it and are skipped.

use crate::encode::StoreError;
use crate::wal::{frame_checksum, MAGIC, MAX_PAYLOAD, TAG_SNAPSHOT, TAG_TX};

/// What recovery found in the valid prefix of a store file.
#[derive(Debug, Default)]
pub struct Recovered {
    /// The newest intact snapshot payload, if any frame held one.
    pub snapshot: Option<Vec<u8>>,
    /// Raw transaction payloads after that snapshot (oldest first);
    /// decode with [`crate::codec::tx_from_bytes`] once the schema is
    /// known (it lives inside the snapshot).
    pub suffix: Vec<Vec<u8>>,
    /// Intact frames in the valid prefix.
    pub frames: u64,
    /// Bytes of torn/corrupt tail the open discarded.
    pub truncated_bytes: u64,
}

/// A scan outcome: the recovered contents plus where the valid prefix
/// ends (a byte offset the store truncates the file to).
#[derive(Debug)]
pub(crate) struct ScanOutcome {
    pub recovered: Recovered,
    pub valid_end: usize,
}

/// One intact frame located by [`next_frame`].
#[derive(Debug)]
pub(crate) struct RawFrame {
    /// The frame's tag byte.
    pub tag: u8,
    /// Byte range of the payload inside the scanned image.
    pub payload: std::ops::Range<usize>,
    /// Offset of the first byte after the frame (payload + checksum).
    pub end: usize,
}

/// Decodes the frame starting at `pos`, verifying the length bound and
/// checksum. `None` means no intact frame starts there — a torn tail,
/// flipped bits, or end of file all look the same — and scans stop and
/// truncate to `pos`. Shared by the per-session store scanner below
/// and the group-commit log scanner in [`crate::group`].
pub(crate) fn next_frame(bytes: &[u8], pos: usize) -> Option<RawFrame> {
    // Header: 4-byte length + 1-byte tag.
    if bytes.len().saturating_sub(pos) < 5 {
        return None;
    }
    let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().expect("4 bytes"));
    if len > MAX_PAYLOAD {
        return None;
    }
    let len = len as usize;
    let tag = bytes[pos + 4];
    let body = pos + 5;
    // Payload + 8-byte checksum must fit.
    if bytes.len() - body < len + 8 {
        return None;
    }
    let payload = body..body + len;
    let stored = u64::from_le_bytes(
        bytes[payload.end..payload.end + 8]
            .try_into()
            .expect("8 bytes"),
    );
    if stored != frame_checksum(tag, &bytes[payload.clone()]) {
        return None;
    }
    Some(RawFrame {
        tag,
        end: payload.end + 8,
        payload,
    })
}

/// Scans a full store image. Fails only when the file is not a store
/// at all (missing/short/incorrect magic); frame-level damage is
/// handled by stopping early.
pub(crate) fn scan(bytes: &[u8]) -> Result<ScanOutcome, StoreError> {
    if bytes.len() < MAGIC.len() || &bytes[..MAGIC.len()] != MAGIC {
        return Err(StoreError::NotAStore(
            "missing TICCSTOR1 header (is this a ticc store file?)".to_owned(),
        ));
    }
    let mut recovered = Recovered::default();
    let mut pos = MAGIC.len();
    while let Some(frame) = next_frame(bytes, pos) {
        let payload = &bytes[frame.payload.clone()];
        match frame.tag {
            TAG_TX => recovered.suffix.push(payload.to_vec()),
            TAG_SNAPSHOT => {
                recovered.snapshot = Some(payload.to_vec());
                recovered.suffix.clear();
            }
            _ => {
                // Unknown tag: either a future format or garbage that
                // happened to checksum — stop here either way.
                break;
            }
        }
        recovered.frames += 1;
        pos = frame.end;
    }
    Ok(ScanOutcome {
        recovered,
        valid_end: pos,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encode::Enc;

    fn frame(tag: u8, payload: &[u8]) -> Vec<u8> {
        let mut f = Vec::new();
        f.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        f.push(tag);
        f.extend_from_slice(payload);
        f.extend_from_slice(&frame_checksum(tag, payload).to_le_bytes());
        f
    }

    fn image(frames: &[(u8, Vec<u8>)]) -> Vec<u8> {
        let mut img = MAGIC.to_vec();
        for (tag, p) in frames {
            img.extend_from_slice(&frame(*tag, p));
        }
        img
    }

    #[test]
    fn empty_store_scans_clean() {
        let out = scan(MAGIC).unwrap();
        assert_eq!(out.valid_end, MAGIC.len());
        assert_eq!(out.recovered.frames, 0);
        assert!(out.recovered.snapshot.is_none());
    }

    #[test]
    fn bad_magic_is_not_a_store() {
        assert!(scan(b"GARBAGE??").is_err());
        assert!(scan(b"TICC").is_err());
        assert!(scan(&[]).is_err());
    }

    #[test]
    fn newest_snapshot_wins_and_suffix_follows_it() {
        let img = image(&[
            (TAG_TX, vec![1]),
            (TAG_SNAPSHOT, vec![10]),
            (TAG_TX, vec![2]),
            (TAG_SNAPSHOT, vec![20]),
            (TAG_TX, vec![3]),
            (TAG_TX, vec![4]),
        ]);
        let out = scan(&img).unwrap();
        assert_eq!(out.valid_end, img.len());
        assert_eq!(out.recovered.frames, 6);
        assert_eq!(out.recovered.snapshot.as_deref(), Some(&[20u8][..]));
        assert_eq!(out.recovered.suffix, vec![vec![3], vec![4]]);
    }

    #[test]
    fn torn_tail_truncates_to_frame_boundary() {
        let full = image(&[(TAG_SNAPSHOT, vec![7; 30]), (TAG_TX, vec![1, 2, 3])]);
        let boundary = MAGIC.len() + 4 + 1 + 30 + 8;
        // Every truncation point inside the second frame recovers
        // exactly the first.
        for cut in boundary..full.len() {
            let out = scan(&full[..cut]).unwrap();
            assert_eq!(out.valid_end, boundary, "cut at {cut}");
            assert_eq!(out.recovered.frames, 1);
            assert!(out.recovered.suffix.is_empty());
        }
    }

    #[test]
    fn corrupt_frame_stops_the_scan_there() {
        let img = image(&[(TAG_TX, vec![1]), (TAG_TX, vec![2]), (TAG_TX, vec![3])]);
        let frame_len = 4 + 1 + 1 + 8;
        // Flip one byte in the middle frame: only the first survives,
        // regardless of which byte is hit.
        for offset in 0..frame_len {
            let mut broken = img.clone();
            broken[MAGIC.len() + frame_len + offset] ^= 0xff;
            let out = scan(&broken).unwrap();
            assert!(
                out.recovered.frames <= 1,
                "byte {offset}: corrupt frame accepted"
            );
            assert_eq!(out.valid_end, MAGIC.len() + frame_len, "byte {offset}");
        }
    }

    #[test]
    fn absurd_length_field_is_a_stop_not_an_allocation() {
        let mut img = MAGIC.to_vec();
        img.extend_from_slice(&u32::MAX.to_le_bytes());
        img.push(TAG_TX);
        img.extend_from_slice(&[0; 64]);
        let out = scan(&img).unwrap();
        assert_eq!(out.valid_end, MAGIC.len());
        assert_eq!(out.recovered.frames, 0);
    }

    #[test]
    fn corrupt_latest_snapshot_falls_back_to_the_previous_one() {
        let mut img = image(&[
            (TAG_SNAPSHOT, vec![10; 16]),
            (TAG_TX, vec![2]),
            (TAG_SNAPSHOT, vec![20; 16]),
        ]);
        // Corrupt the last frame (the newest snapshot).
        let last = img.len() - 1;
        img[last] ^= 0xff;
        let out = scan(&img).unwrap();
        assert_eq!(out.recovered.snapshot.as_deref(), Some(&[10u8; 16][..]));
        assert_eq!(out.recovered.suffix, vec![vec![2]]);
    }

    #[test]
    fn encoded_garbage_after_valid_prefix_is_ignored() {
        let mut img = image(&[(TAG_SNAPSHOT, vec![1, 2, 3])]);
        let valid = img.len();
        let mut e = Enc::new();
        e.str("not a frame");
        img.extend_from_slice(&e.into_bytes());
        let out = scan(&img).unwrap();
        assert_eq!(out.valid_end, valid);
        assert_eq!(out.recovered.frames, 1);
    }
}
