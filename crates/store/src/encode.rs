//! Primitive binary encoding: LEB128 varints, length-prefixed byte
//! strings, and a bounds-checked decoder.
//!
//! Every multi-byte structure in the store — transactions, schemas,
//! formulas, snapshots — bottoms out in these three shapes:
//!
//! - `u64` as an unsigned LEB128 varint (≤ 10 bytes, canonical:
//!   decoding rejects over-long encodings so every value has exactly
//!   one byte representation — a prerequisite for checksum stability),
//! - byte strings as `varint length ++ bytes`,
//! - UTF-8 strings as byte strings validated on decode.
//!
//! The decoder never panics on malformed input: every read is
//! bounds-checked and returns [`StoreError::Corrupt`] on failure, which
//! is what lets the recovery scanner treat arbitrary garbage bytes as
//! "torn tail" rather than a crash.

use std::fmt;

/// Errors from the durability layer.
#[derive(Debug)]
#[non_exhaustive]
pub enum StoreError {
    /// The bytes do not decode as the structure they claim to be.
    Corrupt(String),
    /// The file exists but is not a ticc store (bad magic/version).
    NotAStore(String),
    /// A snapshot was written by an incompatible codec version.
    Version { found: u32, expected: u32 },
    /// An underlying filesystem operation failed.
    Io(std::io::Error),
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Corrupt(what) => write!(f, "corrupt store data: {what}"),
            StoreError::NotAStore(what) => write!(f, "not a ticc store: {what}"),
            StoreError::Version { found, expected } => {
                write!(
                    f,
                    "snapshot codec version {found} (this build reads {expected})"
                )
            }
            StoreError::Io(e) => write!(f, "store I/O error: {e}"),
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> Self {
        StoreError::Io(e)
    }
}

/// An append-only byte sink with varint primitives.
#[derive(Debug, Default)]
pub struct Enc {
    buf: Vec<u8>,
}

impl Enc {
    /// A fresh empty encoder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Consumes the encoder, yielding the bytes written so far.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True if nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// One raw byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Unsigned LEB128.
    pub fn u64(&mut self, mut v: u64) {
        loop {
            let byte = (v & 0x7f) as u8;
            v >>= 7;
            if v == 0 {
                self.buf.push(byte);
                return;
            }
            self.buf.push(byte | 0x80);
        }
    }

    /// `usize` via [`Enc::u64`].
    pub fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }

    /// `u32` via [`Enc::u64`].
    pub fn u32(&mut self, v: u32) {
        self.u64(u64::from(v));
    }

    /// A `u64` as 8 little-endian bytes — for dense bit patterns
    /// (bitset words, checksums) where LEB128 would inflate the size.
    pub fn u64_fixed(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Raw bytes with a varint length prefix.
    pub fn bytes(&mut self, b: &[u8]) {
        self.usize(b.len());
        self.buf.extend_from_slice(b);
    }

    /// A UTF-8 string as a length-prefixed byte string.
    pub fn str(&mut self, s: &str) {
        self.bytes(s.as_bytes());
    }

    /// A bool as one byte (0/1).
    pub fn bool(&mut self, v: bool) {
        self.u8(u8::from(v));
    }
}

/// A bounds-checked cursor over encoded bytes.
#[derive(Debug)]
pub struct Dec<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    /// A decoder over `buf` starting at offset 0.
    pub fn new(buf: &'a [u8]) -> Self {
        Dec { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// True when every byte has been consumed.
    pub fn is_done(&self) -> bool {
        self.remaining() == 0
    }

    /// Fails unless the input was consumed exactly.
    pub fn finish(&self) -> Result<(), StoreError> {
        if self.is_done() {
            Ok(())
        } else {
            Err(StoreError::Corrupt(format!(
                "{} trailing byte(s) after a complete structure",
                self.remaining()
            )))
        }
    }

    fn corrupt(what: &str) -> StoreError {
        StoreError::Corrupt(what.to_owned())
    }

    /// One raw byte.
    pub fn u8(&mut self) -> Result<u8, StoreError> {
        let b = *self
            .buf
            .get(self.pos)
            .ok_or_else(|| Self::corrupt("unexpected end of input"))?;
        self.pos += 1;
        Ok(b)
    }

    /// Unsigned LEB128; rejects over-long and overflowing encodings.
    pub fn u64(&mut self) -> Result<u64, StoreError> {
        let mut v: u64 = 0;
        let mut shift = 0u32;
        loop {
            let byte = self.u8()?;
            if shift == 63 && byte > 1 {
                return Err(Self::corrupt("varint overflows u64"));
            }
            v |= u64::from(byte & 0x7f) << shift;
            if byte & 0x80 == 0 {
                if byte == 0 && shift > 0 {
                    return Err(Self::corrupt("non-canonical varint"));
                }
                return Ok(v);
            }
            shift += 7;
            if shift > 63 {
                return Err(Self::corrupt("varint longer than 10 bytes"));
            }
        }
    }

    /// A `u64` stored as 8 little-endian bytes (see [`Enc::u64_fixed`]).
    pub fn u64_fixed(&mut self) -> Result<u64, StoreError> {
        let end = self
            .pos
            .checked_add(8)
            .filter(|&e| e <= self.buf.len())
            .ok_or_else(|| Self::corrupt("unexpected end of input"))?;
        let v = u64::from_le_bytes(self.buf[self.pos..end].try_into().expect("8 bytes"));
        self.pos = end;
        Ok(v)
    }

    /// `usize` via [`Dec::u64`], rejecting values beyond the platform.
    pub fn usize(&mut self) -> Result<usize, StoreError> {
        usize::try_from(self.u64()?).map_err(|_| Self::corrupt("length exceeds usize"))
    }

    /// `u32` via [`Dec::u64`], range-checked.
    pub fn u32(&mut self) -> Result<u32, StoreError> {
        u32::try_from(self.u64()?).map_err(|_| Self::corrupt("value exceeds u32"))
    }

    /// A length-prefixed byte string, borrowed from the input.
    pub fn bytes(&mut self) -> Result<&'a [u8], StoreError> {
        let len = self.usize()?;
        if len > self.remaining() {
            return Err(Self::corrupt("byte string length exceeds input"));
        }
        let out = &self.buf[self.pos..self.pos + len];
        self.pos += len;
        Ok(out)
    }

    /// A length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Result<&'a str, StoreError> {
        std::str::from_utf8(self.bytes()?).map_err(|_| Self::corrupt("invalid UTF-8"))
    }

    /// A one-byte bool; rejects values other than 0/1.
    pub fn bool(&mut self) -> Result<bool, StoreError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(Self::corrupt("bool byte not 0/1")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn varint_round_trip_edges() {
        let cases = [
            0u64,
            1,
            127,
            128,
            300,
            u64::from(u32::MAX),
            u64::MAX - 1,
            u64::MAX,
        ];
        for &v in &cases {
            let mut e = Enc::new();
            e.u64(v);
            let bytes = e.into_bytes();
            let mut d = Dec::new(&bytes);
            assert_eq!(d.u64().unwrap(), v);
            d.finish().unwrap();
        }
    }

    #[test]
    fn varint_rejects_non_canonical() {
        // 0x80 0x00 is "0" with a redundant continuation byte.
        let mut d = Dec::new(&[0x80, 0x00]);
        assert!(d.u64().is_err());
        // Eleven continuation bytes can never terminate within u64.
        let mut d = Dec::new(&[0xff; 11]);
        assert!(d.u64().is_err());
        // 2^64 overflows.
        let mut d = Dec::new(&[0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x02]);
        assert!(d.u64().is_err());
    }

    #[test]
    fn strings_and_bytes() {
        let mut e = Enc::new();
        e.str("héllo");
        e.bytes(&[1, 2, 3]);
        e.bool(true);
        e.bool(false);
        let b = e.into_bytes();
        let mut d = Dec::new(&b);
        assert_eq!(d.str().unwrap(), "héllo");
        assert_eq!(d.bytes().unwrap(), &[1, 2, 3]);
        assert!(d.bool().unwrap());
        assert!(!d.bool().unwrap());
        d.finish().unwrap();
    }

    #[test]
    fn truncated_input_errors_cleanly() {
        let mut e = Enc::new();
        e.str("abcdef");
        let b = e.into_bytes();
        for cut in 0..b.len() {
            let mut d = Dec::new(&b[..cut]);
            assert!(d.str().is_err(), "cut at {cut} must fail");
        }
    }

    #[test]
    fn length_larger_than_input_is_corrupt() {
        let mut e = Enc::new();
        e.usize(1_000_000);
        let b = e.into_bytes();
        let mut d = Dec::new(&b);
        assert!(d.bytes().is_err());
    }
}
