//! `ticc-store` — durability for the temporal integrity checker.
//!
//! The paper's Theorem 4.1 makes checking *history-less*: after each
//! transaction the monitor needs only the current state plus bounded
//! auxiliary information (per-constraint residues over the relevant
//! domain `R_D`). This crate turns that bound into an operational
//! restart-cost guarantee. A store file is an append-only write-ahead
//! log of transactions interleaved with periodic **engine snapshots**
//! of exactly that auxiliary state; reopening after a crash costs
//! `O(|snapshot| + |suffix|)` — decode the newest snapshot, replay
//! only the transactions logged after it — instead of re-checking all
//! `t` states from scratch.
//!
//! The crate is deliberately low in the dependency stack (tdb + the
//! logics, no engine): it defines the *file format* and the
//! vocabulary codecs, while `ticc-core` owns what goes inside a
//! snapshot. Layers:
//!
//! - [`encode`] — LEB128 varints, length-prefixed strings, and a
//!   bounds-checked decoder ([`Enc`]/[`Dec`]); every decode failure is
//!   a [`StoreError::Corrupt`], never a panic.
//! - [`codec`] — canonical codecs for [`Schema`](ticc_tdb::Schema),
//!   [`Transaction`](ticc_tdb::Transaction) (binary and the shell's
//!   `Pred(v, …)` text grammar), and FOTL formulas.
//! - [`wal`] — the framed log file ([`Store`]): 9-byte `TICCSTOR1`
//!   header, then `[len][tag][payload][splitmix64 checksum]` frames,
//!   with per-append fsync policy and atomic [`Store::compact`].
//! - [`recovery`] — the scanner ([`Recovered`]): walks frames,
//!   truncates torn/corrupt tails to the last intact frame, surfaces
//!   the newest snapshot and the transaction suffix to replay.
//! - [`group`] — the multi-session group-commit log ([`GroupWal`]):
//!   one shared `TICCGRP01` file multiplexing session-tagged frames,
//!   one fsync per commit window regardless of how many sessions'
//!   appends it covers.
//! - [`segment`] — the cold-state spill segment ([`SegmentFile`]):
//!   an append-only `TICCSEG1` page file the engine evicts cold
//!   history states into under a bounded `HistoryBudget`. Checksummed
//!   like the WAL but never fsynced — it is a memory-relief tier, not
//!   a durability one.

pub mod codec;
pub mod encode;
pub mod group;
pub mod recovery;
pub mod segment;
pub mod wal;

pub use encode::{Dec, Enc, StoreError};
pub use group::{GroupRecovered, GroupStats, GroupWal, RecoveredSession, GROUP_MAGIC};
pub use recovery::Recovered;
pub use segment::{page_checksum, SegmentFile, SEG_MAGIC};
pub use wal::{frame_checksum, Store, StoreStats, MAGIC, TAG_SNAPSHOT, TAG_TX};

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use ticc_tdb::{Schema, Transaction};

    fn schema() -> Arc<Schema> {
        Schema::builder().pred("P", 1).build()
    }

    fn tmp(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("ticc-store-{}-{}", std::process::id(), name));
        p
    }

    #[test]
    fn create_append_reopen_round_trip() {
        let sc = schema();
        let p = sc.pred("P").unwrap();
        let path = tmp("roundtrip.wal");
        let _ = std::fs::remove_file(&path);

        let mut store = Store::create(&path).unwrap();
        store.append_snapshot(b"snap-0").unwrap();
        let tx1 = Transaction::new().insert(p, vec![1]);
        let tx2 = Transaction::new().delete(p, vec![1]).insert(p, vec![2]);
        store.append_tx(&tx1, false).unwrap();
        store.append_tx(&tx2, true).unwrap();
        assert_eq!(store.stats().tx_frames, 2);
        assert_eq!(store.stats().snapshot_frames, 1);
        assert!(store.stats().fsyncs >= 2, "snapshot + fsynced tx");
        drop(store);

        let (store, rec) = Store::open(&path).unwrap();
        assert_eq!(rec.snapshot.as_deref(), Some(&b"snap-0"[..]));
        assert_eq!(rec.suffix.len(), 2);
        assert_eq!(rec.truncated_bytes, 0);
        assert_eq!(codec::tx_from_bytes(&rec.suffix[0], &sc).unwrap(), tx1);
        assert_eq!(codec::tx_from_bytes(&rec.suffix[1], &sc).unwrap(), tx2);
        drop(store);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn torn_tail_is_truncated_and_appends_continue() {
        let sc = schema();
        let p = sc.pred("P").unwrap();
        let path = tmp("torn.wal");
        let _ = std::fs::remove_file(&path);

        let mut store = Store::create(&path).unwrap();
        store.append_snapshot(b"snap").unwrap();
        store
            .append_tx(&Transaction::new().insert(p, vec![1]), true)
            .unwrap();
        drop(store);

        // Simulate a crash mid-append: half a frame of garbage.
        {
            use std::io::Write;
            let mut f = std::fs::OpenOptions::new()
                .append(true)
                .open(&path)
                .unwrap();
            f.write_all(&[0x55; 7]).unwrap();
        }

        let (mut store, rec) = Store::open(&path).unwrap();
        assert_eq!(rec.truncated_bytes, 7);
        assert_eq!(rec.suffix.len(), 1);
        // The log is writable again and the new frame is intact.
        store
            .append_tx(&Transaction::new().insert(p, vec![2]), true)
            .unwrap();
        drop(store);
        let (_, rec2) = Store::open(&path).unwrap();
        assert_eq!(rec2.suffix.len(), 2);
        assert_eq!(rec2.truncated_bytes, 0);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn compact_leaves_single_snapshot() {
        let sc = schema();
        let p = sc.pred("P").unwrap();
        let path = tmp("compact.wal");
        let _ = std::fs::remove_file(&path);

        let mut store = Store::create(&path).unwrap();
        store.append_snapshot(b"old").unwrap();
        for i in 0..10 {
            store
                .append_tx(&Transaction::new().insert(p, vec![i]), false)
                .unwrap();
        }
        store.compact(b"fresh-snapshot").unwrap();
        // Appends after compaction land after the new snapshot.
        store
            .append_tx(&Transaction::new().insert(p, vec![99]), true)
            .unwrap();
        drop(store);

        let (_, rec) = Store::open(&path).unwrap();
        assert_eq!(rec.snapshot.as_deref(), Some(&b"fresh-snapshot"[..]));
        assert_eq!(rec.suffix.len(), 1);
        assert_eq!(rec.frames, 2);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn open_missing_file_is_io_error() {
        let path = tmp("never-created.wal");
        let _ = std::fs::remove_file(&path);
        assert!(matches!(Store::open(&path), Err(StoreError::Io(_))));
    }

    #[test]
    fn open_non_store_file_is_friendly() {
        let path = tmp("not-a-store.wal");
        std::fs::write(&path, b"hello world, definitely not a WAL").unwrap();
        match Store::open(&path) {
            Err(StoreError::NotAStore(msg)) => assert!(msg.contains("TICCSTOR1")),
            other => panic!("expected NotAStore, got {other:?}"),
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn zero_length_file_is_a_fresh_store() {
        let path = tmp("empty.wal");
        std::fs::write(&path, b"").unwrap();
        let (_, rec) = Store::open(&path).unwrap();
        assert_eq!(rec.frames, 0);
        assert!(rec.snapshot.is_none());
        let _ = std::fs::remove_file(&path);
    }
}
