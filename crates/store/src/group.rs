//! Group-commit write-ahead log: one shared file, many sessions, one
//! fsync per commit window.
//!
//! `fsync` is per-*file*, so amortizing it across sessions requires
//! the sessions to share a file. A [`GroupWal`] is a single
//! append-only log multiplexing frames from any number of sessions,
//! each identified by a small integer id registered up front:
//!
//! ```text
//! TICCGRP01                                   9-byte magic + format version
//! [u32 len][16][LEB id, name][u64 checksum]   session registration
//! [u32 len][17][LEB id, tx bytes][u64 cksum]  one session transaction
//! [u32 len][18][LEB id, snapshot][u64 cksum]  one session snapshot
//! ```
//!
//! Frames reuse the per-session store's `[len][tag][payload][checksum]`
//! shape (and [`crate::frame_checksum`]), with a distinct magic so a group log
//! can never be mistaken for — or truncated as — a single-session
//! store, and session-scoped tags whose payloads carry the session id
//! as a canonical LEB128 prefix. Transaction payloads are the same
//! canonical [`crate::codec::tx_to_bytes`] encoding the per-session
//! WAL logs.
//!
//! ## Commit windows
//!
//! Writers never hold the file while they wait. An append encodes its
//! frame, takes the *queue* lock just long enough to push the bytes
//! onto a pending buffer (acquiring a sequence number), then — if it
//! needs durability — takes the *io* lock. Whoever wins the io lock is
//! the window's **leader**: it swaps out the entire pending buffer
//! (its own frame plus every frame enqueued behind it), issues one
//! `write_all` and one `sync_data`, and publishes the durable sequence
//! number. Every append that lost the io race finds, on acquiring the
//! lock in turn, that the leader already made its frame durable and
//! returns immediately. Under load the window grows to whatever
//! enqueued during the previous fsync — the classic group commit — so
//! the fsync count scales with windows, not appends.
//!
//! The queue assigns sequence numbers under one lock in enqueue order,
//! and batches are written in io-lock acquisition order, each batch a
//! strict prefix-extension of the file: frames hit disk in exactly the
//! order their sequence numbers were assigned. An acknowledged
//! (synced) append is therefore covered by some `sync_data` that also
//! covered every frame ordered before it — a crash can only tear
//! frames *after* the last acknowledged window, which recovery
//! truncates like any torn tail.
//!
//! Non-durable appends (`Durability::Wal`-style) enqueue and
//! drain through the same path without requesting the fsync, so the
//! bytes still reach the kernel promptly and survive process crashes.

use std::collections::HashMap;
use std::fs::OpenOptions;
use std::io::{Read, Seek, Write};
use std::path::{Path, PathBuf};
use std::sync::Mutex;

use crate::encode::{Dec, Enc, StoreError};
use crate::recovery::next_frame;
use crate::wal::encode_frame_into;
use ticc_tdb::Transaction;

/// Magic + format version: the first 9 bytes of every group log.
pub const GROUP_MAGIC: &[u8; 9] = b"TICCGRP01";

/// Frame tag: payload is `LEB id ++ str name`, registering a session.
pub const TAG_SESSION_OPEN: u8 = 16;
/// Frame tag: payload is `LEB id ++ bytes(tx)`, one session transaction.
pub const TAG_SESSION_TX: u8 = 17;
/// Frame tag: payload is `LEB id ++ bytes(snapshot)`, one session snapshot.
pub const TAG_SESSION_SNAPSHOT: u8 = 18;

/// Counters for the group-commit layer, surfaced by the server's
/// `stats` frame.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GroupStats {
    /// Frames enqueued this process (registrations included).
    pub frames: u64,
    /// Commit windows: batches published by a `sync_data`.
    pub windows: u64,
    /// `fsync` calls issued (== `windows` plus explicit flushes).
    pub fsyncs: u64,
    /// Frames that shared a window with at least one other frame —
    /// the group-commit win; `frames - batched_frames` paid a
    /// dedicated write.
    pub batched_frames: u64,
    /// Largest number of frames a single window committed.
    pub max_batch: u64,
    /// Frame bytes written this process (header excluded).
    pub bytes_written: u64,
    /// Sessions found by the last recovery.
    pub recovered_sessions: u64,
    /// Bytes of torn/corrupt tail discarded by the last recovery.
    pub truncated_bytes: u64,
}

/// One session's recovered contents: the newest intact snapshot (if
/// any) and the raw transaction payloads logged after it.
#[derive(Debug)]
pub struct RecoveredSession {
    /// The session's id in this log.
    pub id: u32,
    /// The name the session was registered under.
    pub name: String,
    /// Newest intact snapshot payload, if one was logged.
    pub snapshot: Option<Vec<u8>>,
    /// Raw transaction payloads after that snapshot (oldest first);
    /// decode with [`crate::codec::tx_from_bytes`].
    pub suffix: Vec<Vec<u8>>,
}

/// What recovery found in the valid prefix of a group log.
#[derive(Debug, Default)]
pub struct GroupRecovered {
    /// Recovered sessions, ordered by id.
    pub sessions: Vec<RecoveredSession>,
    /// Intact frames in the valid prefix.
    pub frames: u64,
    /// Bytes of torn/corrupt tail the open discarded.
    pub truncated_bytes: u64,
}

/// Queue side: pending frames and the sequence bookkeeping. Held only
/// for memcpy-scale critical sections, never across io.
#[derive(Debug)]
struct Queue {
    /// Encoded frames not yet handed to a writer.
    pending: Vec<u8>,
    /// Frames inside `pending`.
    pending_frames: u64,
    /// Sequence number of the newest enqueued frame.
    next_seq: u64,
    /// Highest sequence covered by a `sync_data`.
    durable_seq: u64,
    /// Highest sequence handed to `write_all` (durable or not).
    written_seq: u64,
    /// Registered session names. The queue lock is the registration
    /// authority: ids are unique and stable for the life of the file.
    names: HashMap<String, u32>,
    next_session: u32,
    stats: GroupStats,
    /// Set on the first io error; the log refuses further appends
    /// (its tail state is unknown) and reports this message.
    failed: Option<String>,
}

/// Io side: the file. Held across `write_all`/`sync_data`; acquiring
/// it is the leader election.
#[derive(Debug)]
struct Io {
    file: std::fs::File,
}

/// A shared multi-session group-commit log. All methods take `&self`;
/// the type is `Sync` and meant to live in an `Arc` shared by every
/// session bound to it.
#[derive(Debug)]
pub struct GroupWal {
    path: PathBuf,
    queue: Mutex<Queue>,
    io: Mutex<Io>,
}

impl GroupWal {
    /// Creates a fresh group log at `path` (truncating any existing
    /// file) and writes the header.
    pub fn create(path: impl AsRef<Path>) -> Result<GroupWal, StoreError> {
        let path = path.as_ref().to_path_buf();
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(&path)?;
        file.write_all(GROUP_MAGIC)?;
        file.sync_data()?;
        Ok(GroupWal::from_parts(
            path,
            file,
            GroupStats::default(),
            HashMap::new(),
            0,
        ))
    }

    /// Opens an existing group log: scans every frame, truncates any
    /// torn/corrupt tail, and returns the log (positioned at the end
    /// of the valid prefix) plus each session's snapshot + suffix.
    pub fn open(path: impl AsRef<Path>) -> Result<(GroupWal, GroupRecovered), StoreError> {
        let path = path.as_ref().to_path_buf();
        let mut file = OpenOptions::new().read(true).write(true).open(&path)?;
        let mut bytes = Vec::new();
        file.read_to_end(&mut bytes)?;
        if bytes.is_empty() {
            // A crash can land between create(2) and the header write.
            file.write_all(GROUP_MAGIC)?;
            file.sync_data()?;
            let wal = GroupWal::from_parts(path, file, GroupStats::default(), HashMap::new(), 0);
            return Ok((wal, GroupRecovered::default()));
        }
        let (recovered, valid_end) = scan_group(&bytes)?;
        let truncated = (bytes.len() - valid_end) as u64;
        if truncated > 0 {
            file.set_len(valid_end as u64)?;
            file.sync_data()?;
        }
        file.seek(std::io::SeekFrom::Start(valid_end as u64))?;
        let mut recovered = recovered;
        recovered.truncated_bytes = truncated;
        let stats = GroupStats {
            recovered_sessions: recovered.sessions.len() as u64,
            truncated_bytes: truncated,
            ..GroupStats::default()
        };
        let names: HashMap<String, u32> = recovered
            .sessions
            .iter()
            .map(|s| (s.name.clone(), s.id))
            .collect();
        let next_session = recovered
            .sessions
            .iter()
            .map(|s| s.id + 1)
            .max()
            .unwrap_or(0);
        Ok((
            GroupWal::from_parts(path, file, stats, names, next_session),
            recovered,
        ))
    }

    /// Opens `path` if it exists, creates it otherwise.
    pub fn open_or_create(
        path: impl AsRef<Path>,
    ) -> Result<(GroupWal, GroupRecovered), StoreError> {
        if path.as_ref().exists() {
            GroupWal::open(path)
        } else {
            Ok((GroupWal::create(path)?, GroupRecovered::default()))
        }
    }

    fn from_parts(
        path: PathBuf,
        file: std::fs::File,
        stats: GroupStats,
        names: HashMap<String, u32>,
        next_session: u32,
    ) -> GroupWal {
        GroupWal {
            path,
            queue: Mutex::new(Queue {
                pending: Vec::new(),
                pending_frames: 0,
                next_seq: 0,
                durable_seq: 0,
                written_seq: 0,
                names,
                next_session,
                stats,
                failed: None,
            }),
            io: Mutex::new(Io { file }),
        }
    }

    /// The file this log appends to.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Group-commit counters since this log was opened.
    pub fn stats(&self) -> GroupStats {
        self.queue.lock().expect("group queue lock").stats
    }

    /// Bytes currently enqueued but not yet handed to a writer — the
    /// admission-control gauge: a server sheds load when this grows
    /// past its cap instead of queueing without bound.
    pub fn pending_bytes(&self) -> usize {
        self.queue.lock().expect("group queue lock").pending.len()
    }

    /// Sessions registered in this log (recovered ones included).
    pub fn session_count(&self) -> usize {
        self.queue.lock().expect("group queue lock").names.len()
    }

    /// Registers `name`, returning its stable session id — the
    /// existing id if the name is already known (from this process or
    /// recovery), a fresh one (logged as a registration frame)
    /// otherwise. The frame is written promptly but made durable by
    /// the session's first synced append.
    pub fn register(&self, name: &str) -> Result<u32, StoreError> {
        {
            let mut q = self.queue.lock().expect("group queue lock");
            if let Some(msg) = &q.failed {
                return Err(StoreError::Io(std::io::Error::other(msg.clone())));
            }
            if let Some(&id) = q.names.get(name) {
                return Ok(id);
            }
            let id = q.next_session;
            q.next_session += 1;
            q.names.insert(name.to_owned(), id);
            let mut e = Enc::new();
            e.u32(id);
            e.str(name);
            let payload = e.into_bytes();
            let mut frame = Vec::new();
            encode_frame_into(&mut frame, TAG_SESSION_OPEN, &payload)?;
            q.pending.extend_from_slice(&frame);
            q.pending_frames += 1;
            q.next_seq += 1;
            q.stats.frames += 1;
        }
        self.drain(None)?;
        let q = self.queue.lock().expect("group queue lock");
        Ok(q.names[name])
    }

    /// Appends one transaction frame for session `id`. With `sync`,
    /// the frame — and every frame enqueued before it — is durable
    /// before this returns; the fsync is shared with whatever else the
    /// commit window picked up.
    pub fn append_tx(&self, id: u32, tx: &Transaction, sync: bool) -> Result<(), StoreError> {
        let mut e = Enc::new();
        e.u32(id);
        e.bytes(&crate::codec::tx_to_bytes(tx));
        self.append(TAG_SESSION_TX, &e.into_bytes(), sync)
    }

    /// Appends one snapshot frame for session `id` (always synced: a
    /// snapshot exists to be found after a crash).
    pub fn append_snapshot(&self, id: u32, snapshot: &[u8]) -> Result<(), StoreError> {
        let mut e = Enc::new();
        e.u32(id);
        e.bytes(snapshot);
        self.append(TAG_SESSION_SNAPSHOT, &e.into_bytes(), true)
    }

    /// Forces everything enqueued so far onto disk.
    pub fn flush(&self) -> Result<(), StoreError> {
        let target = {
            let q = self.queue.lock().expect("group queue lock");
            if let Some(msg) = &q.failed {
                return Err(StoreError::Io(std::io::Error::other(msg.clone())));
            }
            if q.durable_seq >= q.next_seq {
                return Ok(());
            }
            q.next_seq
        };
        self.drain(Some(target))
    }

    fn append(&self, tag: u8, payload: &[u8], sync: bool) -> Result<(), StoreError> {
        let mut frame = Vec::new();
        encode_frame_into(&mut frame, tag, payload)?;
        let my_seq;
        {
            let mut q = self.queue.lock().expect("group queue lock");
            if let Some(msg) = &q.failed {
                return Err(StoreError::Io(std::io::Error::other(msg.clone())));
            }
            q.pending.extend_from_slice(&frame);
            q.pending_frames += 1;
            q.next_seq += 1;
            my_seq = q.next_seq;
            q.stats.frames += 1;
        }
        self.drain(if sync { Some(my_seq) } else { None })
    }

    /// The write path. `need_durable: Some(seq)` blocks until `seq` is
    /// covered by a `sync_data` (becoming the window leader if nobody
    /// beat us to it); `None` drains pending bytes to the kernel
    /// without syncing.
    fn drain(&self, need_durable: Option<u64>) -> Result<(), StoreError> {
        let mut io = self.io.lock().expect("group io lock");
        let (batch, batch_frames, end_seq, fsync) = {
            let mut q = self.queue.lock().expect("group queue lock");
            if let Some(msg) = &q.failed {
                return Err(StoreError::Io(std::io::Error::other(msg.clone())));
            }
            match need_durable {
                // The previous leader's window covered us.
                Some(seq) if q.durable_seq >= seq => return Ok(()),
                None if q.pending.is_empty() => return Ok(()),
                _ => {}
            }
            let batch = std::mem::take(&mut q.pending);
            let batch_frames = std::mem::replace(&mut q.pending_frames, 0);
            (batch, batch_frames, q.next_seq, need_durable.is_some())
        };
        // Io happens outside the queue lock: appenders keep enqueueing
        // into the next window while this one writes.
        let res = (|| -> Result<(), StoreError> {
            if !batch.is_empty() {
                io.file.write_all(&batch)?;
            }
            if fsync {
                io.file.sync_data()?;
            }
            Ok(())
        })();
        let mut q = self.queue.lock().expect("group queue lock");
        match res {
            Ok(()) => {
                q.written_seq = q.written_seq.max(end_seq);
                q.stats.bytes_written += batch.len() as u64;
                if fsync {
                    q.durable_seq = q.durable_seq.max(q.written_seq);
                    q.stats.fsyncs += 1;
                    q.stats.windows += 1;
                    if batch_frames > 1 {
                        q.stats.batched_frames += batch_frames;
                    }
                    q.stats.max_batch = q.stats.max_batch.max(batch_frames);
                }
                Ok(())
            }
            Err(e) => {
                // The file's tail state is unknown; poison the log so
                // every session sees the failure rather than silently
                // diverging from disk.
                q.failed = Some(e.to_string());
                Err(e)
            }
        }
    }
}

/// Scans a group-log image: per-session newest snapshot + suffix, and
/// where the valid prefix ends.
fn scan_group(bytes: &[u8]) -> Result<(GroupRecovered, usize), StoreError> {
    if bytes.len() < GROUP_MAGIC.len() || &bytes[..GROUP_MAGIC.len()] != GROUP_MAGIC {
        return Err(StoreError::NotAStore(
            "missing TICCGRP01 header (is this a ticc group log?)".to_owned(),
        ));
    }
    let mut by_id: HashMap<u32, RecoveredSession> = HashMap::new();
    let mut frames = 0u64;
    let mut pos = GROUP_MAGIC.len();
    while let Some(frame) = next_frame(bytes, pos) {
        let payload = &bytes[frame.payload.clone()];
        let mut d = Dec::new(payload);
        match frame.tag {
            TAG_SESSION_OPEN => {
                let id = d.u32()?;
                let name = d.str()?.to_owned();
                d.finish()?;
                by_id.entry(id).or_insert(RecoveredSession {
                    id,
                    name,
                    snapshot: None,
                    suffix: Vec::new(),
                });
            }
            TAG_SESSION_TX => {
                let id = d.u32()?;
                let tx = d.bytes()?.to_vec();
                d.finish()?;
                if let Some(s) = by_id.get_mut(&id) {
                    s.suffix.push(tx);
                }
            }
            TAG_SESSION_SNAPSHOT => {
                let id = d.u32()?;
                let snap = d.bytes()?.to_vec();
                d.finish()?;
                if let Some(s) = by_id.get_mut(&id) {
                    s.snapshot = Some(snap);
                    s.suffix.clear();
                }
            }
            _ => {
                // Unknown tag: a future format or garbage that
                // happened to checksum — stop here either way.
                break;
            }
        }
        frames += 1;
        pos = frame.end;
    }
    let mut sessions: Vec<RecoveredSession> = by_id.into_values().collect();
    sessions.sort_by_key(|s| s.id);
    Ok((
        GroupRecovered {
            sessions,
            frames,
            truncated_bytes: 0,
        },
        pos,
    ))
}

// Checksum sanity: group frames share the store checksum, so a
// cross-linked frame can never validate under the wrong magic scan —
// the magics differ at byte 0.
const _: () = {
    assert!(GROUP_MAGIC.len() == crate::wal::MAGIC.len());
    assert!(GROUP_MAGIC[4] != crate::wal::MAGIC[4]);
};

#[cfg(test)]
mod tests {
    use super::*;
    use ticc_tdb::{Schema, Transaction, Value};

    fn schema() -> std::sync::Arc<Schema> {
        Schema::builder().pred("P", 1).build()
    }

    fn tx(sc: &Schema, v: Value) -> Transaction {
        Transaction::new().insert(sc.pred("P").unwrap(), vec![v])
    }

    fn tmp(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("ticc-group-{name}-{}.wal", std::process::id()))
    }

    #[test]
    fn register_is_stable_and_recovers() {
        let path = tmp("register");
        let _ = std::fs::remove_file(&path);
        let sc = schema();
        {
            let wal = GroupWal::create(&path).unwrap();
            assert_eq!(wal.register("alice").unwrap(), 0);
            assert_eq!(wal.register("bob").unwrap(), 1);
            assert_eq!(wal.register("alice").unwrap(), 0);
            wal.append_tx(0, &tx(&sc, 1), true).unwrap();
        }
        let (wal, rec) = GroupWal::open(&path).unwrap();
        assert_eq!(rec.sessions.len(), 2);
        assert_eq!(rec.sessions[0].name, "alice");
        assert_eq!(rec.sessions[0].suffix.len(), 1);
        assert_eq!(rec.sessions[1].name, "bob");
        assert!(rec.sessions[1].suffix.is_empty());
        // Ids survive reopen; new names extend past them.
        assert_eq!(wal.register("bob").unwrap(), 1);
        assert_eq!(wal.register("carol").unwrap(), 2);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn snapshot_clears_the_session_suffix_only() {
        let path = tmp("snap");
        let _ = std::fs::remove_file(&path);
        let sc = schema();
        {
            let wal = GroupWal::create(&path).unwrap();
            let a = wal.register("a").unwrap();
            let b = wal.register("b").unwrap();
            wal.append_tx(a, &tx(&sc, 1), false).unwrap();
            wal.append_tx(b, &tx(&sc, 2), false).unwrap();
            wal.append_snapshot(a, b"A-SNAP").unwrap();
            wal.append_tx(a, &tx(&sc, 3), true).unwrap();
        }
        let (_, rec) = GroupWal::open(&path).unwrap();
        let a = &rec.sessions[0];
        assert_eq!(a.snapshot.as_deref(), Some(&b"A-SNAP"[..]));
        assert_eq!(a.suffix.len(), 1, "only the post-snapshot tx remains");
        let b = &rec.sessions[1];
        assert!(b.snapshot.is_none());
        assert_eq!(b.suffix.len(), 1, "b's suffix untouched by a's snapshot");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn store_and_group_files_reject_each_other() {
        let gpath = tmp("cross-g");
        let spath = tmp("cross-s");
        let _ = std::fs::remove_file(&gpath);
        let _ = std::fs::remove_file(&spath);
        GroupWal::create(&gpath).unwrap();
        crate::Store::create(&spath).unwrap();
        assert!(matches!(
            crate::Store::open(&gpath),
            Err(StoreError::NotAStore(_))
        ));
        assert!(matches!(
            GroupWal::open(&spath),
            Err(StoreError::NotAStore(_))
        ));
        let _ = std::fs::remove_file(&gpath);
        let _ = std::fs::remove_file(&spath);
    }

    #[test]
    fn concurrent_synced_appends_share_fsyncs() {
        let path = tmp("concurrent");
        let _ = std::fs::remove_file(&path);
        let sc = schema();
        let wal = std::sync::Arc::new(GroupWal::create(&path).unwrap());
        const THREADS: usize = 8;
        const EACH: u64 = 40;
        let ids: Vec<u32> = (0..THREADS)
            .map(|i| wal.register(&format!("s{i}")).unwrap())
            .collect();
        std::thread::scope(|scope| {
            for &id in &ids {
                let wal = std::sync::Arc::clone(&wal);
                let sc = std::sync::Arc::clone(&sc);
                scope.spawn(move || {
                    for v in 0..EACH {
                        wal.append_tx(id, &tx(&sc, v), true).unwrap();
                    }
                });
            }
        });
        let stats = wal.stats();
        let total = (THREADS as u64) * EACH;
        assert_eq!(stats.frames, total + THREADS as u64);
        // Group commit must have amortized at least some windows: a
        // synced append blocks in the kernel, so concurrent appenders
        // pile onto the next window.
        assert!(
            stats.fsyncs < total,
            "no batching: {} fsyncs for {total} synced appends",
            stats.fsyncs
        );
        assert!(stats.max_batch >= 2);
        drop(wal);
        let (_, rec) = GroupWal::open(&path).unwrap();
        assert_eq!(rec.sessions.len(), THREADS);
        for s in &rec.sessions {
            assert_eq!(s.suffix.len(), EACH as usize, "session {} lost txs", s.name);
        }
        let _ = std::fs::remove_file(&path);
    }
}
