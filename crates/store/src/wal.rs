//! The write-ahead log file: header, checksummed frames, fsync
//! policy, and compaction.
//!
//! ## On-disk layout
//!
//! ```text
//! TICCSTOR1                                  9-byte magic + format version
//! [u32 LE payload_len][u8 tag][payload][u64 LE checksum]   frame 0
//! [u32 LE payload_len][u8 tag][payload][u64 LE checksum]   frame 1
//! …
//! ```
//!
//! Two frame tags exist: [`TAG_TX`] (one encoded [`Transaction`]) and
//! [`TAG_SNAPSHOT`] (an opaque engine snapshot payload — the store
//! never interprets it). The checksum folds the length, tag, and
//! payload through splitmix64 ([`frame_checksum`]), so a torn write —
//! a crash mid-`write(2)` — or flipped bits anywhere in a frame are
//! detected on the next open, and recovery truncates the file back to
//! the longest prefix of intact frames. Appends go through a single
//! `write_all` per frame, which keeps the only possible failure mode
//! "tail garbage", exactly what the scanner handles.

use std::fs::{File, OpenOptions};
use std::io::{Read, Write};
use std::path::{Path, PathBuf};

use crate::encode::StoreError;
use crate::recovery::{scan, Recovered};
use ticc_tdb::rng::splitmix64;
use ticc_tdb::Transaction;

/// Magic + format version: the first 9 bytes of every store file.
pub const MAGIC: &[u8; 9] = b"TICCSTOR1";

/// Frame tag: payload is one binary-encoded [`Transaction`].
pub const TAG_TX: u8 = 1;
/// Frame tag: payload is an opaque engine snapshot.
pub const TAG_SNAPSHOT: u8 = 2;

/// Upper bound on a single frame payload (64 MiB). A length field
/// beyond this is treated as corruption by the scanner — it bounds
/// allocation on garbage input.
pub const MAX_PAYLOAD: u32 = 64 << 20;

/// Folds a frame's length, tag, and payload through splitmix64.
pub fn frame_checksum(tag: u8, payload: &[u8]) -> u64 {
    let mut acc: u64 = 0x5449_4343_5354_4f52; // "TICCSTOR"
    let mut mix = |word: u64| {
        acc ^= word;
        acc = splitmix64(&mut acc);
    };
    mix(payload.len() as u64);
    mix(u64::from(tag));
    let mut chunks = payload.chunks_exact(8);
    for c in &mut chunks {
        mix(u64::from_le_bytes(c.try_into().expect("chunk of 8")));
    }
    let rest = chunks.remainder();
    if !rest.is_empty() {
        let mut last = [0u8; 8];
        last[..rest.len()].copy_from_slice(rest);
        mix(u64::from_le_bytes(last));
    }
    acc
}

/// Counters for the durability layer, embedded in `EngineStats`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Transaction frames appended this process.
    pub tx_frames: u64,
    /// Snapshot frames appended this process (compaction included).
    pub snapshot_frames: u64,
    /// Frame bytes written this process (header excluded).
    pub bytes_written: u64,
    /// `fsync` calls issued.
    pub fsyncs: u64,
    /// Size of the most recent snapshot payload, in bytes.
    pub last_snapshot_bytes: u64,
    /// Transactions replayed from the log by the last recovery.
    pub recovered_txs: u64,
    /// Bytes of torn/corrupt tail discarded by the last recovery.
    pub truncated_bytes: u64,
    /// Bytes the log shrank by across all compactions (old file size
    /// minus compacted size, summed). After a history truncation this
    /// is the disk-side payoff the `compact` verb reports.
    pub reclaimed_bytes: u64,
}

impl StoreStats {
    /// Whether any durability activity has been observed (gates the
    /// `store:` section of the engine's stats rendering).
    pub fn any(&self) -> bool {
        self.tx_frames
            + self.snapshot_frames
            + self.bytes_written
            + self.fsyncs
            + self.last_snapshot_bytes
            + self.recovered_txs
            + self.truncated_bytes
            + self.reclaimed_bytes
            > 0
    }
}

/// Appends one encoded frame (`[len][tag][payload][checksum]`) to
/// `buf`. Shared by the per-session store and the group-commit log.
pub(crate) fn encode_frame_into(
    buf: &mut Vec<u8>,
    tag: u8,
    payload: &[u8],
) -> Result<(), StoreError> {
    let len = u32::try_from(payload.len())
        .ok()
        .filter(|&l| l <= MAX_PAYLOAD)
        .ok_or_else(|| {
            StoreError::Corrupt(format!(
                "frame payload of {} bytes too large",
                payload.len()
            ))
        })?;
    buf.reserve(4 + 1 + payload.len() + 8);
    buf.extend_from_slice(&len.to_le_bytes());
    buf.push(tag);
    buf.extend_from_slice(payload);
    buf.extend_from_slice(&frame_checksum(tag, payload).to_le_bytes());
    Ok(())
}

/// An open write-ahead log, positioned for appending.
#[derive(Debug)]
pub struct Store {
    file: File,
    path: PathBuf,
    stats: StoreStats,
}

impl Store {
    /// Creates a fresh store at `path` (truncating any existing file)
    /// and writes the header.
    pub fn create(path: impl AsRef<Path>) -> Result<Store, StoreError> {
        let path = path.as_ref().to_path_buf();
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(&path)?;
        file.write_all(MAGIC)?;
        file.sync_data()?;
        Ok(Store {
            file,
            path,
            stats: StoreStats::default(),
        })
    }

    /// Opens an existing store: scans every frame, truncates any
    /// torn/corrupt tail, and returns the store (positioned at the end
    /// of the valid prefix) plus what recovery found.
    ///
    /// A zero-length file is treated as a fresh store (a crash can
    /// land between `create(2)` and the header write); any other file
    /// that does not start with [`MAGIC`] is [`StoreError::NotAStore`].
    pub fn open(path: impl AsRef<Path>) -> Result<(Store, Recovered), StoreError> {
        let path = path.as_ref().to_path_buf();
        let mut file = OpenOptions::new().read(true).write(true).open(&path)?;
        let mut bytes = Vec::new();
        file.read_to_end(&mut bytes)?;
        if bytes.is_empty() {
            file.write_all(MAGIC)?;
            file.sync_data()?;
            let store = Store {
                file,
                path,
                stats: StoreStats::default(),
            };
            return Ok((store, Recovered::default()));
        }
        let outcome = scan(&bytes)?;
        let truncated = (bytes.len() - outcome.valid_end) as u64;
        if truncated > 0 {
            file.set_len(outcome.valid_end as u64)?;
            file.sync_data()?;
        }
        let stats = StoreStats {
            truncated_bytes: truncated,
            recovered_txs: outcome.recovered.suffix.len() as u64,
            ..StoreStats::default()
        };
        let mut recovered = outcome.recovered;
        recovered.truncated_bytes = truncated;
        // Position at the end of the valid prefix for appending.
        use std::io::Seek;
        file.seek(std::io::SeekFrom::Start(outcome.valid_end as u64))?;
        Ok((Store { file, path, stats }, recovered))
    }

    /// Opens `path` if it exists, creates it otherwise.
    pub fn open_or_create(path: impl AsRef<Path>) -> Result<(Store, Recovered), StoreError> {
        if path.as_ref().exists() {
            Store::open(path)
        } else {
            Ok((Store::create(path)?, Recovered::default()))
        }
    }

    /// The file this store appends to.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Durability counters since this store was opened.
    pub fn stats(&self) -> StoreStats {
        self.stats
    }

    fn append_frame(&mut self, tag: u8, payload: &[u8], fsync: bool) -> Result<(), StoreError> {
        let mut frame = Vec::new();
        encode_frame_into(&mut frame, tag, payload)?;
        self.file.write_all(&frame)?;
        self.stats.bytes_written += frame.len() as u64;
        if fsync {
            self.file.sync_data()?;
            self.stats.fsyncs += 1;
        }
        Ok(())
    }

    /// Appends one transaction frame. With `fsync`, the frame is
    /// durable before this returns.
    pub fn append_tx(&mut self, tx: &Transaction, fsync: bool) -> Result<(), StoreError> {
        let payload = crate::codec::tx_to_bytes(tx);
        self.append_frame(TAG_TX, &payload, fsync)?;
        self.stats.tx_frames += 1;
        Ok(())
    }

    /// Appends one snapshot frame (always fsynced: a snapshot exists
    /// to be found after a crash).
    pub fn append_snapshot(&mut self, payload: &[u8]) -> Result<(), StoreError> {
        self.append_frame(TAG_SNAPSHOT, payload, true)?;
        self.stats.snapshot_frames += 1;
        self.stats.last_snapshot_bytes = payload.len() as u64;
        Ok(())
    }

    /// Rewrites the store as header + one snapshot frame, atomically
    /// (temp file + rename), dropping all earlier frames. The caller
    /// supplies a snapshot that covers everything logged so far.
    pub fn compact(&mut self, snapshot_payload: &[u8]) -> Result<(), StoreError> {
        let old_size = self.file.metadata().map(|m| m.len()).unwrap_or(0);
        let tmp_path = self.path.with_extension("compact.tmp");
        {
            let mut tmp = OpenOptions::new()
                .read(true)
                .write(true)
                .create(true)
                .truncate(true)
                .open(&tmp_path)?;
            tmp.write_all(MAGIC)?;
            let mut frame = Vec::new();
            encode_frame_into(&mut frame, TAG_SNAPSHOT, snapshot_payload)?;
            tmp.write_all(&frame)?;
            tmp.sync_data()?;
            self.stats.bytes_written += frame.len() as u64;
        }
        std::fs::rename(&tmp_path, &self.path)?;
        let mut file = OpenOptions::new().read(true).write(true).open(&self.path)?;
        use std::io::Seek;
        let new_size = file.seek(std::io::SeekFrom::End(0))?;
        self.file = file;
        self.stats.reclaimed_bytes += old_size.saturating_sub(new_size);
        self.stats.snapshot_frames += 1;
        self.stats.fsyncs += 1;
        self.stats.last_snapshot_bytes = snapshot_payload.len() as u64;
        Ok(())
    }

    /// Forces everything written so far to disk.
    pub fn sync(&mut self) -> Result<(), StoreError> {
        self.file.sync_data()?;
        self.stats.fsyncs += 1;
        Ok(())
    }
}
