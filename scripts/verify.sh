#!/usr/bin/env sh
# Full local verification gate, offline-safe (no registry access needed):
#   fmt check -> clippy (warnings are errors) -> release build -> tests.
# Run from anywhere inside the repo. Pass --release to additionally run
# the E13 append-hot-path smoke row (builds the bench crate in release).
set -eu

cd "$(dirname "$0")/.."

echo "==> cargo fmt --all -- --check"
cargo fmt --all -- --check

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "==> cargo build --release"
cargo build --release --offline

echo "==> cargo test -q"
cargo test -q --offline

echo "==> cargo doc --no-deps (warnings are errors)"
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --offline

echo "==> shell smoke run (--threads 4)"
smoke="$(mktemp)"
cat > "$smoke" <<'EOF'
schema pred Sub 1
constraint once: forall x. G (Sub(x) -> X G !Sub(x))
trigger dup: F (Sub(x) & X F Sub(x))
insert Sub(1)
commit
insert Sub(1)
commit
status
stats
EOF
out="$(./target/release/ticc-shell --threads 4 "$smoke")"
echo "$out" | grep -q "VIOLATION" || { echo "smoke: expected a violation"; exit 1; }
echo "$out" | grep -q "TRIGGER: 'dup' fires" || { echo "smoke: expected a firing"; exit 1; }
echo "smoke: OK"

echo "==> hot-path ablation smoke (default vs --no-transition-cache)"
# The transition cache is a pure performance knob: the same session
# must reply identically with it disabled. Compare everything except
# the stats report (cache counters legitimately differ there).
ablate="$(mktemp)"
grep -v '^stats$' "$smoke" > "$ablate"
hot="$(./target/release/ticc-shell "$ablate")"
cold="$(./target/release/ticc-shell --no-transition-cache "$ablate")"
rm -f "$smoke" "$ablate"
if [ "$hot" != "$cold" ]; then
    echo "ablation smoke: output diverges with --no-transition-cache"
    exit 1
fi
echo "ablation smoke: OK"

if [ "${1:-}" = "--release" ]; then
    echo "==> E13 append-hot-path smoke (release)"
    cargo run --release --offline -p ticc-bench --bin experiments -- e13 --smoke
fi

echo "verify: OK"
