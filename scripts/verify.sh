#!/usr/bin/env sh
# Full local verification gate, offline-safe (no registry access needed):
#   fmt check -> clippy (warnings are errors) -> release build -> tests.
# Run from anywhere inside the repo.
set -eu

cd "$(dirname "$0")/.."

echo "==> cargo fmt --all -- --check"
cargo fmt --all -- --check

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "==> cargo build --release"
cargo build --release --offline

echo "==> cargo test -q"
cargo test -q --offline

echo "==> cargo doc --no-deps (warnings are errors)"
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --offline

echo "==> shell smoke run (--threads 4)"
smoke="$(mktemp)"
cat > "$smoke" <<'EOF'
schema pred Sub 1
constraint once: forall x. G (Sub(x) -> X G !Sub(x))
trigger dup: F (Sub(x) & X F Sub(x))
insert Sub(1)
commit
insert Sub(1)
commit
status
stats
EOF
out="$(./target/release/ticc-shell --threads 4 "$smoke")"
rm -f "$smoke"
echo "$out" | grep -q "VIOLATION" || { echo "smoke: expected a violation"; exit 1; }
echo "$out" | grep -q "TRIGGER: 'dup' fires" || { echo "smoke: expected a firing"; exit 1; }
echo "smoke: OK"

echo "verify: OK"
