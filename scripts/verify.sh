#!/usr/bin/env sh
# Full local verification gate, offline-safe (no registry access needed):
#   fmt check -> clippy (warnings are errors) -> release build -> tests.
# Run from anywhere inside the repo. Pass --release to additionally run
# the E13 append-hot-path smoke row (builds the bench crate in release).
set -eu

cd "$(dirname "$0")/.."

echo "==> cargo fmt --all -- --check"
cargo fmt --all -- --check

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "==> cargo build --release"
cargo build --release --offline

echo "==> cargo test -q"
cargo test -q --offline

echo "==> cargo doc --no-deps (warnings are errors)"
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --offline

echo "==> shell smoke run (--threads 4)"
smoke="$(mktemp)"
cat > "$smoke" <<'EOF'
schema pred Sub 1
constraint once: forall x. G (Sub(x) -> X G !Sub(x))
trigger dup: F (Sub(x) & X F Sub(x))
insert Sub(1)
commit
insert Sub(1)
commit
status
stats
EOF
out="$(./target/release/ticc-shell --threads 4 "$smoke")"
echo "$out" | grep -q "VIOLATION" || { echo "smoke: expected a violation"; exit 1; }
echo "$out" | grep -q "TRIGGER: 'dup' fires" || { echo "smoke: expected a firing"; exit 1; }
echo "smoke: OK"

echo "==> hot-path ablation smoke (default vs --no-transition-cache)"
# The transition cache is a pure performance knob: the same session
# must reply identically with it disabled. Compare everything except
# the stats report (cache counters legitimately differ there).
ablate="$(mktemp)"
grep -v '^stats$' "$smoke" > "$ablate"
hot="$(./target/release/ticc-shell "$ablate")"
cold="$(./target/release/ticc-shell --no-transition-cache "$ablate")"
rm -f "$smoke" "$ablate"
if [ "$hot" != "$cold" ]; then
    echo "ablation smoke: output diverges with --no-transition-cache"
    exit 1
fi
echo "ablation smoke: OK"

echo "==> template-automata ablation smoke (default vs --no-template-automata)"
# Compiled template automata are likewise a pure performance strategy:
# the same session must reply byte-identically with every constraint
# held on the symbolic progression path. The workload walks an
# obligation across two instantiations, so the compiled default
# actually binds, steps, and reports the violation from u32 state.
tablate="$(mktemp)"
cat > "$tablate" <<'EOF'
schema pred Sub 1
schema pred Fill 1
constraint response: forall x. G (Sub(x) -> X Fill(x))
insert Sub(1)
commit
delete Sub(1)
insert Fill(1)
insert Sub(2)
commit
delete Fill(1)
commit
status
EOF
auto="$(./target/release/ticc-shell "$tablate")"
sym="$(./target/release/ticc-shell --no-template-automata "$tablate")"
rm -f "$tablate"
if [ "$auto" != "$sym" ]; then
    echo "template smoke: output diverges with --no-template-automata"
    exit 1
fi
echo "$auto" | grep -q "VIOLATION" || { echo "template smoke: expected the unfilled-submission violation"; exit 1; }
echo "template smoke: OK"

echo "==> grounding ablation smoke (indexed vs --grounding odometer)"
# The indexed grounding is likewise a pure performance strategy: the
# same session must reply byte-identically under the blind |M|^k
# odometer. Use a k = 2 constraint so the instantiation space is real.
gablate="$(mktemp)"
cat > "$gablate" <<'EOF'
schema pred Sub 1
schema pred Rep 2
constraint pair: forall x y. G (Rep(x, y) -> X G !Rep(x, y))
insert Sub(1)
insert Rep(1, 2)
commit
insert Rep(3, 4)
commit
insert Rep(1, 2)
commit
status
EOF
idx="$(./target/release/ticc-shell "$gablate")"
odo="$(./target/release/ticc-shell --grounding odometer "$gablate")"
rm -f "$gablate"
if [ "$idx" != "$odo" ]; then
    echo "grounding smoke: output diverges with --grounding odometer"
    exit 1
fi
echo "$idx" | grep -q "VIOLATION" || { echo "grounding smoke: expected the re-insertion violation"; exit 1; }
echo "grounding smoke: OK"

echo "==> durability smoke (crash-reopen via --store)"
# Session 1: build a session against a store, checkpoint, exit. The
# process ending right after the last append doubles as the "crash":
# nothing below depends on a clean shutdown hook.
wal="$(mktemp -u)"
sess1="$(mktemp)"
cat > "$sess1" <<'EOF'
schema pred Sub 1
constraint once: forall x. G (Sub(x) -> X G !Sub(x))
insert Sub(1)
commit
checkpoint
delete Sub(1)
commit
EOF
./target/release/ticc-shell --store "$wal" "$sess1" > /dev/null
# Session 2: reopen the store — must resume (1 snapshot + 1 logged
# transaction after it) and still detect the re-submission.
sess2="$(mktemp)"
cat > "$sess2" <<'EOF'
insert Sub(1)
commit
status
EOF
out="$(./target/release/ticc-shell --store "$wal" "$sess2")"
echo "$out" | grep -q "restored from" || { echo "durability smoke: expected a restore summary"; exit 1; }
echo "$out" | grep -q "replayed 1 logged transaction" || { echo "durability smoke: expected a 1-tx replay"; exit 1; }
echo "$out" | grep -q "VIOLATION" || { echo "durability smoke: expected the re-submission violation"; exit 1; }
# Fault injection: clobber the header magic — the shell must refuse
# with a friendly error and exit code 3, not panic.
printf 'XXXX' | dd of="$wal" bs=1 seek=0 conv=notrunc 2> /dev/null
rc=0
./target/release/ticc-shell --store "$wal" "$sess2" > /dev/null 2>&1 || rc=$?
[ "$rc" -eq 3 ] || { echo "durability smoke: corrupt store should exit 3 (got $rc)"; exit 1; }
# A missing script file is exit code 1.
rc=0
./target/release/ticc-shell /no/such/script.ticc > /dev/null 2>&1 || rc=$?
[ "$rc" -eq 1 ] || { echo "durability smoke: missing script should exit 1 (got $rc)"; exit 1; }
rm -f "$wal" "$sess1" "$sess2"
echo "durability smoke: OK"

echo "==> server smoke (ticc-server over loopback, 2 sessions, group WAL)"
# Start the server on an OS-assigned port, read the bound address off
# its stderr, then run a whole scripted session through the bundled
# client: two tenants, appends from both, a constraint violation
# arriving as a wire event, and a clean shutdown (exit code 0).
gwal="$(mktemp -u)"
slog="$(mktemp)"
./target/release/ticc-server serve --addr 127.0.0.1:0 --wal "$gwal" 2> "$slog" &
spid=$!
addr=""
tries=0
while [ $tries -lt 100 ]; do
    addr="$(sed -n 's/^ticc-server: listening on \([0-9.:]*\) .*/\1/p' "$slog")"
    [ -n "$addr" ] && break
    tries=$((tries + 1))
    sleep 0.1
done
[ -n "$addr" ] || { echo "server smoke: server did not start"; cat "$slog"; exit 1; }
out="$(printf '%s\n' \
    '{"op":"open","session":"a","preds":[["Sub",1]],"constraints":[["once","forall x. G (Sub(x) -> X G !Sub(x))"]]}' \
    '{"op":"open","session":"b","preds":[["Sub",1]]}' \
    '{"op":"append","session":"b","insert":["Sub(7)"]}' \
    '{"op":"append","session":"a","insert":["Sub(1)"]}' \
    '{"op":"append","session":"a","insert":["Sub(1)"]}' \
    '{"op":"stats","session":"a"}' \
    '{"op":"shutdown"}' \
    | ./target/release/ticc-server client --addr "$addr")"
echo "$out" | grep -q '"constraint":"once"' || { echo "server smoke: expected a violation event over the wire"; exit 1; }
echo "$out" | grep -q '"schema":"ticc-engine-stats-v2"' || { echo "server smoke: expected v2 stats"; exit 1; }
wait $spid || { echo "server smoke: server did not shut down cleanly"; exit 1; }
rm -f "$gwal" "$slog"
echo "server smoke: OK"

echo "==> mux soak (512 idle connections, event-driven core, 4 io threads)"
# The default serving core is the poll(2) multiplexer: 512 handshaken
# connections held idle, each then re-pinged to prove it is served —
# all on 4 io threads, no per-connection threads.
slog="$(mktemp)"
./target/release/ticc-server serve --addr 127.0.0.1:0 --io-threads 4 2> "$slog" &
spid=$!
addr=""
tries=0
while [ $tries -lt 100 ]; do
    addr="$(sed -n 's/^ticc-server: listening on \([0-9.:]*\) .*/\1/p' "$slog")"
    [ -n "$addr" ] && break
    tries=$((tries + 1))
    sleep 0.1
done
[ -n "$addr" ] || { echo "mux soak: server did not start"; cat "$slog"; exit 1; }
out="$(./target/release/ticc-server soak --addr "$addr" --conns 512)"
echo "$out" | grep -q "soak ok: 512 connections" || { echo "mux soak: expected 512 served connections"; exit 1; }
printf '{"op":"shutdown"}\n' | ./target/release/ticc-server client --addr "$addr" > /dev/null
wait $spid || { echo "mux soak: server did not shut down cleanly"; exit 1; }
rm -f "$slog"
echo "mux soak: OK"

if [ "${1:-}" = "--release" ]; then
    echo "==> E13/E14/E15/E16/E17/E18/E19/E20 bench smoke (release)"
    cargo run --release --offline -p ticc-bench --bin experiments -- e13 e14 e15 e16 e17 e18 e19 e20 --smoke
fi

echo "verify: OK"
