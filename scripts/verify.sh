#!/usr/bin/env sh
# Full local verification gate, offline-safe (no registry access needed):
#   fmt check -> clippy (warnings are errors) -> release build -> tests.
# Run from anywhere inside the repo.
set -eu

cd "$(dirname "$0")/.."

echo "==> cargo fmt --all -- --check"
cargo fmt --all -- --check

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "==> cargo build --release"
cargo build --release --offline

echo "==> cargo test -q"
cargo test -q --offline

echo "verify: OK"
