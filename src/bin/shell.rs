//! `ticc-shell` — interactive temporal integrity checking.
//!
//! Reads commands from stdin (or from a script file given as the first
//! argument) and drives [`ticc::shell::Shell`]. See `help` inside the
//! shell or the module docs for the command language.

use std::io::{BufRead, Write};

fn main() {
    let mut shell = ticc::shell::Shell::new();
    let args: Vec<String> = std::env::args().skip(1).collect();

    if let Some(path) = args.first() {
        // Script mode: run a file of commands, echoing each.
        let content = match std::fs::read_to_string(path) {
            Ok(c) => c,
            Err(e) => {
                eprintln!("cannot read {path}: {e}");
                std::process::exit(1);
            }
        };
        for line in content.lines() {
            if line.trim() == "quit" {
                break;
            }
            println!("> {line}");
            report(shell.exec(line));
        }
        return;
    }

    println!("ticc-shell — temporal integrity constraints (type 'help')");
    let stdin = std::io::stdin();
    let mut out = std::io::stdout();
    loop {
        print!("ticc> ");
        let _ = out.flush();
        let mut line = String::new();
        match stdin.lock().read_line(&mut line) {
            Ok(0) => break, // EOF
            Ok(_) => {}
            Err(e) => {
                eprintln!("read error: {e}");
                break;
            }
        }
        let line = line.trim();
        if line == "quit" || line == "exit" {
            break;
        }
        report(shell.exec(line));
    }
}

fn report(reply: ticc::shell::Reply) {
    match reply {
        Ok(s) if s.is_empty() => {}
        Ok(s) => println!("{s}"),
        Err(e) => println!("error: {e}"),
    }
}
