//! `ticc-shell` — interactive temporal integrity checking.
//!
//! Reads commands from stdin (or from a script file given as the first
//! argument) and drives [`ticc::shell::Shell`]. See `help` inside the
//! shell or the module docs for the command language.
//!
//! `--threads off|auto|<n>` selects the worker-pool policy for every
//! monitor, trigger, and ad-hoc check in the session (default: off).
//!
//! `--no-transition-cache` disables the safety-automaton transition
//! cache on the append hot path (the ablation knob; results are
//! identical either way, only the per-append cost changes).
//!
//! `--no-template-automata` disables compiling residues into shared
//! explicit template automata, keeping every constraint on the
//! symbolic progression path (the E16 ablation knob; results are
//! identical either way, only the per-append cost changes).
//!
//! `--grounding indexed|odometer` selects the instantiation
//! enumeration strategy (default: indexed — the relevance-pruned join;
//! odometer is the blind `|M|^k` sweep kept for the E15 ablation).
//! Check events are identical under both.
//!
//! `--store <path>` backs the session with a durable write-ahead log:
//! committed states are logged, `checkpoint`/`compact` snapshot the
//! whole session, and reopening the same path resumes it.
//!
//! Exit codes: 0 success, 1 unreadable script file, 2 bad command-line
//! flags, 3 store cannot be opened or recovered.

use std::io::{BufRead, Write};
use ticc::core::{CheckOptions, GroundStrategy, HistoryBudget, Threads};

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let mut threads = Threads::Off;
    if let Some(i) = args.iter().position(|a| a == "--threads") {
        let Some(v) = args.get(i + 1) else {
            eprintln!("--threads needs a value (off|auto|<count>)");
            std::process::exit(2);
        };
        threads = match Threads::parse(v) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("{e}");
                std::process::exit(2);
            }
        };
        args.drain(i..=i + 1);
    }
    let mut transition_cache = true;
    if let Some(i) = args.iter().position(|a| a == "--no-transition-cache") {
        transition_cache = false;
        args.remove(i);
    }
    let mut template_automata = true;
    if let Some(i) = args.iter().position(|a| a == "--no-template-automata") {
        template_automata = false;
        args.remove(i);
    }
    let mut grounding = GroundStrategy::default();
    if let Some(i) = args.iter().position(|a| a == "--grounding") {
        let Some(v) = args.get(i + 1) else {
            eprintln!("--grounding needs a value (indexed|odometer)");
            std::process::exit(2);
        };
        grounding = match v.as_str() {
            "indexed" => GroundStrategy::Indexed,
            "odometer" => GroundStrategy::Odometer,
            other => {
                eprintln!("unknown grounding strategy {other:?} (indexed|odometer)");
                std::process::exit(2);
            }
        };
        args.drain(i..=i + 1);
    }
    let mut history_budget = HistoryBudget::default();
    if let Some(i) = args.iter().position(|a| a == "--history-window") {
        let Some(v) = args.get(i + 1) else {
            eprintln!("--history-window needs a value (unbounded|<n>|<n>kb|<n>mb)");
            std::process::exit(2);
        };
        history_budget = match HistoryBudget::parse(v) {
            Ok(b) => b,
            Err(e) => {
                eprintln!("{e}");
                std::process::exit(2);
            }
        };
        args.drain(i..=i + 1);
    }
    let mut store_path: Option<String> = None;
    if let Some(i) = args.iter().position(|a| a == "--store") {
        let Some(v) = args.get(i + 1) else {
            eprintln!("--store needs a path");
            std::process::exit(2);
        };
        store_path = Some(v.clone());
        args.drain(i..=i + 1);
    }
    let opts = CheckOptions::builder()
        .threads(threads)
        .transition_cache(transition_cache)
        .template_automata(template_automata)
        .grounding(grounding)
        .history_budget(history_budget)
        .build();
    let mut shell = match &store_path {
        Some(path) => match ticc::shell::Shell::with_store(opts, std::path::Path::new(path)) {
            Ok((shell, summary)) => {
                println!("{summary}");
                shell
            }
            Err(e) => {
                eprintln!("{e}");
                std::process::exit(3);
            }
        },
        None => ticc::shell::Shell::with_options(opts),
    };

    if let Some(path) = args.first() {
        // Script mode: run a file of commands, echoing each.
        let content = match std::fs::read_to_string(path) {
            Ok(c) => c,
            Err(e) => {
                eprintln!("cannot read {path}: {e}");
                std::process::exit(1);
            }
        };
        for line in content.lines() {
            if line.trim() == "quit" {
                break;
            }
            println!("> {line}");
            report(shell.exec(line));
        }
        return;
    }

    println!("ticc-shell — temporal integrity constraints (type 'help')");
    let stdin = std::io::stdin();
    let mut out = std::io::stdout();
    loop {
        print!("ticc> ");
        let _ = out.flush();
        let mut line = String::new();
        match stdin.lock().read_line(&mut line) {
            Ok(0) => break, // EOF
            Ok(_) => {}
            Err(e) => {
                eprintln!("read error: {e}");
                break;
            }
        }
        let line = line.trim();
        if line == "quit" || line == "exit" {
            break;
        }
        report(shell.exec(line));
    }
}

fn report(reply: ticc::shell::Reply) {
    match reply {
        Ok(s) if s.is_empty() => {}
        Ok(s) => println!("{s}"),
        Err(e) => println!("error: {e}"),
    }
}
