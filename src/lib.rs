//! # ticc — Temporal Integrity Constraint Checking
//!
//! A Rust implementation of Chomicki & Niwiński, *On the Feasibility of
//! Checking Temporal Integrity Constraints* (PODS 1993; JCSS 1995).
//!
//! Temporal integrity constraints restrict how a database may evolve
//! over time. This workspace implements the paper's decision procedure
//! for the decidable fragment — **universal safety sentences**, checked
//! in exponential time via grounding to propositional temporal logic
//! (Theorems 4.1–4.2) — along with an online monitor, a trigger engine
//! built on the paper's duality, and the Section 3 Turing-machine
//! constructions that delimit the undecidable side.
//!
//! ## Quickstart
//!
//! ```
//! use ticc::prelude::*;
//!
//! // A schema with an event predicate Sub (order submitted).
//! let schema = Schema::builder().pred("Sub", 1).pred("Fill", 1).build();
//!
//! // "An order can be submitted only once" (the paper's example).
//! let phi = parse(&schema, "forall x. G (Sub(x) -> X G !Sub(x))").unwrap();
//!
//! let mut monitor = Monitor::new(schema.clone(), CheckOptions::default());
//! let id = monitor.add_constraint("once-only", phi).unwrap();
//!
//! let sub = schema.pred("Sub").unwrap();
//! // Submit order 1, then clear it, then submit it AGAIN: violation.
//! monitor.append(&Transaction::new().insert(sub, vec![1])).unwrap();
//! monitor.append(&Transaction::new().delete(sub, vec![1])).unwrap();
//! let events = monitor.append(&Transaction::new().insert(sub, vec![1])).unwrap();
//! assert_eq!(events.len(), 1);
//! assert!(matches!(monitor.status(id), Status::Violated { at: 3 }));
//! ```
//!
//! ## Crate map
//!
//! * [`ptl`] — propositional temporal logic: progression, tableau and
//!   on-the-fly Büchi satisfiability (Lemma 4.2);
//! * [`fotl`] — first-order temporal logic: syntax, the paper's formula
//!   classification, parser, finite-history evaluation;
//! * [`tdb`] — the temporal database substrate;
//! * [`store`] — the durability layer: checksummed write-ahead log,
//!   engine snapshots, crash recovery;
//! * [`core`] — grounding (Theorem 4.1), the extension checker
//!   (Theorem 4.2), the incremental monitor, triggers, diagnostics;
//! * [`tm`] — the Section 3 Turing-machine encodings (`φ`, `φ̃`) and the
//!   Σ⁰₂ semi-decision procedure.

pub use ticc_core as core;
pub use ticc_fotl as fotl;
pub use ticc_ptl as ptl;
pub use ticc_store as store;
pub use ticc_tdb as tdb;
pub use ticc_tm as tm;

/// Interactive shell engine (drives the whole stack from text commands;
/// wrapped by the `ticc-shell` binary).
pub mod shell;

/// The one-import API surface: everything a typical checking session
/// needs.
///
/// ```
/// use ticc::prelude::*;
///
/// let schema = Schema::builder().pred("Sub", 1).build();
/// let phi = parse(&schema, "forall x. G (Sub(x) -> X G !Sub(x))").unwrap();
/// let opts = CheckOptions::builder().threads(Threads::Auto).build();
/// let mut monitor = Monitor::new(schema.clone(), opts);
/// monitor.add_constraint("once-only", phi).unwrap();
/// ```
///
/// Covers: the lifecycle-owning [`Session`](ticc_core::Session) (opened
/// via [`Session::builder()`](ticc_core::Session::builder)), the online
/// [`Monitor`](ticc_core::Monitor), the
/// [`TriggerEngine`](ticc_core::TriggerEngine) duality layer, one-shot
/// [`check_potential_satisfaction`](ticc_core::check_potential_satisfaction),
/// the unified [`Error`](ticc_core::Error), the
/// [`CheckOptions`](ticc_core::CheckOptions) builder with its
/// [`Threads`](ticc_core::Threads) policy, the durability backends
/// ([`Store`](ticc_core::Store) and the group-commit
/// [`GroupWal`](ticc_core::GroupWal)), the database substrate
/// ([`Schema`](ticc_tdb::Schema), [`State`](ticc_tdb::State),
/// [`Transaction`](ticc_tdb::Transaction),
/// [`History`](ticc_tdb::History)), and the constraint
/// [`parse`](ticc_fotl::parser::parse)r.
///
/// Direct engine construction from the prelude is deprecated:
/// [`Session::builder()`](ticc_core::Session::builder) owns the
/// schema/constraint/durability lifecycle that callers previously
/// re-derived around a raw engine. Embedders that really want the
/// shared core (custom persistence, no session semantics) should take
/// it from [`ticc_core::Engine`] explicitly.
pub mod prelude {
    pub use ticc_core::{
        check_potential_satisfaction, earliest_violation, explain, Action, CheckOptions,
        CheckOptionsBuilder, CheckOutcome, Committed, ConstraintId, Durability, Encoding, Error,
        GroundMode, GroundStrategy, GroupWal, Monitor, MonitorEvent, Notion, OpenReport,
        OpenSummary, Regrounding, Session, SessionBuilder, SessionStats, Status, Store, StoreStats,
        Threads, Trigger, TriggerEngine,
    };
    pub use ticc_fotl::parser::parse;
    pub use ticc_fotl::Formula;
    pub use ticc_tdb::{History, Schema, State, Transaction, Value};

    /// Deprecated prelude alias (the PR 2 `MonitorError` pattern): the
    /// prelude path now steers to [`Session::builder()`]. The type
    /// itself is unchanged and fully supported at [`ticc_core::Engine`].
    #[deprecated(
        since = "0.2.0",
        note = "open a `Session` via `Session::builder()`; embedders wanting the raw shared \
                core should import `ticc_core::Engine` directly"
    )]
    pub type Engine = ticc_core::Engine;
}
