//! An interactive shell for the temporal integrity checker.
//!
//! Drives the whole stack from text commands — define a schema, register
//! constraints and triggers, stage tuple updates, commit them as
//! database states, and watch violations and trigger firings arrive at
//! the earliest possible time. The `ticc-shell` binary wraps this in a
//! stdin REPL; the engine itself is a plain `line in → report out`
//! state machine, which keeps it fully testable.
//!
//! The shell is a thin text veneer over
//! [`ticc_core::Session`] — the session owns the schema
//! lifecycle, constraints, triggers, staging, durability, and stats;
//! the shell owns parsing and report formatting. Anything the shell
//! can do, an embedder (or the `ticc-server`) can do through the same
//! [`Session`](ticc_core::Session) API.
//!
//! ```text
//! schema pred Sub 1              # declare predicates (before first commit)
//! schema const vip = 7           # declare constants with interpretation
//! constraint once: forall x. G (Sub(x) -> X G !Sub(x))
//! trigger dup: F (Sub(x) & X F Sub(x))
//! insert Sub(1)                  # stage updates
//! commit                         # apply as the next state, check everything
//! status                         # constraint statuses
//! stats [--json]                 # engine counters, gauges, and timers
//! checkpoint                     # snapshot the session to the store
//! compact                        # checkpoint + rewrite the log to just it
//! check G !Sub(9)                # ad-hoc potential-satisfaction query
//! witness once                   # a concrete extension satisfying it
//! history                        # the states so far
//! help | quit
//! ```

use std::fmt::Write as _;
use std::path::Path;
use ticc_core::{check_potential_satisfaction, CheckOptions, Error, Session, Status};
use ticc_fotl::parser::parse;
use ticc_store::codec::parse_fact;
use ticc_tdb::Value;

/// Shell outcome for one command.
pub type Reply = Result<String, String>;

/// The shell engine: a [`Session`] plus the command grammar.
pub struct Shell {
    session: Session,
}

impl Default for Shell {
    fn default() -> Self {
        Self::new()
    }
}

/// Renders a core error the way the shell always has: session and
/// store rules read as plain sentences, pipeline failures keep their
/// layer prefix (`grounding:`, `satisfiability:`, `database:`).
fn msg(e: Error) -> String {
    match e {
        Error::Session(m) | Error::Store(m) => m,
        other => other.to_string(),
    }
}

impl Shell {
    /// A fresh shell with an empty schema and default options.
    pub fn new() -> Self {
        Self::with_options(CheckOptions::default())
    }

    /// A fresh shell using `opts` for every monitor, trigger, and
    /// ad-hoc check (this is how `ticc-shell --threads N` plugs in).
    pub fn with_options(opts: CheckOptions) -> Self {
        let (session, _) = Session::builder()
            .options(opts)
            .open()
            .expect("an ephemeral session cannot fail to open");
        Self { session }
    }

    /// A shell backed by a durable store at `path` (this is how
    /// `ticc-shell --store <path>` plugs in). Returns the shell and a
    /// human-readable summary of what recovery found.
    ///
    /// If the store holds a checkpoint, the whole session resumes from
    /// it: schema, constants, history, constraints, statuses, and the
    /// triggers saved in the session's application blob, plus any
    /// transactions logged after the checkpoint. Without a checkpoint
    /// the shell starts in the schema-definition phase and any logged
    /// transactions replay once the schema is redeclared.
    pub fn with_store(opts: CheckOptions, path: &Path) -> Result<(Self, String), String> {
        let (session, rec) = Session::builder()
            .options(opts)
            .store(path)
            .open()
            .map_err(msg)?;
        let dropped = if rec.truncated_bytes > 0 {
            format!("; dropped {} corrupt trailing byte(s)", rec.truncated_bytes)
        } else {
            String::new()
        };
        let summary = if rec.resumed {
            format!(
                "restored from {}: {} state(s), {} constraint(s), {} trigger(s), replayed {} \
                 logged transaction(s){dropped}",
                path.display(),
                rec.states,
                rec.constraints,
                rec.triggers,
                rec.replayed,
            )
        } else if rec.pending_replay > 0 {
            format!(
                "opened store {} (no checkpoint): {} logged transaction(s) will \
                 replay once the schema is redeclared{dropped}",
                path.display(),
                rec.pending_replay
            )
        } else {
            format!("opened store {}{dropped}", path.display())
        };
        Ok((Self { session }, summary))
    }

    /// Executes one command line; returns the report to show the user.
    pub fn exec(&mut self, line: &str) -> Reply {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            return Ok(String::new());
        }
        let (cmd, rest) = match line.split_once(char::is_whitespace) {
            Some((c, r)) => (c, r.trim()),
            None => (line, ""),
        };
        match cmd {
            "help" => Ok(HELP.to_owned()),
            "schema" => self.cmd_schema(rest),
            "constraint" => self.cmd_constraint(rest),
            "trigger" => self.cmd_trigger(rest),
            "insert" => self.cmd_update(rest, true),
            "delete" => self.cmd_update(rest, false),
            "commit" => self.cmd_commit(),
            "status" => self.cmd_status(),
            "stats" | ":stats" => self.cmd_stats(rest),
            "checkpoint" | ":checkpoint" => self.cmd_checkpoint(false),
            "compact" | ":compact" => self.cmd_checkpoint(true),
            "history" => self.cmd_history(),
            "check" => self.cmd_check(rest),
            "explain" => self.cmd_explain(rest),
            "witness" => self.cmd_witness(rest),
            other => Err(format!("unknown command '{other}' (try 'help')")),
        }
    }

    /// Freezes the schema (bringing the session up) with the shell's
    /// traditional wording for the empty-schema case.
    fn ensure_running(&mut self) -> Result<(), String> {
        if self.session.is_defining() && self.session.declared_preds() == 0 {
            return Err(
                "declare at least one predicate first (schema pred <name> <arity>)".to_owned(),
            );
        }
        self.session.freeze().map_err(msg)
    }

    fn cmd_schema(&mut self, rest: &str) -> Reply {
        if !self.session.is_defining() {
            return Err("the schema is frozen once constraints or updates exist".to_owned());
        }
        let parts: Vec<&str> = rest.split_whitespace().collect();
        match parts.as_slice() {
            ["pred", name, arity] => {
                let arity: usize = arity.parse().map_err(|_| format!("bad arity '{arity}'"))?;
                self.session.declare_pred(name, arity).map_err(msg)?;
                Ok(format!("predicate {name}/{arity}"))
            }
            ["const", name, "=", value] => {
                let value: Value = value.parse().map_err(|_| format!("bad value '{value}'"))?;
                self.session.declare_const(name, value).map_err(msg)?;
                Ok(format!("constant {name} = {value}"))
            }
            _ => {
                Err("usage: schema pred <name> <arity> | schema const <name> = <value>".to_owned())
            }
        }
    }

    fn cmd_constraint(&mut self, rest: &str) -> Reply {
        let Some((name, src)) = rest.split_once(':') else {
            return Err("usage: constraint <name>: <formula>".to_owned());
        };
        let (name, src) = (name.trim().to_owned(), src.trim().to_owned());
        self.ensure_running()?;
        let schema = self.session.schema().expect("running");
        let phi = parse(&schema, &src).map_err(|e| e.to_string())?;
        let class = ticc_fotl::classify::classify(&phi);
        let id = self
            .session
            .add_constraint(&name, phi.clone())
            .map_err(msg)?;
        let mut out = format!("constraint '{name}' registered ({class:?})");
        if !ticc_fotl::classify::is_syntactically_safe(&phi) {
            let _ = write!(
                out,
                "\nwarning: not syntactically safe — Theorem 4.2's guarantee assumes a \
                 safety sentence"
            );
        }
        if let Status::Violated { at } = self.session.status(id) {
            let _ = write!(out, "\nalready VIOLATED at history length {at}");
        }
        Ok(out)
    }

    fn cmd_trigger(&mut self, rest: &str) -> Reply {
        let Some((name, src)) = rest.split_once(':') else {
            return Err("usage: trigger <name>: <condition formula>".to_owned());
        };
        let (name, src) = (name.trim().to_owned(), src.trim().to_owned());
        self.ensure_running()?;
        let schema = self.session.schema().expect("running");
        let condition = parse(&schema, &src).map_err(|e| e.to_string())?;
        self.session.add_trigger(&name, condition).map_err(msg)?;
        Ok(format!("trigger '{name}' registered"))
    }

    fn cmd_update(&mut self, rest: &str, insert: bool) -> Reply {
        self.ensure_running()?;
        let schema = self.session.schema().expect("running");
        let (pred, tuple) = parse_fact(&schema, rest)?;
        let verb = if insert { "insert" } else { "delete" };
        self.session.stage(insert, pred, tuple).map_err(msg)?;
        Ok(format!("staged: {verb} {rest}"))
    }

    fn cmd_commit(&mut self) -> Reply {
        self.ensure_running()?;
        let committed = self.session.commit().map_err(msg)?;
        let history = self.session.history().expect("running");
        let mut out = format!(
            "t={}: committed {} update(s); state = {}",
            committed.t,
            committed.ops,
            history.state(committed.t).display()
        );
        for e in &committed.events {
            let _ = write!(
                out,
                "\n  VIOLATION: '{}' — unavoidable after {} state(s)",
                e.name, e.at
            );
        }
        for f in &committed.fired {
            let subst: Vec<String> = f
                .substitution
                .iter()
                .map(|(v, val)| format!("{v}={val}"))
                .collect();
            let _ = write!(
                out,
                "\n  TRIGGER: '{}' fires [{}]",
                f.name,
                subst.join(", ")
            );
        }
        Ok(out)
    }

    fn cmd_status(&mut self) -> Reply {
        self.ensure_running()?;
        let mut out = String::new();
        for (id, name, _) in self.session.constraints() {
            let line = match self.session.status(id) {
                Status::Satisfied => format!("{name}: potentially satisfied"),
                Status::Violated { at } => {
                    format!("{name}: VIOLATED (after {at} state(s))")
                }
            };
            if !out.is_empty() {
                out.push('\n');
            }
            out.push_str(&line);
        }
        if out.is_empty() {
            return Ok("no constraints registered".to_owned());
        }
        Ok(out)
    }

    fn cmd_stats(&mut self, rest: &str) -> Reply {
        let json = match rest {
            "" => false,
            "--json" => true,
            other => return Err(format!("usage: stats [--json] (got '{other}')")),
        };
        self.ensure_running()?;
        if json {
            return Ok(self.session.stats_json());
        }
        let mut out = self.session.stats().engine.render();
        let ts = self.session.trigger_stats();
        if ts.grounds > 0 {
            let _ = write!(
                out,
                "\ntrigger engine:\n  one-shot checks     {}\n  ground time         {:?}\n  \
                 sat time            {:?}",
                ts.grounds, ts.ground_time, ts.sat_time
            );
        }
        Ok(out)
    }

    /// `checkpoint` writes a snapshot of the whole session (schema,
    /// history, constraints, residues, triggers) to the attached store;
    /// `compact` additionally rewrites the log so it holds nothing but
    /// that snapshot.
    fn cmd_checkpoint(&mut self, compact: bool) -> Reply {
        self.ensure_running()?;
        if !self.session.has_store() {
            return Err("no store attached (run the shell with --store <path>)".to_owned());
        }
        let mut out = if compact {
            let bytes = self.session.compact().map_err(msg)?;
            format!("log compacted to a single {bytes} byte checkpoint")
        } else {
            let bytes = self.session.checkpoint().map_err(msg)?;
            format!("checkpoint written ({bytes} byte snapshot)")
        };
        // A bounded budget may have truncated behind the newly covered
        // horizon: show where the resident window starts now.
        if let Some(engine) = self.session.engine() {
            let h = engine.history();
            if h.is_truncated() {
                let _ = write!(
                    out,
                    "\nretention horizon t={}: {} resident instant(s), {} spilled",
                    h.base(),
                    h.states().len(),
                    h.base()
                );
            }
        }
        Ok(out)
    }

    fn cmd_history(&mut self) -> Reply {
        self.ensure_running()?;
        // Materialise through the spill tier so the listing is the
        // same under every history budget.
        let h = self.session.full_history().map_err(msg)?.expect("running");
        if h.is_empty() {
            return Ok("history is empty (use insert/delete + commit)".to_owned());
        }
        let mut out = String::new();
        for (t, s) in h.states().iter().enumerate() {
            if t > 0 {
                out.push('\n');
            }
            let _ = write!(out, "t={t}: {}", s.display());
        }
        Ok(out)
    }

    fn cmd_check(&mut self, rest: &str) -> Reply {
        self.ensure_running()?;
        let opts = self.session.options();
        let h = self.session.full_history().map_err(msg)?.expect("running");
        let phi = parse(h.schema(), rest).map_err(|e| e.to_string())?;
        let out = check_potential_satisfaction(&h, &phi, &opts).map_err(|e| e.to_string())?;
        Ok(if out.potentially_satisfied {
            "potentially satisfied (an extension exists)".to_owned()
        } else {
            "NOT potentially satisfied (no extension can satisfy it)".to_owned()
        })
    }

    fn cmd_explain(&mut self, rest: &str) -> Reply {
        self.ensure_running()?;
        let opts = self.session.options();
        let h = self.session.full_history().map_err(msg)?.expect("running");
        let phi = parse(h.schema(), rest).map_err(|e| e.to_string())?;
        Ok(ticc_core::explain(&h, &phi, &opts))
    }

    fn cmd_witness(&mut self, rest: &str) -> Reply {
        self.ensure_running()?;
        let opts = self.session.options();
        let name = rest.trim();
        let Some(phi) = self
            .session
            .constraints()
            .find(|(_, n, _)| *n == name)
            .map(|(_, _, phi)| phi.clone())
        else {
            return Err(format!("no constraint named '{name}'"));
        };
        let h = self.session.full_history().map_err(msg)?.expect("running");
        let out = check_potential_satisfaction(&h, &phi, &opts).map_err(|e| e.to_string())?;
        let Some(w) = out.witness else {
            return Ok(format!(
                "'{name}' is violated: no extension exists, hence no witness"
            ));
        };
        let mut text =
            format!("one extension satisfying '{name}' (append after the current history):");
        for (i, s) in w.prefix.iter().enumerate() {
            let _ = write!(text, "\n  +{}: {}", i + 1, s.display());
        }
        for (i, s) in w.cycle.iter().enumerate() {
            let _ = write!(
                text,
                "\n  +{}: {}  (repeat forever)",
                w.prefix.len() + i + 1,
                s.display()
            );
        }
        Ok(text)
    }
}

const HELP: &str = "commands:
  schema pred <name> <arity>      declare a predicate (before first commit)
  schema const <name> = <value>   declare a rigid constant
  constraint <name>: <formula>    register a universal safety constraint
  trigger <name>: <formula>       register a condition-action trigger (Log)
  insert <Pred>(<v>, …)           stage a tuple insertion
  delete <Pred>(<v>, …)           stage a tuple deletion
  commit                          apply staged updates as the next state
  status                          constraint statuses
  stats [--json]                  engine counters, gauges, and timers
  checkpoint                      snapshot the session to the attached store
  compact                         checkpoint, then rewrite the log to just it
  history                         print all states
  check <formula>                 ad-hoc potential-satisfaction query
  explain <formula>               narrate the whole pipeline for a formula
  witness <name>                  a concrete extension satisfying a constraint
  help                            this text
  quit                            leave";

#[cfg(test)]
mod tests {
    use super::*;

    fn run(shell: &mut Shell, lines: &[&str]) -> Vec<Reply> {
        lines.iter().map(|l| shell.exec(l)).collect()
    }

    #[test]
    fn full_session_detects_violation() {
        let mut sh = Shell::new();
        let replies = run(
            &mut sh,
            &[
                "schema pred Sub 1",
                "schema pred Fill 1",
                "constraint once: forall x. G (Sub(x) -> X G !Sub(x))",
                "insert Sub(1)",
                "commit",
                "delete Sub(1)",
                "commit",
                "insert Sub(1)",
                "commit",
                "status",
            ],
        );
        for r in &replies {
            assert!(r.is_ok(), "unexpected error: {r:?}");
        }
        let last_commit = replies[8].as_ref().unwrap();
        assert!(
            last_commit.contains("VIOLATION"),
            "resubmission must violate: {last_commit}"
        );
        assert!(replies[9].as_ref().unwrap().contains("VIOLATED"));
    }

    #[test]
    fn triggers_fire_in_session() {
        let mut sh = Shell::new();
        run(
            &mut sh,
            &[
                "schema pred Sub 1",
                "trigger dup: F (Sub(x) & X F Sub(x))",
                "insert Sub(2)",
                "commit",
                "insert Sub(2)",
            ],
        );
        let r = sh.exec("commit").unwrap();
        assert!(r.contains("TRIGGER: 'dup' fires [x=2]"), "{r}");
    }

    #[test]
    fn schema_frozen_after_first_use() {
        let mut sh = Shell::new();
        sh.exec("schema pred P 1").unwrap();
        sh.exec("constraint c: G !P(3)").unwrap();
        let err = sh.exec("schema pred Q 1").unwrap_err();
        assert!(err.contains("frozen"));
    }

    #[test]
    fn constants_resolve_in_formulas() {
        let mut sh = Shell::new();
        run(
            &mut sh,
            &[
                "schema pred P 1",
                "schema const vip = 7",
                "constraint novip: G !P(vip)",
                "insert P(7)",
            ],
        );
        let r = sh.exec("commit").unwrap();
        assert!(r.contains("VIOLATION"), "{r}");
    }

    #[test]
    fn check_command_answers_adhoc_queries() {
        let mut sh = Shell::new();
        run(&mut sh, &["schema pred P 1", "insert P(1)", "commit"]);
        let yes = sh.exec("check G !P(2)").unwrap();
        assert!(yes.contains("potentially satisfied"));
        let no = sh.exec("check G !P(1)").unwrap();
        assert!(no.contains("NOT"));
    }

    #[test]
    fn errors_are_reported_not_fatal() {
        let mut sh = Shell::new();
        assert!(sh.exec("bogus").is_err());
        assert!(sh.exec("schema pred P 0").is_err());
        sh.exec("schema pred P 2").unwrap();
        assert!(sh.exec("insert P(1)").is_err(), "arity mismatch");
        assert!(sh.exec("insert Q(1)").is_err(), "unknown predicate");
        assert!(sh.exec("constraint broken: G !P(").is_err());
        // Shell still usable afterwards.
        sh.exec("insert P(1, 2)").unwrap();
        sh.exec("commit").unwrap();
    }

    #[test]
    fn unsafe_constraint_warns() {
        let mut sh = Shell::new();
        sh.exec("schema pred P 1").unwrap();
        let r = sh
            .exec("constraint live: forall x. G (P(x) -> F !P(x))")
            .unwrap();
        assert!(r.contains("warning"), "{r}");
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let mut sh = Shell::new();
        assert_eq!(sh.exec("").unwrap(), "");
        assert_eq!(sh.exec("# a comment").unwrap(), "");
    }

    #[test]
    fn stats_report_engine_activity() {
        let mut sh = Shell::new();
        run(
            &mut sh,
            &[
                "schema pred Sub 1",
                "constraint once: forall x. G (Sub(x) -> X G !Sub(x))",
                "trigger dup: F (Sub(x) & X F Sub(x))",
                "insert Sub(1)",
                "commit",
                "delete Sub(1)",
                "commit",
            ],
        );
        let r = sh.exec("stats").unwrap();
        assert!(r.contains("appends             2"), "{r}");
        assert!(r.contains("delta regrounds"), "{r}");
        assert!(r.contains("trigger engine:"), "{r}");
        // The colon-prefixed spelling works too.
        assert!(sh.exec(":stats").unwrap().contains("appends"));
    }

    #[test]
    fn threaded_session_matches_sequential() {
        let opts = ticc_core::CheckOptions::builder()
            .threads(ticc_core::Threads::Fixed(4))
            .build();
        let script = [
            "schema pred Sub 1",
            "constraint once: forall x. G (Sub(x) -> X G !Sub(x))",
            "constraint cap: G !Sub(9)",
            "trigger dup: F (Sub(x) & X F Sub(x))",
            "insert Sub(1)",
            "commit",
            "delete Sub(1)",
            "commit",
            "insert Sub(1)",
            "commit",
            "status",
        ];
        let mut seq = Shell::new();
        let mut par = Shell::with_options(opts);
        for line in script {
            assert_eq!(seq.exec(line), par.exec(line), "diverged at '{line}'");
        }
    }

    #[test]
    fn uncached_session_matches_default() {
        // The transition cache is a pure performance knob: a session
        // run with it disabled (ticc-shell --no-transition-cache)
        // replies identically, line for line.
        let opts = ticc_core::CheckOptions::builder()
            .transition_cache(false)
            .encoding(ticc_core::Encoding::Rebuild)
            .build();
        let script = [
            "schema pred Sub 1",
            "constraint once: forall x. G (Sub(x) -> X G !Sub(x))",
            "constraint cap: G !Sub(9)",
            "trigger dup: F (Sub(x) & X F Sub(x))",
            "insert Sub(1)",
            "commit",
            "delete Sub(1)",
            "commit",
            "commit",
            "insert Sub(1)",
            "commit",
            "status",
        ];
        let mut hot = Shell::new();
        let mut cold = Shell::with_options(opts);
        for line in script {
            assert_eq!(hot.exec(line), cold.exec(line), "diverged at '{line}'");
        }
    }

    fn temp_store(tag: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("ticc-shell-{tag}-{}.wal", std::process::id()))
    }

    #[test]
    fn store_session_survives_restart() {
        let path = temp_store("restart");
        let _ = std::fs::remove_file(&path);
        {
            let (mut sh, summary) = Shell::with_store(CheckOptions::default(), &path).unwrap();
            assert!(summary.contains("opened store"), "{summary}");
            run(
                &mut sh,
                &[
                    "schema pred Sub 1",
                    "constraint once: forall x. G (Sub(x) -> X G !Sub(x))",
                    "trigger dup: F (Sub(x) & X F Sub(x))",
                    "insert Sub(1)",
                    "commit",
                ],
            );
            let r = sh.exec("checkpoint").unwrap();
            assert!(r.contains("checkpoint written"), "{r}");
            // Logged after the checkpoint: must replay on reopen.
            sh.exec("delete Sub(1)").unwrap();
            sh.exec("commit").unwrap();
        }
        let (mut sh, summary) = Shell::with_store(CheckOptions::default(), &path).unwrap();
        assert!(
            summary.contains("restored from") && summary.contains("replayed 1"),
            "{summary}"
        );
        let h = sh.exec("history").unwrap();
        assert!(h.contains("t=0: {Sub(1)}") && h.contains("t=1: {}"), "{h}");
        // The restored constraint and trigger behave as if the session
        // never stopped: resubmitting Sub(1) violates and fires.
        sh.exec("insert Sub(1)").unwrap();
        let r = sh.exec("commit").unwrap();
        assert!(r.contains("VIOLATION: 'once'"), "{r}");
        assert!(r.contains("TRIGGER: 'dup' fires [x=1]"), "{r}");
        // Compact, reopen once more: still intact.
        sh.exec("compact").unwrap();
        drop(sh);
        let (mut sh, summary) = Shell::with_store(CheckOptions::default(), &path).unwrap();
        assert!(summary.contains("replayed 0"), "{summary}");
        assert!(sh.exec("status").unwrap().contains("VIOLATED"));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn store_without_checkpoint_replays_after_schema_redeclared() {
        let path = temp_store("nockpt");
        let _ = std::fs::remove_file(&path);
        {
            let (mut sh, _) = Shell::with_store(CheckOptions::default(), &path).unwrap();
            run(&mut sh, &["schema pred P 1", "insert P(7)", "commit"]);
        }
        let (mut sh, summary) = Shell::with_store(CheckOptions::default(), &path).unwrap();
        assert!(
            summary.contains("1 logged transaction(s) will replay"),
            "{summary}"
        );
        sh.exec("schema pred P 1").unwrap();
        let h = sh.exec("history").unwrap();
        assert!(h.contains("t=0: {P(7)}"), "{h}");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn corrupt_store_reports_friendly_error() {
        let path = temp_store("corrupt");
        std::fs::write(&path, b"definitely not a ticc store").unwrap();
        let err = match Shell::with_store(CheckOptions::default(), &path) {
            Ok(_) => panic!("a corrupt file must not open as a store"),
            Err(e) => e,
        };
        assert!(err.contains("cannot open store"), "{err}");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn checkpoint_needs_a_store() {
        let mut sh = Shell::new();
        sh.exec("schema pred P 1").unwrap();
        let err = sh.exec("checkpoint").unwrap_err();
        assert!(err.contains("--store"), "{err}");
    }

    #[test]
    fn stats_json_is_versioned_and_machine_readable() {
        let path = temp_store("json");
        let _ = std::fs::remove_file(&path);
        let (mut sh, _) = Shell::with_store(CheckOptions::default(), &path).unwrap();
        run(
            &mut sh,
            &["schema pred P 1", "insert P(1)", "commit", "checkpoint"],
        );
        let j = sh.exec("stats --json").unwrap();
        assert!(j.starts_with('{') && j.ends_with('}'), "{j}");
        assert!(j.contains("\"schema\":\"ticc-engine-stats-v2\""), "{j}");
        assert!(j.contains("\"appends\":1"), "{j}");
        assert!(j.contains("\"automata\":{\"templates_compiled\":"), "{j}");
        assert!(j.contains("\"store\":{\"tx_frames\":1"), "{j}");
        assert!(j.contains("\"snapshot_frames\":1"), "{j}");
        // v2 layers the session and server objects over the v1 fields.
        assert!(j.contains("\"session\":{\"commits\":1"), "{j}");
        assert!(j.contains("\"server\":null"), "{j}");
        assert!(sh.exec("stats bogus").is_err());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn history_lists_states() {
        let mut sh = Shell::new();
        run(
            &mut sh,
            &["schema pred P 1", "insert P(1)", "commit", "commit"],
        );
        let h = sh.exec("history").unwrap();
        assert!(h.contains("t=0: {P(1)}"));
        assert!(h.contains("t=1: {P(1)}"), "snapshots persist: {h}");
    }
}
