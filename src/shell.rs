//! An interactive shell for the temporal integrity checker.
//!
//! Drives the whole stack from text commands — define a schema, register
//! constraints and triggers, stage tuple updates, commit them as
//! database states, and watch violations and trigger firings arrive at
//! the earliest possible time. The `ticc-shell` binary wraps this in a
//! stdin REPL; the engine itself is a plain `line in → report out`
//! state machine, which keeps it fully testable.
//!
//! ```text
//! schema pred Sub 1              # declare predicates (before first commit)
//! schema const vip = 7           # declare constants with interpretation
//! constraint once: forall x. G (Sub(x) -> X G !Sub(x))
//! trigger dup: F (Sub(x) & X F Sub(x))
//! insert Sub(1)                  # stage updates
//! commit                         # apply as the next state, check everything
//! status                         # constraint statuses
//! stats [--json]                 # engine counters, gauges, and timers
//! checkpoint                     # snapshot the session to the store
//! compact                        # checkpoint + rewrite the log to just it
//! check G !Sub(9)                # ad-hoc potential-satisfaction query
//! witness once                   # a concrete extension satisfying it
//! history                        # the states so far
//! help | quit
//! ```

use std::fmt::Write as _;
use std::path::Path;
use ticc_core::{
    check_potential_satisfaction, CheckOptions, ConstraintId, Engine, EngineStats, Monitor, Status,
    Trigger, TriggerEngine,
};
use ticc_fotl::parser::parse;
use ticc_fotl::Formula;
use ticc_store::codec::{formula_decode, formula_encode, parse_fact, tx_from_bytes};
use ticc_store::{Dec, Enc, Store};
use ticc_tdb::{Schema, Transaction, Value};

/// Shell outcome for one command.
pub type Reply = Result<String, String>;

enum Phase {
    /// Collecting schema declarations.
    Defining {
        preds: Vec<(String, usize)>,
        consts: Vec<(String, Value)>,
    },
    /// Schema frozen; monitor live.
    Running {
        monitor: Box<Monitor>,
        triggers: Box<TriggerEngine>,
        trigger_defs: Vec<(String, Formula)>,
        constraint_ids: Vec<(String, ConstraintId, Formula)>,
        pending: Transaction,
        pending_desc: Vec<String>,
    },
}

/// A store opened before the schema exists: held until the schema
/// freezes, then its logged transactions replay and it attaches to the
/// engine (see [`Shell::with_store`]).
struct DeferredStore {
    store: Store,
    suffix: Vec<Vec<u8>>,
}

/// The shell engine.
pub struct Shell {
    phase: Phase,
    opts: CheckOptions,
    deferred: Option<DeferredStore>,
}

impl Default for Shell {
    fn default() -> Self {
        Self::new()
    }
}

impl Shell {
    /// A fresh shell with an empty schema and default options.
    pub fn new() -> Self {
        Self::with_options(CheckOptions::default())
    }

    /// A fresh shell using `opts` for every monitor, trigger, and
    /// ad-hoc check (this is how `ticc-shell --threads N` plugs in).
    pub fn with_options(opts: CheckOptions) -> Self {
        Self {
            phase: Phase::Defining {
                preds: Vec::new(),
                consts: Vec::new(),
            },
            opts,
            deferred: None,
        }
    }

    /// A shell backed by a durable store at `path` (this is how
    /// `ticc-shell --store <path>` plugs in). Returns the shell and a
    /// human-readable summary of what recovery found.
    ///
    /// If the store holds a checkpoint, the whole session resumes from
    /// it: schema, constants, history, constraints, statuses, and the
    /// triggers saved in the shell's application blob, plus any
    /// transactions logged after the checkpoint. Without a checkpoint
    /// the shell starts in the schema-definition phase and any logged
    /// transactions replay once the schema is redeclared.
    pub fn with_store(opts: CheckOptions, path: &Path) -> Result<(Self, String), String> {
        let (store, recovered) = Store::open_or_create(path)
            .map_err(|e| format!("cannot open store {}: {e}", path.display()))?;
        let dropped = if recovered.truncated_bytes > 0 {
            format!(
                "; dropped {} corrupt trailing byte(s)",
                recovered.truncated_bytes
            )
        } else {
            String::new()
        };
        let Some(snap) = &recovered.snapshot else {
            let pending = recovered.suffix.len();
            let summary = if pending > 0 {
                format!(
                    "opened store {} (no checkpoint): {pending} logged transaction(s) will \
                     replay once the schema is redeclared{dropped}",
                    path.display()
                )
            } else {
                format!("opened store {}{dropped}", path.display())
            };
            let mut shell = Self::with_options(opts);
            shell.deferred = Some(DeferredStore {
                store,
                suffix: recovered.suffix,
            });
            return Ok((shell, summary));
        };
        let (mut engine, app) = Engine::restore_bytes(snap, opts)
            .map_err(|e| format!("cannot restore checkpoint from {}: {e}", path.display()))?;
        let schema = engine.history().schema().clone();
        for payload in &recovered.suffix {
            // The store is not attached yet, so replay is not re-logged.
            let tx = tx_from_bytes(payload, &schema)
                .map_err(|e| format!("corrupt logged transaction in {}: {e}", path.display()))?;
            engine
                .append(&tx)
                .map_err(|e| format!("cannot replay logged transaction: {e}"))?;
        }
        engine.attach_store(store);
        let constraint_ids: Vec<(String, ConstraintId, Formula)> = engine
            .constraints()
            .map(|id| (engine.name(id).to_owned(), id, engine.formula(id).clone()))
            .collect();
        let trigger_defs = decode_app(&app, &schema)?;
        let mut triggers = TriggerEngine::new(opts);
        for (name, phi) in &trigger_defs {
            triggers
                .add(Trigger {
                    name: name.clone(),
                    condition: phi.clone(),
                    action: ticc_core::Action::Log,
                })
                .map_err(|e| format!("cannot restore trigger '{name}': {e}"))?;
        }
        let summary = format!(
            "restored from {}: {} state(s), {} constraint(s), {} trigger(s), replayed {} \
             logged transaction(s){dropped}",
            path.display(),
            engine.history().len(),
            constraint_ids.len(),
            trigger_defs.len(),
            recovered.suffix.len(),
        );
        let shell = Self {
            phase: Phase::Running {
                monitor: Box::new(Monitor::from_engine(engine)),
                triggers: Box::new(triggers),
                trigger_defs,
                constraint_ids,
                pending: Transaction::new(),
                pending_desc: Vec::new(),
            },
            opts,
            deferred: None,
        };
        Ok((shell, summary))
    }

    /// Executes one command line; returns the report to show the user.
    pub fn exec(&mut self, line: &str) -> Reply {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            return Ok(String::new());
        }
        let (cmd, rest) = match line.split_once(char::is_whitespace) {
            Some((c, r)) => (c, r.trim()),
            None => (line, ""),
        };
        match cmd {
            "help" => Ok(HELP.to_owned()),
            "schema" => self.cmd_schema(rest),
            "constraint" => self.cmd_constraint(rest),
            "trigger" => self.cmd_trigger(rest),
            "insert" => self.cmd_update(rest, true),
            "delete" => self.cmd_update(rest, false),
            "commit" => self.cmd_commit(),
            "status" => self.cmd_status(),
            "stats" | ":stats" => self.cmd_stats(rest),
            "checkpoint" | ":checkpoint" => self.cmd_checkpoint(false),
            "compact" | ":compact" => self.cmd_checkpoint(true),
            "history" => self.cmd_history(),
            "check" => self.cmd_check(rest),
            "explain" => self.cmd_explain(rest),
            "witness" => self.cmd_witness(rest),
            other => Err(format!("unknown command '{other}' (try 'help')")),
        }
    }

    /// Freezes the schema and switches to the running phase.
    fn ensure_running(&mut self) -> Result<&mut Phase, String> {
        if let Phase::Defining { preds, consts } = &self.phase {
            if preds.is_empty() {
                return Err(
                    "declare at least one predicate first (schema pred <name> <arity>)".to_owned(),
                );
            }
            let mut b = Schema::builder();
            for (name, arity) in preds {
                b = b.pred(name, *arity);
            }
            for (name, _) in consts {
                b = b.constant(name);
            }
            let schema = b.build();
            let mut history = ticc_tdb::History::new(schema.clone());
            for (name, value) in consts {
                let c = schema.constant(name).expect("just declared");
                history.set_constant(c, *value);
            }
            let mut monitor = Monitor::with_history(history, self.opts);
            if let Some(deferred) = self.deferred.take() {
                // A store opened before the schema existed: replay its
                // logged transactions (not re-logged — the store is not
                // attached yet), then attach it for the session.
                for payload in &deferred.suffix {
                    let tx = tx_from_bytes(payload, &schema).map_err(|e| {
                        format!("logged transaction does not match the declared schema: {e}")
                    })?;
                    monitor
                        .append(&tx)
                        .map_err(|e| format!("cannot replay logged transaction: {e}"))?;
                }
                monitor.engine_mut().attach_store(deferred.store);
            }
            self.phase = Phase::Running {
                monitor: Box::new(monitor),
                triggers: Box::new(TriggerEngine::new(self.opts)),
                trigger_defs: Vec::new(),
                constraint_ids: Vec::new(),
                pending: Transaction::new(),
                pending_desc: Vec::new(),
            };
        }
        Ok(&mut self.phase)
    }

    fn cmd_schema(&mut self, rest: &str) -> Reply {
        let Phase::Defining { preds, consts } = &mut self.phase else {
            return Err("the schema is frozen once constraints or updates exist".to_owned());
        };
        let parts: Vec<&str> = rest.split_whitespace().collect();
        match parts.as_slice() {
            ["pred", name, arity] => {
                let arity: usize = arity.parse().map_err(|_| format!("bad arity '{arity}'"))?;
                if arity == 0 {
                    return Err("arity must be at least 1".to_owned());
                }
                if preds.iter().any(|(n, _)| n == name) || consts.iter().any(|(n, _)| n == name) {
                    return Err(format!("duplicate symbol '{name}'"));
                }
                preds.push(((*name).to_owned(), arity));
                Ok(format!("predicate {name}/{arity}"))
            }
            ["const", name, "=", value] => {
                let value: Value = value.parse().map_err(|_| format!("bad value '{value}'"))?;
                if preds.iter().any(|(n, _)| n == name) || consts.iter().any(|(n, _)| n == name) {
                    return Err(format!("duplicate symbol '{name}'"));
                }
                consts.push(((*name).to_owned(), value));
                Ok(format!("constant {name} = {value}"))
            }
            _ => {
                Err("usage: schema pred <name> <arity> | schema const <name> = <value>".to_owned())
            }
        }
    }

    fn cmd_constraint(&mut self, rest: &str) -> Reply {
        let Some((name, src)) = rest.split_once(':') else {
            return Err("usage: constraint <name>: <formula>".to_owned());
        };
        let (name, src) = (name.trim().to_owned(), src.trim().to_owned());
        let phase = self.ensure_running()?;
        let Phase::Running {
            monitor,
            constraint_ids,
            ..
        } = phase
        else {
            unreachable!()
        };
        let phi = parse(monitor.history().schema(), &src).map_err(|e| e.to_string())?;
        let class = ticc_fotl::classify::classify(&phi);
        let id = monitor
            .add_constraint(name.clone(), phi.clone())
            .map_err(|e| e.to_string())?;
        constraint_ids.push((name.clone(), id, phi.clone()));
        let mut out = format!("constraint '{name}' registered ({class:?})");
        if !ticc_fotl::classify::is_syntactically_safe(&phi) {
            let _ = write!(
                out,
                "\nwarning: not syntactically safe — Theorem 4.2's guarantee assumes a \
                 safety sentence"
            );
        }
        if let Status::Violated { at } = monitor.status(id) {
            let _ = write!(out, "\nalready VIOLATED at history length {at}");
        }
        Ok(out)
    }

    fn cmd_trigger(&mut self, rest: &str) -> Reply {
        let Some((name, src)) = rest.split_once(':') else {
            return Err("usage: trigger <name>: <condition formula>".to_owned());
        };
        let (name, src) = (name.trim().to_owned(), src.trim().to_owned());
        let phase = self.ensure_running()?;
        let Phase::Running {
            monitor,
            triggers,
            trigger_defs,
            ..
        } = phase
        else {
            unreachable!()
        };
        let condition = parse(monitor.history().schema(), &src).map_err(|e| e.to_string())?;
        triggers
            .add(Trigger {
                name: name.clone(),
                condition: condition.clone(),
                action: ticc_core::Action::Log,
            })
            .map_err(|e| e.to_string())?;
        trigger_defs.push((name.clone(), condition));
        Ok(format!("trigger '{name}' registered"))
    }

    fn cmd_update(&mut self, rest: &str, insert: bool) -> Reply {
        let phase = self.ensure_running()?;
        let Phase::Running {
            monitor,
            pending,
            pending_desc,
            ..
        } = phase
        else {
            unreachable!()
        };
        let schema = monitor.history().schema().clone();
        let (pred, tuple) = parse_fact(&schema, rest)?;
        let verb = if insert { "insert" } else { "delete" };
        let staged = std::mem::take(pending);
        *pending = if insert {
            staged.insert(pred, tuple.clone())
        } else {
            staged.delete(pred, tuple.clone())
        };
        pending_desc.push(format!("{verb} {rest}"));
        Ok(format!("staged: {verb} {rest}"))
    }

    fn cmd_commit(&mut self) -> Reply {
        let phase = self.ensure_running()?;
        let Phase::Running {
            monitor,
            triggers,
            pending,
            pending_desc,
            ..
        } = phase
        else {
            unreachable!()
        };
        let tx = std::mem::take(pending);
        let n_updates = pending_desc.len();
        pending_desc.clear();
        let events = monitor.append(&tx).map_err(|e| e.to_string())?;
        let t = monitor.history().len() - 1;
        let mut out = format!(
            "t={t}: committed {n_updates} update(s); state = {}",
            monitor.history().state(t).display()
        );
        for e in &events {
            let _ = write!(
                out,
                "\n  VIOLATION: '{}' — unavoidable after {} state(s)",
                e.name, e.at
            );
        }
        let fired = triggers
            .evaluate(monitor.history())
            .map_err(|e| e.to_string())?;
        for f in &fired {
            let subst: Vec<String> = f
                .substitution
                .iter()
                .map(|(v, val)| format!("{v}={val}"))
                .collect();
            let _ = write!(
                out,
                "\n  TRIGGER: '{}' fires [{}]",
                f.name,
                subst.join(", ")
            );
        }
        Ok(out)
    }

    fn cmd_status(&mut self) -> Reply {
        let phase = self.ensure_running()?;
        let Phase::Running {
            monitor,
            constraint_ids,
            ..
        } = phase
        else {
            unreachable!()
        };
        if constraint_ids.is_empty() {
            return Ok("no constraints registered".to_owned());
        }
        let mut out = String::new();
        for (name, id, _) in constraint_ids.iter() {
            let line = match monitor.status(*id) {
                Status::Satisfied => format!("{name}: potentially satisfied"),
                Status::Violated { at } => {
                    format!("{name}: VIOLATED (after {at} state(s))")
                }
            };
            if !out.is_empty() {
                out.push('\n');
            }
            out.push_str(&line);
        }
        Ok(out)
    }

    fn cmd_stats(&mut self, rest: &str) -> Reply {
        let json = match rest {
            "" => false,
            "--json" => true,
            other => return Err(format!("usage: stats [--json] (got '{other}')")),
        };
        let phase = self.ensure_running()?;
        let Phase::Running {
            monitor, triggers, ..
        } = phase
        else {
            unreachable!()
        };
        if json {
            return Ok(stats_json(&monitor.engine_stats()));
        }
        let mut out = monitor.engine_stats().render();
        let ts = triggers.stats();
        if ts.grounds > 0 {
            let _ = write!(
                out,
                "\ntrigger engine:\n  one-shot checks     {}\n  ground time         {:?}\n  \
                 sat time            {:?}",
                ts.grounds, ts.ground_time, ts.sat_time
            );
        }
        Ok(out)
    }

    /// `checkpoint` writes a snapshot of the whole session (schema,
    /// history, constraints, residues, triggers) to the attached store;
    /// `compact` additionally rewrites the log so it holds nothing but
    /// that snapshot.
    fn cmd_checkpoint(&mut self, compact: bool) -> Reply {
        let phase = self.ensure_running()?;
        let Phase::Running {
            monitor,
            trigger_defs,
            ..
        } = phase
        else {
            unreachable!()
        };
        let app = encode_app(trigger_defs);
        let engine = monitor.engine_mut();
        if engine.store().is_none() {
            return Err("no store attached (run the shell with --store <path>)".to_owned());
        }
        if compact {
            engine.compact(&app).map_err(|e| e.to_string())?;
        } else {
            engine.checkpoint(&app).map_err(|e| e.to_string())?;
        }
        let stats = engine.store_stats().unwrap_or_default();
        Ok(if compact {
            format!(
                "log compacted to a single {} byte checkpoint",
                stats.last_snapshot_bytes
            )
        } else {
            format!(
                "checkpoint written ({} byte snapshot)",
                stats.last_snapshot_bytes
            )
        })
    }

    fn cmd_history(&mut self) -> Reply {
        let phase = self.ensure_running()?;
        let Phase::Running { monitor, .. } = phase else {
            unreachable!()
        };
        let h = monitor.history();
        if h.is_empty() {
            return Ok("history is empty (use insert/delete + commit)".to_owned());
        }
        let mut out = String::new();
        for (t, s) in h.states().iter().enumerate() {
            if t > 0 {
                out.push('\n');
            }
            let _ = write!(out, "t={t}: {}", s.display());
        }
        Ok(out)
    }

    fn cmd_check(&mut self, rest: &str) -> Reply {
        let opts = self.opts;
        let phase = self.ensure_running()?;
        let Phase::Running { monitor, .. } = phase else {
            unreachable!()
        };
        let phi = parse(monitor.history().schema(), rest).map_err(|e| e.to_string())?;
        let out = check_potential_satisfaction(monitor.history(), &phi, &opts)
            .map_err(|e| e.to_string())?;
        Ok(if out.potentially_satisfied {
            "potentially satisfied (an extension exists)".to_owned()
        } else {
            "NOT potentially satisfied (no extension can satisfy it)".to_owned()
        })
    }

    fn cmd_explain(&mut self, rest: &str) -> Reply {
        let opts = self.opts;
        let phase = self.ensure_running()?;
        let Phase::Running { monitor, .. } = phase else {
            unreachable!()
        };
        let phi = parse(monitor.history().schema(), rest).map_err(|e| e.to_string())?;
        Ok(ticc_core::explain(monitor.history(), &phi, &opts))
    }

    fn cmd_witness(&mut self, rest: &str) -> Reply {
        let opts = self.opts;
        let phase = self.ensure_running()?;
        let Phase::Running {
            monitor,
            constraint_ids,
            ..
        } = phase
        else {
            unreachable!()
        };
        let name = rest.trim();
        let Some((_, _, phi)) = constraint_ids.iter().find(|(n, _, _)| n == name) else {
            return Err(format!("no constraint named '{name}'"));
        };
        let out = check_potential_satisfaction(monitor.history(), phi, &opts)
            .map_err(|e| e.to_string())?;
        let Some(w) = out.witness else {
            return Ok(format!(
                "'{name}' is violated: no extension exists, hence no witness"
            ));
        };
        let mut text =
            format!("one extension satisfying '{name}' (append after the current history):");
        for (i, s) in w.prefix.iter().enumerate() {
            let _ = write!(text, "\n  +{}: {}", i + 1, s.display());
        }
        for (i, s) in w.cycle.iter().enumerate() {
            let _ = write!(
                text,
                "\n  +{}: {}  (repeat forever)",
                w.prefix.len() + i + 1,
                s.display()
            );
        }
        Ok(text)
    }
}

/// Version tag of the shell's application blob inside checkpoints
/// (currently: the registered triggers).
const APP_VERSION: u32 = 1;

/// Encodes the shell's trigger definitions into the checkpoint's
/// application blob.
fn encode_app(trigger_defs: &[(String, Formula)]) -> Vec<u8> {
    let mut e = Enc::new();
    e.u32(APP_VERSION);
    e.usize(trigger_defs.len());
    for (name, phi) in trigger_defs {
        e.str(name);
        formula_encode(&mut e, phi);
    }
    e.into_bytes()
}

/// Decodes the application blob back into trigger definitions. An
/// empty blob (a checkpoint written by a non-shell embedder) simply
/// restores no triggers.
fn decode_app(bytes: &[u8], schema: &Schema) -> Result<Vec<(String, Formula)>, String> {
    if bytes.is_empty() {
        return Ok(Vec::new());
    }
    let fail = |e: ticc_store::StoreError| format!("corrupt shell state in checkpoint: {e}");
    let mut d = Dec::new(bytes);
    let version = d.u32().map_err(fail)?;
    if version != APP_VERSION {
        return Err(format!(
            "checkpoint written by a newer shell (app blob version {version}, \
             this shell speaks {APP_VERSION})"
        ));
    }
    let n = d.usize().map_err(fail)?;
    let mut defs = Vec::with_capacity(n.min(1024));
    for _ in 0..n {
        let name = d.str().map_err(fail)?.to_owned();
        let phi = formula_decode(&mut d, schema).map_err(fail)?;
        defs.push((name, phi));
    }
    d.finish().map_err(fail)?;
    Ok(defs)
}

/// Renders the engine statistics as a single JSON object. The format
/// is versioned through the `"schema"` field so scripts can detect
/// incompatible changes; durations are nanoseconds.
fn stats_json(s: &EngineStats) -> String {
    let mut o = String::from("{");
    let _ = write!(o, "\"schema\":\"ticc-engine-stats-v1\"");
    let _ = write!(o, ",\"appends\":{}", s.appends);
    let _ = write!(o, ",\"fast_appends\":{}", s.fast_appends);
    let _ = write!(o, ",\"grounds\":{}", s.grounds);
    let _ = write!(o, ",\"regrounds\":{}", s.regrounds);
    let _ = write!(o, ",\"delta_grounds\":{}", s.delta_grounds);
    let _ = write!(o, ",\"new_conjuncts\":{}", s.new_conjuncts);
    let _ = write!(o, ",\"replayed_conjuncts\":{}", s.replayed_conjuncts);
    let _ = write!(o, ",\"progress_steps\":{}", s.progress_steps);
    let _ = write!(o, ",\"encode_patched_atoms\":{}", s.encode_patched_atoms);
    let _ = write!(o, ",\"sat_checks\":{}", s.sat_checks);
    let _ = write!(
        o,
        ",\"automata\":{{\"templates_compiled\":{},\"automaton_states\":{},\
         \"automaton_insts\":{},\"automaton_appends\":{},\"automaton_steps\":{},\
         \"compile_time_ns\":{}}}",
        s.templates_compiled,
        s.automaton_states,
        s.automaton_insts,
        s.automaton_appends,
        s.automaton_steps,
        s.automaton_compile_time.as_nanos()
    );
    let _ = write!(
        o,
        ",\"cache\":{{\"sat_hits\":{},\"sat_evictions\":{},\"transition_hits\":{},\
         \"transition_misses\":{},\"transition_evictions\":{},\"letter_index_len\":{}}}",
        s.cache.sat_hits,
        s.cache.sat_evictions,
        s.cache.transition_hits,
        s.cache.transition_misses,
        s.cache.transition_evictions,
        s.cache.letter_index_len
    );
    let _ = write!(
        o,
        ",\"store\":{{\"tx_frames\":{},\"snapshot_frames\":{},\"bytes_written\":{},\
         \"fsyncs\":{},\"last_snapshot_bytes\":{},\"recovered_txs\":{},\"truncated_bytes\":{}}}",
        s.store.tx_frames,
        s.store.snapshot_frames,
        s.store.bytes_written,
        s.store.fsyncs,
        s.store.last_snapshot_bytes,
        s.store.recovered_txs,
        s.store.truncated_bytes
    );
    let _ = write!(o, ",\"letters\":{}", s.letters);
    let _ = write!(o, ",\"arena_nodes\":{}", s.arena_nodes);
    let _ = write!(o, ",\"mappings\":{}", s.mappings);
    let _ = write!(o, ",\"inst_enumerated\":{}", s.inst_enumerated);
    let _ = write!(o, ",\"inst_pruned\":{}", s.inst_pruned);
    let _ = write!(o, ",\"inst_shared\":{}", s.inst_shared);
    let _ = write!(o, ",\"ground_time_ns\":{}", s.ground_time.as_nanos());
    let _ = write!(
        o,
        ",\"index_build_time_ns\":{}",
        s.index_build_time.as_nanos()
    );
    let _ = write!(o, ",\"progress_time_ns\":{}", s.progress_time.as_nanos());
    let _ = write!(o, ",\"sat_time_ns\":{}", s.sat_time.as_nanos());
    let _ = write!(o, ",\"par_phases\":{}", s.par_phases);
    let _ = write!(o, ",\"par_workers\":{}", s.par_workers);
    let _ = write!(o, ",\"par_time_ns\":{}", s.par_time.as_nanos());
    let _ = write!(o, ",\"par_busy_time_ns\":{}", s.par_busy_time.as_nanos());
    o.push('}');
    o
}

const HELP: &str = "commands:
  schema pred <name> <arity>      declare a predicate (before first commit)
  schema const <name> = <value>   declare a rigid constant
  constraint <name>: <formula>    register a universal safety constraint
  trigger <name>: <formula>       register a condition-action trigger (Log)
  insert <Pred>(<v>, …)           stage a tuple insertion
  delete <Pred>(<v>, …)           stage a tuple deletion
  commit                          apply staged updates as the next state
  status                          constraint statuses
  stats [--json]                  engine counters, gauges, and timers
  checkpoint                      snapshot the session to the attached store
  compact                         checkpoint, then rewrite the log to just it
  history                         print all states
  check <formula>                 ad-hoc potential-satisfaction query
  explain <formula>               narrate the whole pipeline for a formula
  witness <name>                  a concrete extension satisfying a constraint
  help                            this text
  quit                            leave";

#[cfg(test)]
mod tests {
    use super::*;

    fn run(shell: &mut Shell, lines: &[&str]) -> Vec<Reply> {
        lines.iter().map(|l| shell.exec(l)).collect()
    }

    #[test]
    fn full_session_detects_violation() {
        let mut sh = Shell::new();
        let replies = run(
            &mut sh,
            &[
                "schema pred Sub 1",
                "schema pred Fill 1",
                "constraint once: forall x. G (Sub(x) -> X G !Sub(x))",
                "insert Sub(1)",
                "commit",
                "delete Sub(1)",
                "commit",
                "insert Sub(1)",
                "commit",
                "status",
            ],
        );
        for r in &replies {
            assert!(r.is_ok(), "unexpected error: {r:?}");
        }
        let last_commit = replies[8].as_ref().unwrap();
        assert!(
            last_commit.contains("VIOLATION"),
            "resubmission must violate: {last_commit}"
        );
        assert!(replies[9].as_ref().unwrap().contains("VIOLATED"));
    }

    #[test]
    fn triggers_fire_in_session() {
        let mut sh = Shell::new();
        run(
            &mut sh,
            &[
                "schema pred Sub 1",
                "trigger dup: F (Sub(x) & X F Sub(x))",
                "insert Sub(2)",
                "commit",
                "insert Sub(2)",
            ],
        );
        let r = sh.exec("commit").unwrap();
        assert!(r.contains("TRIGGER: 'dup' fires [x=2]"), "{r}");
    }

    #[test]
    fn schema_frozen_after_first_use() {
        let mut sh = Shell::new();
        sh.exec("schema pred P 1").unwrap();
        sh.exec("constraint c: G !P(3)").unwrap();
        let err = sh.exec("schema pred Q 1").unwrap_err();
        assert!(err.contains("frozen"));
    }

    #[test]
    fn constants_resolve_in_formulas() {
        let mut sh = Shell::new();
        run(
            &mut sh,
            &[
                "schema pred P 1",
                "schema const vip = 7",
                "constraint novip: G !P(vip)",
                "insert P(7)",
            ],
        );
        let r = sh.exec("commit").unwrap();
        assert!(r.contains("VIOLATION"), "{r}");
    }

    #[test]
    fn check_command_answers_adhoc_queries() {
        let mut sh = Shell::new();
        run(&mut sh, &["schema pred P 1", "insert P(1)", "commit"]);
        let yes = sh.exec("check G !P(2)").unwrap();
        assert!(yes.contains("potentially satisfied"));
        let no = sh.exec("check G !P(1)").unwrap();
        assert!(no.contains("NOT"));
    }

    #[test]
    fn errors_are_reported_not_fatal() {
        let mut sh = Shell::new();
        assert!(sh.exec("bogus").is_err());
        assert!(sh.exec("schema pred P 0").is_err());
        sh.exec("schema pred P 2").unwrap();
        assert!(sh.exec("insert P(1)").is_err(), "arity mismatch");
        assert!(sh.exec("insert Q(1)").is_err(), "unknown predicate");
        assert!(sh.exec("constraint broken: G !P(").is_err());
        // Shell still usable afterwards.
        sh.exec("insert P(1, 2)").unwrap();
        sh.exec("commit").unwrap();
    }

    #[test]
    fn unsafe_constraint_warns() {
        let mut sh = Shell::new();
        sh.exec("schema pred P 1").unwrap();
        let r = sh
            .exec("constraint live: forall x. G (P(x) -> F !P(x))")
            .unwrap();
        assert!(r.contains("warning"), "{r}");
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let mut sh = Shell::new();
        assert_eq!(sh.exec("").unwrap(), "");
        assert_eq!(sh.exec("# a comment").unwrap(), "");
    }

    #[test]
    fn stats_report_engine_activity() {
        let mut sh = Shell::new();
        run(
            &mut sh,
            &[
                "schema pred Sub 1",
                "constraint once: forall x. G (Sub(x) -> X G !Sub(x))",
                "trigger dup: F (Sub(x) & X F Sub(x))",
                "insert Sub(1)",
                "commit",
                "delete Sub(1)",
                "commit",
            ],
        );
        let r = sh.exec("stats").unwrap();
        assert!(r.contains("appends             2"), "{r}");
        assert!(r.contains("delta regrounds"), "{r}");
        assert!(r.contains("trigger engine:"), "{r}");
        // The colon-prefixed spelling works too.
        assert!(sh.exec(":stats").unwrap().contains("appends"));
    }

    #[test]
    fn threaded_session_matches_sequential() {
        let opts = ticc_core::CheckOptions::builder()
            .threads(ticc_core::Threads::Fixed(4))
            .build();
        let script = [
            "schema pred Sub 1",
            "constraint once: forall x. G (Sub(x) -> X G !Sub(x))",
            "constraint cap: G !Sub(9)",
            "trigger dup: F (Sub(x) & X F Sub(x))",
            "insert Sub(1)",
            "commit",
            "delete Sub(1)",
            "commit",
            "insert Sub(1)",
            "commit",
            "status",
        ];
        let mut seq = Shell::new();
        let mut par = Shell::with_options(opts);
        for line in script {
            assert_eq!(seq.exec(line), par.exec(line), "diverged at '{line}'");
        }
    }

    #[test]
    fn uncached_session_matches_default() {
        // The transition cache is a pure performance knob: a session
        // run with it disabled (ticc-shell --no-transition-cache)
        // replies identically, line for line.
        let opts = ticc_core::CheckOptions::builder()
            .transition_cache(false)
            .encoding(ticc_core::Encoding::Rebuild)
            .build();
        let script = [
            "schema pred Sub 1",
            "constraint once: forall x. G (Sub(x) -> X G !Sub(x))",
            "constraint cap: G !Sub(9)",
            "trigger dup: F (Sub(x) & X F Sub(x))",
            "insert Sub(1)",
            "commit",
            "delete Sub(1)",
            "commit",
            "commit",
            "insert Sub(1)",
            "commit",
            "status",
        ];
        let mut hot = Shell::new();
        let mut cold = Shell::with_options(opts);
        for line in script {
            assert_eq!(hot.exec(line), cold.exec(line), "diverged at '{line}'");
        }
    }

    fn temp_store(tag: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("ticc-shell-{tag}-{}.wal", std::process::id()))
    }

    #[test]
    fn store_session_survives_restart() {
        let path = temp_store("restart");
        let _ = std::fs::remove_file(&path);
        {
            let (mut sh, summary) = Shell::with_store(CheckOptions::default(), &path).unwrap();
            assert!(summary.contains("opened store"), "{summary}");
            run(
                &mut sh,
                &[
                    "schema pred Sub 1",
                    "constraint once: forall x. G (Sub(x) -> X G !Sub(x))",
                    "trigger dup: F (Sub(x) & X F Sub(x))",
                    "insert Sub(1)",
                    "commit",
                ],
            );
            let r = sh.exec("checkpoint").unwrap();
            assert!(r.contains("checkpoint written"), "{r}");
            // Logged after the checkpoint: must replay on reopen.
            sh.exec("delete Sub(1)").unwrap();
            sh.exec("commit").unwrap();
        }
        let (mut sh, summary) = Shell::with_store(CheckOptions::default(), &path).unwrap();
        assert!(
            summary.contains("restored from") && summary.contains("replayed 1"),
            "{summary}"
        );
        let h = sh.exec("history").unwrap();
        assert!(h.contains("t=0: {Sub(1)}") && h.contains("t=1: {}"), "{h}");
        // The restored constraint and trigger behave as if the session
        // never stopped: resubmitting Sub(1) violates and fires.
        sh.exec("insert Sub(1)").unwrap();
        let r = sh.exec("commit").unwrap();
        assert!(r.contains("VIOLATION: 'once'"), "{r}");
        assert!(r.contains("TRIGGER: 'dup' fires [x=1]"), "{r}");
        // Compact, reopen once more: still intact.
        sh.exec("compact").unwrap();
        drop(sh);
        let (mut sh, summary) = Shell::with_store(CheckOptions::default(), &path).unwrap();
        assert!(summary.contains("replayed 0"), "{summary}");
        assert!(sh.exec("status").unwrap().contains("VIOLATED"));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn store_without_checkpoint_replays_after_schema_redeclared() {
        let path = temp_store("nockpt");
        let _ = std::fs::remove_file(&path);
        {
            let (mut sh, _) = Shell::with_store(CheckOptions::default(), &path).unwrap();
            run(&mut sh, &["schema pred P 1", "insert P(7)", "commit"]);
        }
        let (mut sh, summary) = Shell::with_store(CheckOptions::default(), &path).unwrap();
        assert!(
            summary.contains("1 logged transaction(s) will replay"),
            "{summary}"
        );
        sh.exec("schema pred P 1").unwrap();
        let h = sh.exec("history").unwrap();
        assert!(h.contains("t=0: {P(7)}"), "{h}");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn corrupt_store_reports_friendly_error() {
        let path = temp_store("corrupt");
        std::fs::write(&path, b"definitely not a ticc store").unwrap();
        let err = match Shell::with_store(CheckOptions::default(), &path) {
            Ok(_) => panic!("a corrupt file must not open as a store"),
            Err(e) => e,
        };
        assert!(err.contains("cannot open store"), "{err}");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn checkpoint_needs_a_store() {
        let mut sh = Shell::new();
        sh.exec("schema pred P 1").unwrap();
        let err = sh.exec("checkpoint").unwrap_err();
        assert!(err.contains("--store"), "{err}");
    }

    #[test]
    fn stats_json_is_versioned_and_machine_readable() {
        let path = temp_store("json");
        let _ = std::fs::remove_file(&path);
        let (mut sh, _) = Shell::with_store(CheckOptions::default(), &path).unwrap();
        run(
            &mut sh,
            &["schema pred P 1", "insert P(1)", "commit", "checkpoint"],
        );
        let j = sh.exec("stats --json").unwrap();
        assert!(j.starts_with('{') && j.ends_with('}'), "{j}");
        assert!(j.contains("\"schema\":\"ticc-engine-stats-v1\""), "{j}");
        assert!(j.contains("\"appends\":1"), "{j}");
        assert!(j.contains("\"automata\":{\"templates_compiled\":"), "{j}");
        assert!(j.contains("\"store\":{\"tx_frames\":1"), "{j}");
        assert!(j.contains("\"snapshot_frames\":1"), "{j}");
        assert!(sh.exec("stats bogus").is_err());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn history_lists_states() {
        let mut sh = Shell::new();
        run(
            &mut sh,
            &["schema pred P 1", "insert P(1)", "commit", "commit"],
        );
        let h = sh.exec("history").unwrap();
        assert!(h.contains("t=0: {P(1)}"));
        assert!(h.contains("t=1: {P(1)}"), "snapshots persist: {h}");
    }
}
