//! An interactive shell for the temporal integrity checker.
//!
//! Drives the whole stack from text commands — define a schema, register
//! constraints and triggers, stage tuple updates, commit them as
//! database states, and watch violations and trigger firings arrive at
//! the earliest possible time. The `ticc-shell` binary wraps this in a
//! stdin REPL; the engine itself is a plain `line in → report out`
//! state machine, which keeps it fully testable.
//!
//! ```text
//! schema pred Sub 1              # declare predicates (before first commit)
//! schema const vip = 7           # declare constants with interpretation
//! constraint once: forall x. G (Sub(x) -> X G !Sub(x))
//! trigger dup: F (Sub(x) & X F Sub(x))
//! insert Sub(1)                  # stage updates
//! commit                         # apply as the next state, check everything
//! status                         # constraint statuses
//! stats                          # engine counters, gauges, and timers
//! check G !Sub(9)                # ad-hoc potential-satisfaction query
//! witness once                   # a concrete extension satisfying it
//! history                        # the states so far
//! help | quit
//! ```

use std::fmt::Write as _;
use ticc_core::{
    check_potential_satisfaction, CheckOptions, ConstraintId, Monitor, Status, Trigger,
    TriggerEngine,
};
use ticc_fotl::parser::parse;
use ticc_tdb::{Schema, Transaction, Value};

/// Shell outcome for one command.
pub type Reply = Result<String, String>;

enum Phase {
    /// Collecting schema declarations.
    Defining {
        preds: Vec<(String, usize)>,
        consts: Vec<(String, Value)>,
    },
    /// Schema frozen; monitor live.
    Running {
        monitor: Box<Monitor>,
        triggers: Box<TriggerEngine>,
        trigger_names: Vec<String>,
        constraint_ids: Vec<(String, ConstraintId, ticc_fotl::Formula)>,
        pending: Transaction,
        pending_desc: Vec<String>,
    },
}

/// The shell engine.
pub struct Shell {
    phase: Phase,
    opts: CheckOptions,
}

impl Default for Shell {
    fn default() -> Self {
        Self::new()
    }
}

impl Shell {
    /// A fresh shell with an empty schema and default options.
    pub fn new() -> Self {
        Self::with_options(CheckOptions::default())
    }

    /// A fresh shell using `opts` for every monitor, trigger, and
    /// ad-hoc check (this is how `ticc-shell --threads N` plugs in).
    pub fn with_options(opts: CheckOptions) -> Self {
        Self {
            phase: Phase::Defining {
                preds: Vec::new(),
                consts: Vec::new(),
            },
            opts,
        }
    }

    /// Executes one command line; returns the report to show the user.
    pub fn exec(&mut self, line: &str) -> Reply {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            return Ok(String::new());
        }
        let (cmd, rest) = match line.split_once(char::is_whitespace) {
            Some((c, r)) => (c, r.trim()),
            None => (line, ""),
        };
        match cmd {
            "help" => Ok(HELP.to_owned()),
            "schema" => self.cmd_schema(rest),
            "constraint" => self.cmd_constraint(rest),
            "trigger" => self.cmd_trigger(rest),
            "insert" => self.cmd_update(rest, true),
            "delete" => self.cmd_update(rest, false),
            "commit" => self.cmd_commit(),
            "status" => self.cmd_status(),
            "stats" | ":stats" => self.cmd_stats(),
            "history" => self.cmd_history(),
            "check" => self.cmd_check(rest),
            "explain" => self.cmd_explain(rest),
            "witness" => self.cmd_witness(rest),
            other => Err(format!("unknown command '{other}' (try 'help')")),
        }
    }

    /// Freezes the schema and switches to the running phase.
    fn ensure_running(&mut self) -> Result<&mut Phase, String> {
        if let Phase::Defining { preds, consts } = &self.phase {
            if preds.is_empty() {
                return Err(
                    "declare at least one predicate first (schema pred <name> <arity>)".to_owned(),
                );
            }
            let mut b = Schema::builder();
            for (name, arity) in preds {
                b = b.pred(name, *arity);
            }
            for (name, _) in consts {
                b = b.constant(name);
            }
            let schema = b.build();
            let mut history = ticc_tdb::History::new(schema.clone());
            for (name, value) in consts {
                let c = schema.constant(name).expect("just declared");
                history.set_constant(c, *value);
            }
            self.phase = Phase::Running {
                monitor: Box::new(Monitor::with_history(history, self.opts)),
                triggers: Box::new(TriggerEngine::new(self.opts)),
                trigger_names: Vec::new(),
                constraint_ids: Vec::new(),
                pending: Transaction::new(),
                pending_desc: Vec::new(),
            };
        }
        Ok(&mut self.phase)
    }

    fn cmd_schema(&mut self, rest: &str) -> Reply {
        let Phase::Defining { preds, consts } = &mut self.phase else {
            return Err("the schema is frozen once constraints or updates exist".to_owned());
        };
        let parts: Vec<&str> = rest.split_whitespace().collect();
        match parts.as_slice() {
            ["pred", name, arity] => {
                let arity: usize = arity.parse().map_err(|_| format!("bad arity '{arity}'"))?;
                if arity == 0 {
                    return Err("arity must be at least 1".to_owned());
                }
                if preds.iter().any(|(n, _)| n == name) || consts.iter().any(|(n, _)| n == name) {
                    return Err(format!("duplicate symbol '{name}'"));
                }
                preds.push(((*name).to_owned(), arity));
                Ok(format!("predicate {name}/{arity}"))
            }
            ["const", name, "=", value] => {
                let value: Value = value.parse().map_err(|_| format!("bad value '{value}'"))?;
                if preds.iter().any(|(n, _)| n == name) || consts.iter().any(|(n, _)| n == name) {
                    return Err(format!("duplicate symbol '{name}'"));
                }
                consts.push(((*name).to_owned(), value));
                Ok(format!("constant {name} = {value}"))
            }
            _ => {
                Err("usage: schema pred <name> <arity> | schema const <name> = <value>".to_owned())
            }
        }
    }

    fn cmd_constraint(&mut self, rest: &str) -> Reply {
        let Some((name, src)) = rest.split_once(':') else {
            return Err("usage: constraint <name>: <formula>".to_owned());
        };
        let (name, src) = (name.trim().to_owned(), src.trim().to_owned());
        let phase = self.ensure_running()?;
        let Phase::Running {
            monitor,
            constraint_ids,
            ..
        } = phase
        else {
            unreachable!()
        };
        let phi = parse(monitor.history().schema(), &src).map_err(|e| e.to_string())?;
        let class = ticc_fotl::classify::classify(&phi);
        let id = monitor
            .add_constraint(name.clone(), phi.clone())
            .map_err(|e| e.to_string())?;
        constraint_ids.push((name.clone(), id, phi.clone()));
        let mut out = format!("constraint '{name}' registered ({class:?})");
        if !ticc_fotl::classify::is_syntactically_safe(&phi) {
            let _ = write!(
                out,
                "\nwarning: not syntactically safe — Theorem 4.2's guarantee assumes a \
                 safety sentence"
            );
        }
        if let Status::Violated { at } = monitor.status(id) {
            let _ = write!(out, "\nalready VIOLATED at history length {at}");
        }
        Ok(out)
    }

    fn cmd_trigger(&mut self, rest: &str) -> Reply {
        let Some((name, src)) = rest.split_once(':') else {
            return Err("usage: trigger <name>: <condition formula>".to_owned());
        };
        let (name, src) = (name.trim().to_owned(), src.trim().to_owned());
        let phase = self.ensure_running()?;
        let Phase::Running {
            monitor,
            triggers,
            trigger_names,
            ..
        } = phase
        else {
            unreachable!()
        };
        let condition = parse(monitor.history().schema(), &src).map_err(|e| e.to_string())?;
        triggers
            .add(Trigger {
                name: name.clone(),
                condition,
                action: ticc_core::Action::Log,
            })
            .map_err(|e| e.to_string())?;
        trigger_names.push(name.clone());
        Ok(format!("trigger '{name}' registered"))
    }

    fn cmd_update(&mut self, rest: &str, insert: bool) -> Reply {
        let phase = self.ensure_running()?;
        let Phase::Running {
            monitor,
            pending,
            pending_desc,
            ..
        } = phase
        else {
            unreachable!()
        };
        let schema = monitor.history().schema().clone();
        let (pred, tuple) = parse_fact(&schema, rest)?;
        let verb = if insert { "insert" } else { "delete" };
        let staged = std::mem::take(pending);
        *pending = if insert {
            staged.insert(pred, tuple.clone())
        } else {
            staged.delete(pred, tuple.clone())
        };
        pending_desc.push(format!("{verb} {rest}"));
        Ok(format!("staged: {verb} {rest}"))
    }

    fn cmd_commit(&mut self) -> Reply {
        let phase = self.ensure_running()?;
        let Phase::Running {
            monitor,
            triggers,
            pending,
            pending_desc,
            ..
        } = phase
        else {
            unreachable!()
        };
        let tx = std::mem::take(pending);
        let n_updates = pending_desc.len();
        pending_desc.clear();
        let events = monitor.append(&tx).map_err(|e| e.to_string())?;
        let t = monitor.history().len() - 1;
        let mut out = format!(
            "t={t}: committed {n_updates} update(s); state = {}",
            monitor.history().state(t).display()
        );
        for e in &events {
            let _ = write!(
                out,
                "\n  VIOLATION: '{}' — unavoidable after {} state(s)",
                e.name, e.at
            );
        }
        let fired = triggers
            .evaluate(monitor.history())
            .map_err(|e| e.to_string())?;
        for f in &fired {
            let subst: Vec<String> = f
                .substitution
                .iter()
                .map(|(v, val)| format!("{v}={val}"))
                .collect();
            let _ = write!(
                out,
                "\n  TRIGGER: '{}' fires [{}]",
                f.name,
                subst.join(", ")
            );
        }
        Ok(out)
    }

    fn cmd_status(&mut self) -> Reply {
        let phase = self.ensure_running()?;
        let Phase::Running {
            monitor,
            constraint_ids,
            ..
        } = phase
        else {
            unreachable!()
        };
        if constraint_ids.is_empty() {
            return Ok("no constraints registered".to_owned());
        }
        let mut out = String::new();
        for (name, id, _) in constraint_ids.iter() {
            let line = match monitor.status(*id) {
                Status::Satisfied => format!("{name}: potentially satisfied"),
                Status::Violated { at } => {
                    format!("{name}: VIOLATED (after {at} state(s))")
                }
            };
            if !out.is_empty() {
                out.push('\n');
            }
            out.push_str(&line);
        }
        Ok(out)
    }

    fn cmd_stats(&mut self) -> Reply {
        let phase = self.ensure_running()?;
        let Phase::Running {
            monitor, triggers, ..
        } = phase
        else {
            unreachable!()
        };
        let mut out = monitor.engine_stats().render();
        let ts = triggers.stats();
        if ts.grounds > 0 {
            let _ = write!(
                out,
                "\ntrigger engine:\n  one-shot checks     {}\n  ground time         {:?}\n  \
                 sat time            {:?}",
                ts.grounds, ts.ground_time, ts.sat_time
            );
        }
        Ok(out)
    }

    fn cmd_history(&mut self) -> Reply {
        let phase = self.ensure_running()?;
        let Phase::Running { monitor, .. } = phase else {
            unreachable!()
        };
        let h = monitor.history();
        if h.is_empty() {
            return Ok("history is empty (use insert/delete + commit)".to_owned());
        }
        let mut out = String::new();
        for (t, s) in h.states().iter().enumerate() {
            if t > 0 {
                out.push('\n');
            }
            let _ = write!(out, "t={t}: {}", s.display());
        }
        Ok(out)
    }

    fn cmd_check(&mut self, rest: &str) -> Reply {
        let opts = self.opts;
        let phase = self.ensure_running()?;
        let Phase::Running { monitor, .. } = phase else {
            unreachable!()
        };
        let phi = parse(monitor.history().schema(), rest).map_err(|e| e.to_string())?;
        let out = check_potential_satisfaction(monitor.history(), &phi, &opts)
            .map_err(|e| e.to_string())?;
        Ok(if out.potentially_satisfied {
            "potentially satisfied (an extension exists)".to_owned()
        } else {
            "NOT potentially satisfied (no extension can satisfy it)".to_owned()
        })
    }

    fn cmd_explain(&mut self, rest: &str) -> Reply {
        let opts = self.opts;
        let phase = self.ensure_running()?;
        let Phase::Running { monitor, .. } = phase else {
            unreachable!()
        };
        let phi = parse(monitor.history().schema(), rest).map_err(|e| e.to_string())?;
        Ok(ticc_core::explain(monitor.history(), &phi, &opts))
    }

    fn cmd_witness(&mut self, rest: &str) -> Reply {
        let opts = self.opts;
        let phase = self.ensure_running()?;
        let Phase::Running {
            monitor,
            constraint_ids,
            ..
        } = phase
        else {
            unreachable!()
        };
        let name = rest.trim();
        let Some((_, _, phi)) = constraint_ids.iter().find(|(n, _, _)| n == name) else {
            return Err(format!("no constraint named '{name}'"));
        };
        let out = check_potential_satisfaction(monitor.history(), phi, &opts)
            .map_err(|e| e.to_string())?;
        let Some(w) = out.witness else {
            return Ok(format!(
                "'{name}' is violated: no extension exists, hence no witness"
            ));
        };
        let mut text =
            format!("one extension satisfying '{name}' (append after the current history):");
        for (i, s) in w.prefix.iter().enumerate() {
            let _ = write!(text, "\n  +{}: {}", i + 1, s.display());
        }
        for (i, s) in w.cycle.iter().enumerate() {
            let _ = write!(
                text,
                "\n  +{}: {}  (repeat forever)",
                w.prefix.len() + i + 1,
                s.display()
            );
        }
        Ok(text)
    }
}

fn parse_fact(schema: &Schema, src: &str) -> Result<(ticc_tdb::PredId, Vec<Value>), String> {
    let src = src.trim();
    let Some(open) = src.find('(') else {
        return Err("usage: insert <Pred>(<v1>, <v2>, …)".to_owned());
    };
    if !src.ends_with(')') {
        return Err("missing ')'".to_owned());
    }
    let name = src[..open].trim();
    let pred = schema
        .pred(name)
        .ok_or_else(|| format!("unknown predicate '{name}'"))?;
    let args: Result<Vec<Value>, String> = src[open + 1..src.len() - 1]
        .split(',')
        .map(|a| {
            a.trim()
                .parse::<Value>()
                .map_err(|_| format!("bad value '{}' (facts take numeric elements)", a.trim()))
        })
        .collect();
    let args = args?;
    if args.len() != schema.arity(pred) {
        return Err(format!(
            "{name} expects {} argument(s), got {}",
            schema.arity(pred),
            args.len()
        ));
    }
    Ok((pred, args))
}

const HELP: &str = "commands:
  schema pred <name> <arity>      declare a predicate (before first commit)
  schema const <name> = <value>   declare a rigid constant
  constraint <name>: <formula>    register a universal safety constraint
  trigger <name>: <formula>       register a condition-action trigger (Log)
  insert <Pred>(<v>, …)           stage a tuple insertion
  delete <Pred>(<v>, …)           stage a tuple deletion
  commit                          apply staged updates as the next state
  status                          constraint statuses
  stats                           engine counters, gauges, and timers
  history                         print all states
  check <formula>                 ad-hoc potential-satisfaction query
  explain <formula>               narrate the whole pipeline for a formula
  witness <name>                  a concrete extension satisfying a constraint
  help                            this text
  quit                            leave";

#[cfg(test)]
mod tests {
    use super::*;

    fn run(shell: &mut Shell, lines: &[&str]) -> Vec<Reply> {
        lines.iter().map(|l| shell.exec(l)).collect()
    }

    #[test]
    fn full_session_detects_violation() {
        let mut sh = Shell::new();
        let replies = run(
            &mut sh,
            &[
                "schema pred Sub 1",
                "schema pred Fill 1",
                "constraint once: forall x. G (Sub(x) -> X G !Sub(x))",
                "insert Sub(1)",
                "commit",
                "delete Sub(1)",
                "commit",
                "insert Sub(1)",
                "commit",
                "status",
            ],
        );
        for r in &replies {
            assert!(r.is_ok(), "unexpected error: {r:?}");
        }
        let last_commit = replies[8].as_ref().unwrap();
        assert!(
            last_commit.contains("VIOLATION"),
            "resubmission must violate: {last_commit}"
        );
        assert!(replies[9].as_ref().unwrap().contains("VIOLATED"));
    }

    #[test]
    fn triggers_fire_in_session() {
        let mut sh = Shell::new();
        run(
            &mut sh,
            &[
                "schema pred Sub 1",
                "trigger dup: F (Sub(x) & X F Sub(x))",
                "insert Sub(2)",
                "commit",
                "insert Sub(2)",
            ],
        );
        let r = sh.exec("commit").unwrap();
        assert!(r.contains("TRIGGER: 'dup' fires [x=2]"), "{r}");
    }

    #[test]
    fn schema_frozen_after_first_use() {
        let mut sh = Shell::new();
        sh.exec("schema pred P 1").unwrap();
        sh.exec("constraint c: G !P(3)").unwrap();
        let err = sh.exec("schema pred Q 1").unwrap_err();
        assert!(err.contains("frozen"));
    }

    #[test]
    fn constants_resolve_in_formulas() {
        let mut sh = Shell::new();
        run(
            &mut sh,
            &[
                "schema pred P 1",
                "schema const vip = 7",
                "constraint novip: G !P(vip)",
                "insert P(7)",
            ],
        );
        let r = sh.exec("commit").unwrap();
        assert!(r.contains("VIOLATION"), "{r}");
    }

    #[test]
    fn check_command_answers_adhoc_queries() {
        let mut sh = Shell::new();
        run(&mut sh, &["schema pred P 1", "insert P(1)", "commit"]);
        let yes = sh.exec("check G !P(2)").unwrap();
        assert!(yes.contains("potentially satisfied"));
        let no = sh.exec("check G !P(1)").unwrap();
        assert!(no.contains("NOT"));
    }

    #[test]
    fn errors_are_reported_not_fatal() {
        let mut sh = Shell::new();
        assert!(sh.exec("bogus").is_err());
        assert!(sh.exec("schema pred P 0").is_err());
        sh.exec("schema pred P 2").unwrap();
        assert!(sh.exec("insert P(1)").is_err(), "arity mismatch");
        assert!(sh.exec("insert Q(1)").is_err(), "unknown predicate");
        assert!(sh.exec("constraint broken: G !P(").is_err());
        // Shell still usable afterwards.
        sh.exec("insert P(1, 2)").unwrap();
        sh.exec("commit").unwrap();
    }

    #[test]
    fn unsafe_constraint_warns() {
        let mut sh = Shell::new();
        sh.exec("schema pred P 1").unwrap();
        let r = sh
            .exec("constraint live: forall x. G (P(x) -> F !P(x))")
            .unwrap();
        assert!(r.contains("warning"), "{r}");
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let mut sh = Shell::new();
        assert_eq!(sh.exec("").unwrap(), "");
        assert_eq!(sh.exec("# a comment").unwrap(), "");
    }

    #[test]
    fn stats_report_engine_activity() {
        let mut sh = Shell::new();
        run(
            &mut sh,
            &[
                "schema pred Sub 1",
                "constraint once: forall x. G (Sub(x) -> X G !Sub(x))",
                "trigger dup: F (Sub(x) & X F Sub(x))",
                "insert Sub(1)",
                "commit",
                "delete Sub(1)",
                "commit",
            ],
        );
        let r = sh.exec("stats").unwrap();
        assert!(r.contains("appends             2"), "{r}");
        assert!(r.contains("delta regrounds"), "{r}");
        assert!(r.contains("trigger engine:"), "{r}");
        // The colon-prefixed spelling works too.
        assert!(sh.exec(":stats").unwrap().contains("appends"));
    }

    #[test]
    fn threaded_session_matches_sequential() {
        let opts = ticc_core::CheckOptions::builder()
            .threads(ticc_core::Threads::Fixed(4))
            .build();
        let script = [
            "schema pred Sub 1",
            "constraint once: forall x. G (Sub(x) -> X G !Sub(x))",
            "constraint cap: G !Sub(9)",
            "trigger dup: F (Sub(x) & X F Sub(x))",
            "insert Sub(1)",
            "commit",
            "delete Sub(1)",
            "commit",
            "insert Sub(1)",
            "commit",
            "status",
        ];
        let mut seq = Shell::new();
        let mut par = Shell::with_options(opts);
        for line in script {
            assert_eq!(seq.exec(line), par.exec(line), "diverged at '{line}'");
        }
    }

    #[test]
    fn uncached_session_matches_default() {
        // The transition cache is a pure performance knob: a session
        // run with it disabled (ticc-shell --no-transition-cache)
        // replies identically, line for line.
        let opts = ticc_core::CheckOptions::builder()
            .transition_cache(false)
            .encoding(ticc_core::Encoding::Rebuild)
            .build();
        let script = [
            "schema pred Sub 1",
            "constraint once: forall x. G (Sub(x) -> X G !Sub(x))",
            "constraint cap: G !Sub(9)",
            "trigger dup: F (Sub(x) & X F Sub(x))",
            "insert Sub(1)",
            "commit",
            "delete Sub(1)",
            "commit",
            "commit",
            "insert Sub(1)",
            "commit",
            "status",
        ];
        let mut hot = Shell::new();
        let mut cold = Shell::with_options(opts);
        for line in script {
            assert_eq!(hot.exec(line), cold.exec(line), "diverged at '{line}'");
        }
    }

    #[test]
    fn history_lists_states() {
        let mut sh = Shell::new();
        run(
            &mut sh,
            &["schema pred P 1", "insert P(1)", "commit", "commit"],
        );
        let h = sh.exec("history").unwrap();
        assert!(h.contains("t=0: {P(1)}"));
        assert!(h.contains("t=1: {P(1)}"), "snapshots persist: {h}");
    }
}
